"""Post-processing analysis of latency series.

The figure benches repeatedly need the same three questions answered:

- *when did the system converge?* — the paper's "over the first 3 sample
  periods ANU adapts";
- *where are the spikes?* — the weak server's acquire-and-shed episodes
  in Figures 9–10;
- *how do phases compare?* — before/after a failure, per workload phase.

This module answers them from a :class:`repro.metrics.latency.LatencySeries`
so benches and tests share one (tested) implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .latency import LatencySeries


def worst_per_window(series: LatencySeries) -> np.ndarray:
    """Max over servers of the windowed mean latency, per window."""
    stacked = np.stack([series.mean_latency[s] for s in series.servers])
    return stacked.max(axis=0)


def convergence_time(
    series: LatencySeries,
    threshold: float,
    stable_windows: int = 3,
) -> float | None:
    """First time after which the worst server stays below ``threshold``
    for at least ``stable_windows`` consecutive windows.

    Returns the start time of the stable run, or None if the series never
    stabilizes.  This is the quantitative form of the paper's "reaching a
    good load balance" claim.
    """
    if stable_windows < 1:
        raise ValueError(f"stable_windows must be >= 1, got {stable_windows!r}")
    worst = worst_per_window(series)
    below = worst < threshold
    run = 0
    for i, ok in enumerate(below):
        run = run + 1 if ok else 0
        if run >= stable_windows:
            return float(series.times[i - stable_windows + 1])
    return None


@dataclass(frozen=True)
class Spike:
    """One latency excursion of a server above a threshold."""

    server: str
    start: float
    end: float
    peak: float


def find_spikes(
    series: LatencySeries, server: str, threshold: float
) -> list[Spike]:
    """Contiguous runs of windows where the server's latency >= threshold.

    The instrument behind the over-tuning figures: the aggressive variant
    produces many short spikes on the weakest server; the cured variant
    only the initial convergence one.
    """
    lat = series.mean_latency[server]
    window = series.window
    spikes: list[Spike] = []
    start = None
    peak = 0.0
    for i, v in enumerate(lat):
        if v >= threshold:
            if start is None:
                start = float(series.times[i])
                peak = 0.0
            peak = max(peak, float(v))
        elif start is not None:
            spikes.append(Spike(server=server, start=start,
                                end=float(series.times[i]), peak=peak))
            start = None
    if start is not None:
        spikes.append(Spike(
            server=server, start=start,
            end=float(series.times[-1]) + window, peak=peak,
        ))
    return spikes


def phase_means(
    series: LatencySeries, boundaries: list[float]
) -> list[dict[str, float]]:
    """Request-weighted mean latency per server within each phase.

    ``boundaries`` are the phase edges (len k+1 for k phases); windows are
    binned by their start time.
    """
    if len(boundaries) < 2 or any(
        b >= c for b, c in zip(boundaries, boundaries[1:])
    ):
        raise ValueError("boundaries must be increasing with >= 2 entries")
    out: list[dict[str, float]] = []
    times = series.times
    for lo, hi in zip(boundaries, boundaries[1:]):
        mask = (times >= lo) & (times < hi)
        phase: dict[str, float] = {}
        for server in series.servers:
            cnt = series.counts[server][mask]
            lat = series.mean_latency[server][mask]
            total = cnt.sum()
            phase[server] = float((lat * cnt).sum() / total) if total else 0.0
        out.append(phase)
    return out


def count_idle_hot_cycles(
    series: LatencySeries, server: str, hot: float, idle_fraction: float = 0.1
) -> int:
    """Count idle -> hot transitions of one server's windowed latency.

    The paper's over-tuning signature (§6): the weakest server "cyclically
    takes on workload, exhibits high latency, releases workload, and goes
    to zero latency".  A cycle is counted each time the latency crosses
    ``hot`` after having been below ``hot * idle_fraction``.
    """
    if hot <= 0:
        raise ValueError(f"hot threshold must be positive, got {hot!r}")
    lat = series.mean_latency[server]
    count = 0
    armed = True
    for v in lat:
        if v <= hot * idle_fraction:
            armed = True
        elif v >= hot and armed:
            count += 1
            armed = False
    return count


def settled_fraction(
    series: LatencySeries, threshold: float
) -> float:
    """Fraction of windows where the whole cluster sits below threshold —
    a single stability score for a run."""
    worst = worst_per_window(series)
    if len(worst) == 0:
        return 1.0
    return float((worst < threshold).mean())
