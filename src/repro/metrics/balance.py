"""Load-balance metrics over per-server quantities.

The paper argues quality of balance qualitatively from latency plots; these
standard metrics quantify the same comparisons in the benchmark tables:

- coefficient of variation (CoV) — 0 for perfect balance;
- max/mean ratio (load skew) — 1 for perfect balance;
- Jain's fairness index — 1 for perfect balance, 1/n for a single hot spot;
- Gini coefficient — 0 for perfect balance.

All functions accept either a mapping server→value or a plain sequence, and
support capacity *weights* so "balance" means equal latency / equal
utilization rather than equal raw load (the correct notion for
heterogeneous servers).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np


def _values(
    load: Mapping[str, float] | Sequence[float],
    weights: Mapping[str, float] | Sequence[float] | None = None,
) -> np.ndarray:
    if isinstance(load, Mapping):
        keys = sorted(load)
        vals = np.array([float(load[k]) for k in keys])
        if weights is not None:
            if not isinstance(weights, Mapping):
                raise TypeError("weights must be a mapping when load is a mapping")
            w = np.array([float(weights[k]) for k in keys])
            vals = vals / w
    else:
        vals = np.asarray(list(load), dtype=float)
        if weights is not None:
            w = np.asarray(list(weights), dtype=float)
            if len(w) != len(vals):
                raise ValueError("weights length mismatch")
            vals = vals / w
    if np.any(vals < 0):
        raise ValueError("negative load values")
    return vals


def coefficient_of_variation(
    load: Mapping[str, float] | Sequence[float],
    weights: Mapping[str, float] | Sequence[float] | None = None,
) -> float:
    """Std/mean of (optionally capacity-normalized) loads; 0 when balanced."""
    vals = _values(load, weights)
    mean = vals.mean() if len(vals) else 0.0
    if mean == 0:
        return 0.0
    return float(vals.std() / mean)


def max_over_mean(
    load: Mapping[str, float] | Sequence[float],
    weights: Mapping[str, float] | Sequence[float] | None = None,
) -> float:
    """Load skew: max/mean; 1 when balanced."""
    vals = _values(load, weights)
    mean = vals.mean() if len(vals) else 0.0
    if mean == 0:
        return 1.0
    return float(vals.max() / mean)


def jain_fairness(
    load: Mapping[str, float] | Sequence[float],
    weights: Mapping[str, float] | Sequence[float] | None = None,
) -> float:
    """Jain's index (sum x)^2 / (n * sum x^2); 1 when balanced."""
    vals = _values(load, weights)
    if len(vals) == 0:
        return 1.0
    denom = len(vals) * float((vals**2).sum())
    if denom == 0:
        return 1.0
    return float(vals.sum()) ** 2 / denom


def gini(
    load: Mapping[str, float] | Sequence[float],
    weights: Mapping[str, float] | Sequence[float] | None = None,
) -> float:
    """Gini coefficient; 0 when balanced, →1 for extreme concentration."""
    vals = np.sort(_values(load, weights))
    n = len(vals)
    total = vals.sum()
    if n == 0 or total == 0:
        return 0.0
    # Standard closed form over sorted values.
    index = np.arange(1, n + 1)
    return float((2.0 * (index * vals).sum() / (n * total)) - (n + 1) / n)


def balance_summary(
    load: Mapping[str, float],
    weights: Mapping[str, float] | None = None,
) -> dict[str, float]:
    """All four metrics at once (for report tables)."""
    return {
        "cov": coefficient_of_variation(load, weights),
        "max_over_mean": max_over_mean(load, weights),
        "jain": jain_fairness(load, weights),
        "gini": gini(load, weights),
    }
