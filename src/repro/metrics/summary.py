"""Shared scalar summaries of simulation runs.

One implementation of the run-level summary math that the cluster,
full-system, and protocol harnesses previously each re-derived: the
request-weighted mean latency over a windowed series, the scalar metric
table behind report/figure code, and tail percentiles.

Tail summaries delegate to :meth:`repro.metrics.latency.LatencyCollector.
tail_summary` — the single-pass vector-quantile fast path — whenever the
result still carries its collector, so p50/p95/p99/max never re-pool
samples per percentile.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from .latency import LatencyCollector, LatencySeries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.result import SimResult

__all__ = ["weighted_mean_latency", "run_summary", "tail_summary"]


def weighted_mean_latency(
    series: LatencySeries, completed: Mapping[str, int]
) -> float:
    """Request-weighted mean latency across servers (0.0 with no requests)."""
    total = sum(completed.values())
    if not total:
        return 0.0
    weighted = sum(
        series.mean_over_run(s) * completed.get(s, 0) for s in series.servers
    )
    return weighted / total


def run_summary(result: "SimResult") -> dict[str, float]:
    """Scalar metrics for report tables — one schema for every harness."""
    return {
        "mean_latency": result.mean_latency,
        "total_requests": float(result.total_requests),
        "moves": float(result.moves_started),
        "tuning_rounds": float(result.tuning_rounds),
        "retries": float(result.retries),
    }


def tail_summary(
    collector: LatencyCollector | None,
    series: LatencySeries | None = None,
    server: str | None = None,
) -> dict[str, float]:
    """p50/p95/p99/max of a run's latency samples.

    Prefers the collector's pooled single-pass quantile path.  When only a
    windowed series survives (e.g. a result loaded from disk), falls back
    to the per-window means — an approximation, flagged by the
    ``"approximate"`` key so tables can annotate it.
    """
    if collector is not None:
        return collector.tail_summary(server)
    if series is None:
        raise ValueError("need a collector or a series")
    import numpy as np

    names = [server] if server is not None else series.servers
    pools = [series.mean_latency[s][series.counts[s] > 0] for s in names]
    pools = [p for p in pools if len(p)]
    if not pools:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0, "approximate": 1.0}
    values = np.concatenate(pools) if len(pools) > 1 else pools[0]
    p50, p95, p99, top = np.percentile(values, (50.0, 95.0, 99.0, 100.0))
    return {
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
        "max": float(top),
        "approximate": 1.0,
    }
