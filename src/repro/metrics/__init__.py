"""Measurement: latency series, balance metrics, movement accounting.

(Movement accounting lives in :mod:`repro.core.movement` because the core
placement layer produces the diffs; it is re-exported here for convenience.)
"""

from ..core.movement import MovementLedger, ReconfigDiff, diff_assignment
from .analysis import (
    Spike,
    convergence_time,
    count_idle_hot_cycles,
    find_spikes,
    phase_means,
    settled_fraction,
    worst_per_window,
)
from .balance import (
    balance_summary,
    coefficient_of_variation,
    gini,
    jain_fairness,
    max_over_mean,
)
from .latency import LatencyCollector, LatencySeries
from .summary import run_summary, tail_summary, weighted_mean_latency

__all__ = [
    "LatencyCollector",
    "LatencySeries",
    "run_summary",
    "tail_summary",
    "weighted_mean_latency",
    "balance_summary",
    "coefficient_of_variation",
    "gini",
    "jain_fairness",
    "max_over_mean",
    "MovementLedger",
    "ReconfigDiff",
    "diff_assignment",
    "Spike",
    "convergence_time",
    "count_idle_hot_cycles",
    "find_spikes",
    "phase_means",
    "settled_fraction",
    "worst_per_window",
]
