"""Per-server latency collection and windowed series.

The paper's figures plot, for each server, the mean request latency in
successive sample windows ("the latency of each server is collected over a
specified interval of time and written into a log file", §7).  The
:class:`LatencyCollector` stores raw (completion time, latency) samples per
server and produces:

- :meth:`LatencyCollector.interval_report` — mean latency + count over an
  arbitrary window (what each server reports to the delegate);
- :meth:`LatencyCollector.series` — the fixed-window time series a figure
  plots.

Storage is columnar and window selection is bisection-based: each server
keeps parallel completion-time/latency arrays, materialized as time-sorted
NumPy vectors on first read and cached until the next append.  Windowed
queries (:meth:`interval_report`, :meth:`percentile`) locate their
``[start, end)`` slice with ``searchsorted`` instead of scanning the
sample log, and :meth:`tail_summary` computes all four quantiles from one
pooled pass instead of four re-pool/re-sort rounds.  Completion times in a
discrete-event run arrive non-decreasing, so the sort is normally a no-op;
out-of-order appends are detected and handled with one stable argsort.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.tuning import ServerReport
from ..units import Seconds

#: Shared empty column, returned for servers with no samples.
_NO_SAMPLES = np.empty(0, dtype=float)


@dataclass
class LatencySeries:
    """A per-server windowed latency series (one figure panel)."""

    window: Seconds
    #: Window-start times (seconds).
    times: np.ndarray
    #: server -> mean latency per window (NaN-free: empty windows are 0).
    mean_latency: dict[str, np.ndarray]
    #: server -> request count per window.
    counts: dict[str, np.ndarray]

    @property
    def servers(self) -> list[str]:
        return sorted(self.mean_latency)

    def peak(self, server: str) -> float:
        """Highest windowed mean latency for ``server``."""
        arr = self.mean_latency[server]
        return float(arr.max()) if len(arr) else 0.0

    def mean_over_run(self, server: str) -> float:
        """Request-weighted mean latency for ``server`` over the whole run."""
        lat = self.mean_latency[server]
        cnt = self.counts[server]
        total = cnt.sum()
        return float((lat * cnt).sum() / total) if total else 0.0

    def tail_window_mean(self, server: str, windows: int) -> float:
        """Request-weighted mean latency over the last ``windows`` windows."""
        lat = self.mean_latency[server][-windows:]
        cnt = self.counts[server][-windows:]
        total = cnt.sum()
        return float((lat * cnt).sum() / total) if total else 0.0


@dataclass
class LatencyCollector:
    """Accumulates (completion time, latency) samples per server.

    Samples live in per-server append-only columns (``_times`` /
    ``_latencies``); ``_columns`` materializes them as time-sorted NumPy
    arrays, cached per server until more samples arrive.
    """

    _times: dict[str, list[float]] = field(default_factory=dict)
    _latencies: dict[str, list[float]] = field(default_factory=dict)
    #: server -> False once an append broke completion-time order.
    _monotone: dict[str, bool] = field(default_factory=dict)
    #: server -> (sample count at build, sorted times, matching latencies).
    _sorted_cache: dict[str, tuple[int, np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )

    def ensure_server(self, server: str) -> None:
        """Register a server so it appears in series even if idle."""
        if server not in self._times:
            self._times[server] = []
            self._latencies[server] = []
            self._monotone[server] = True

    def record(
        self, server: str, completion_time: Seconds, latency: Seconds
    ) -> None:
        """Add one (completion time, latency) sample."""
        if latency < 0:
            raise ValueError(f"negative latency {latency!r}")
        self.ensure_server(server)
        times = self._times[server]
        if times and completion_time < times[-1]:
            self._monotone[server] = False
        times.append(float(completion_time))
        self._latencies[server].append(float(latency))

    # ------------------------------------------------------------------
    def _columns(self, server: str) -> tuple[np.ndarray, np.ndarray]:
        """Time-sorted (times, latencies) arrays for ``server``, cached.

        The cache key is the sample count: appends invalidate, reads
        reuse.  Ties keep insertion order (stable sort), preserving the
        engine's deterministic completion order.
        """
        times = self._times.get(server)
        if not times:
            return _NO_SAMPLES, _NO_SAMPLES
        count = len(times)
        cached = self._sorted_cache.get(server)
        if cached is not None and cached[0] == count:
            return cached[1], cached[2]
        t = np.asarray(times, dtype=float)
        lat = np.asarray(self._latencies[server], dtype=float)
        if not self._monotone.get(server, True):
            order = np.argsort(t, kind="stable")
            t = t[order]
            lat = lat[order]
        self._sorted_cache[server] = (count, t, lat)
        return t, lat

    def _window_slice(
        self, server: str, start: Seconds, end: Seconds
    ) -> np.ndarray:
        """Latencies of ``server`` completed in ``[start, end)``."""
        t, lat = self._columns(server)
        if not len(t):
            return lat
        if start <= t[0] and (math.isinf(end) or end > t[-1]):
            return lat
        lo = int(np.searchsorted(t, float(start), side="left"))
        hi = int(np.searchsorted(t, float(end), side="left"))
        return lat[lo:hi]

    # ------------------------------------------------------------------
    def interval_report(
        self, server: str, start: Seconds, end: Seconds
    ) -> ServerReport:
        """Mean latency and count for completions in [start, end)."""
        window = self._window_slice(server, start, end)
        count = len(window)
        mean = float(window.sum() / count) if count else 0.0
        return ServerReport(name=server, mean_latency=mean, request_count=count)

    def reports(
        self, servers: list[str], start: Seconds, end: Seconds
    ) -> list[ServerReport]:
        """Interval reports for every listed server (absent servers report 0)."""
        return [self.interval_report(s, start, end) for s in servers]

    # ------------------------------------------------------------------
    def series(self, duration: Seconds, window: Seconds) -> LatencySeries:
        """Bin all samples into fixed windows covering [0, duration)."""
        if window <= 0 or duration <= 0:
            raise ValueError("window and duration must be positive")
        n_windows = int(np.ceil(duration / window))
        edges = np.arange(n_windows + 1) * window
        mean_latency: dict[str, np.ndarray] = {}
        counts: dict[str, np.ndarray] = {}
        for server in self._times:
            t, lat = self._columns(server)
            if len(t):
                idx = np.clip((t // window).astype(int), 0, n_windows - 1)
                cnt = np.bincount(idx, minlength=n_windows).astype(float)
                tot = np.bincount(idx, weights=lat, minlength=n_windows)
                with np.errstate(invalid="ignore"):
                    mean = np.where(cnt > 0, tot / np.maximum(cnt, 1), 0.0)
            else:
                cnt = np.zeros(n_windows)
                mean = np.zeros(n_windows)
            mean_latency[server] = mean
            counts[server] = cnt
        return LatencySeries(
            window=window,
            times=edges[:-1],
            mean_latency=mean_latency,
            counts=counts,
        )

    def sample_count(self, server: str | None = None) -> int:
        """Samples recorded for one server (or all)."""
        if server is not None:
            return len(self._times.get(server, ()))
        return sum(len(v) for v in self._times.values())

    def _pooled(
        self, server: str | None, start: Seconds, end: Seconds
    ) -> np.ndarray:
        """Latency pool for one server (or all) over [start, end)."""
        names = [server] if server is not None else list(self._times)
        slices = [self._window_slice(s, start, end) for s in names]
        slices = [s for s in slices if len(s)]
        if not slices:
            return _NO_SAMPLES
        if len(slices) == 1:
            return slices[0]
        return np.concatenate(slices)

    def percentile(
        self,
        q: float,
        server: str | None = None,
        start: Seconds = Seconds(0.0),
        end: Seconds = Seconds(float("inf")),
    ) -> Seconds:
        """The q-th latency percentile (q in [0, 100]) over [start, end).

        ``server=None`` pools samples from every server — the system-wide
        tail a client experiences.  Returns 0.0 with no samples.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q!r}")
        values = self._pooled(server, start, end)
        if not len(values):
            return Seconds(0.0)
        return Seconds(float(np.percentile(values, q)))

    def tail_summary(
        self, server: str | None = None
    ) -> dict[str, float]:
        """p50/p95/p99/max of all samples (tables and benches).

        Computed from one pooled pass — a single quantile call over one
        materialized pool — and bit-identical to evaluating the four
        percentiles independently.
        """
        values = self._pooled(
            server, Seconds(0.0), Seconds(float("inf"))
        )
        if not len(values):
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
        p50, p95, p99, top = np.percentile(values, (50.0, 95.0, 99.0, 100.0))
        return {
            "p50": float(p50),
            "p95": float(p95),
            "p99": float(p99),
            "max": float(top),
        }
