"""Per-server latency collection and windowed series.

The paper's figures plot, for each server, the mean request latency in
successive sample windows ("the latency of each server is collected over a
specified interval of time and written into a log file", §7).  The
:class:`LatencyCollector` stores raw (completion time, latency) samples per
server and produces:

- :meth:`LatencyCollector.interval_report` — mean latency + count over an
  arbitrary window (what each server reports to the delegate);
- :meth:`LatencyCollector.series` — the fixed-window time series a figure
  plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.tuning import ServerReport
from ..units import Seconds


@dataclass
class LatencySeries:
    """A per-server windowed latency series (one figure panel)."""

    window: Seconds
    #: Window-start times (seconds).
    times: np.ndarray
    #: server -> mean latency per window (NaN-free: empty windows are 0).
    mean_latency: dict[str, np.ndarray]
    #: server -> request count per window.
    counts: dict[str, np.ndarray]

    @property
    def servers(self) -> list[str]:
        return sorted(self.mean_latency)

    def peak(self, server: str) -> float:
        """Highest windowed mean latency for ``server``."""
        arr = self.mean_latency[server]
        return float(arr.max()) if len(arr) else 0.0

    def mean_over_run(self, server: str) -> float:
        """Request-weighted mean latency for ``server`` over the whole run."""
        lat = self.mean_latency[server]
        cnt = self.counts[server]
        total = cnt.sum()
        return float((lat * cnt).sum() / total) if total else 0.0

    def tail_window_mean(self, server: str, windows: int) -> float:
        """Request-weighted mean latency over the last ``windows`` windows."""
        lat = self.mean_latency[server][-windows:]
        cnt = self.counts[server][-windows:]
        total = cnt.sum()
        return float((lat * cnt).sum() / total) if total else 0.0


@dataclass
class LatencyCollector:
    """Accumulates (completion time, latency) samples per server."""

    _samples: dict[str, list[tuple[float, float]]] = field(default_factory=dict)

    def ensure_server(self, server: str) -> None:
        """Register a server so it appears in series even if idle."""
        self._samples.setdefault(server, [])

    def record(
        self, server: str, completion_time: Seconds, latency: Seconds
    ) -> None:
        """Add one (completion time, latency) sample."""
        if latency < 0:
            raise ValueError(f"negative latency {latency!r}")
        self._samples.setdefault(server, []).append((completion_time, latency))

    # ------------------------------------------------------------------
    def interval_report(
        self, server: str, start: Seconds, end: Seconds
    ) -> ServerReport:
        """Mean latency and count for completions in [start, end)."""
        samples = self._samples.get(server, [])
        total = 0.0
        count = 0
        for t, lat in reversed(samples):
            if t < start:
                break
            if t < end:
                total += lat
                count += 1
        mean = total / count if count else 0.0
        return ServerReport(name=server, mean_latency=mean, request_count=count)

    def reports(
        self, servers: list[str], start: Seconds, end: Seconds
    ) -> list[ServerReport]:
        """Interval reports for every listed server (absent servers report 0)."""
        return [self.interval_report(s, start, end) for s in servers]

    # ------------------------------------------------------------------
    def series(self, duration: Seconds, window: Seconds) -> LatencySeries:
        """Bin all samples into fixed windows covering [0, duration)."""
        if window <= 0 or duration <= 0:
            raise ValueError("window and duration must be positive")
        n_windows = int(np.ceil(duration / window))
        edges = np.arange(n_windows + 1) * window
        mean_latency: dict[str, np.ndarray] = {}
        counts: dict[str, np.ndarray] = {}
        for server, samples in self._samples.items():
            if samples:
                t = np.array([s[0] for s in samples])
                lat = np.array([s[1] for s in samples])
                idx = np.clip((t // window).astype(int), 0, n_windows - 1)
                cnt = np.bincount(idx, minlength=n_windows).astype(float)
                tot = np.bincount(idx, weights=lat, minlength=n_windows)
                with np.errstate(invalid="ignore"):
                    mean = np.where(cnt > 0, tot / np.maximum(cnt, 1), 0.0)
            else:
                cnt = np.zeros(n_windows)
                mean = np.zeros(n_windows)
            mean_latency[server] = mean
            counts[server] = cnt
        return LatencySeries(
            window=window,
            times=edges[:-1],
            mean_latency=mean_latency,
            counts=counts,
        )

    def sample_count(self, server: str | None = None) -> int:
        """Samples recorded for one server (or all)."""
        if server is not None:
            return len(self._samples.get(server, []))
        return sum(len(v) for v in self._samples.values())

    def percentile(
        self,
        q: float,
        server: str | None = None,
        start: Seconds = Seconds(0.0),
        end: Seconds = Seconds(float("inf")),
    ) -> Seconds:
        """The q-th latency percentile (q in [0, 100]) over [start, end).

        ``server=None`` pools samples from every server — the system-wide
        tail a client experiences.  Returns 0.0 with no samples.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q!r}")
        if server is not None:
            pools = [self._samples.get(server, [])]
        else:
            pools = list(self._samples.values())
        values = [
            lat for pool in pools for (t, lat) in pool if start <= t < end
        ]
        if not values:
            return 0.0
        return float(np.percentile(np.asarray(values), q))

    def tail_summary(
        self, server: str | None = None
    ) -> dict[str, float]:
        """p50/p95/p99/max of all samples (tables and benches)."""
        return {
            "p50": self.percentile(50.0, server),
            "p95": self.percentile(95.0, server),
            "p99": self.percentile(99.0, server),
            "max": self.percentile(100.0, server),
        }
