"""Process-safety markers: worker entries and the process-cache registry.

This module is the *contract* between parallel code and the concurrency
sanitizer (RPL107-RPL110 in :mod:`repro.lint.flow`).  It is deliberately
dependency-free — anything in the package may import it, including
:mod:`repro.core` — because the two primitives below have to be visible
from every layer:

- :func:`worker_entry` marks a function as a *worker-boundary* callable:
  its body (and everything reachable from it) executes in a child
  process.  The sanitizer treats marked functions exactly like callables
  it sees passed to ``ProcessPoolExecutor.submit`` / ``Pool.map`` /
  ``multiprocessing.Process`` — the marker exists for entry points that
  reach a pool through indirection the call graph cannot follow.

- :func:`register_process_cache` / :func:`clear_process_caches` manage
  memo caches that must not leak parent-process contents into workers.
  A forked worker inherits whatever the parent memoized (warm
  ``lru_cache`` cells, built segment maps); a spawned worker starts
  empty.  Either way the cache contents are a function of *process
  history*, not of the cell being computed — so every worker initializer
  calls :func:`clear_process_caches` and starts from a blank slate, and
  RPL107 exempts caches whose ``X.cache_clear`` / ``X.clear`` is
  registered here (the registration is statically visible evidence that
  the cache is reset at the boundary).
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = [
    "worker_entry",
    "is_worker_entry",
    "register_process_cache",
    "clear_process_caches",
]

_F = TypeVar("_F", bound=Callable)

#: Registered cache-clear hooks, in registration order.
_HOOKS: list = []


def worker_entry(fn: _F) -> _F:
    """Mark ``fn`` as a worker-boundary entry point (identity decorator).

    The function is returned unchanged; the marker is an attribute the
    runtime can introspect and a *name* the static analysis resolves —
    the concurrency rules root their reachability walks at every
    ``@worker_entry`` function in the project.
    """
    fn.__worker_entry__ = True
    return fn


def is_worker_entry(fn: Callable) -> bool:
    """Whether ``fn`` was marked with :func:`worker_entry`."""
    return bool(getattr(fn, "__worker_entry__", False))


def register_process_cache(clear: Callable[[], None]) -> Callable[[], None]:
    """Register a zero-arg cache-clear hook run at every worker start.

    ``clear`` is typically a bound ``cache_clear`` (``functools``
    memos), a dict's ``clear``, or a module-level function that resets
    instance caches.  Returns ``clear`` unchanged so the call can wrap a
    definition.  Registration is idempotent per callable identity.
    """
    if clear not in _HOOKS:
        _HOOKS.append(clear)
    return clear


def clear_process_caches() -> None:
    """Invoke every registered hook; worker initializers call this first.

    After this returns, no memo state populated by the parent process
    (or by previous cells in a reused worker, had anything leaked) can
    influence the next cell: caches rebuild from authoritative inputs.
    """
    for hook in list(_HOOKS):
        hook()
