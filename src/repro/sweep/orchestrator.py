"""Sweep orchestration: executors, sharded JSONL, order-free merge.

The orchestrator's single invariant: **the bytes on disk are a function
of the plan, never of the schedule.**  Three mechanisms enforce it —

- every row is serialized canonically (sorted keys) and assigned to a
  shard by *cell id*, so which worker computed it and when cannot move
  it between files;
- shards and the merged output are written in cell-id order at the end
  of the run (rows accumulate in a dict keyed by cell id — a
  commutative, RPL109-clean reduce — and are sorted before any file is
  written);
- the merged manifest records per-cell digest chains, so two runs of
  the same plan under different executors/worker counts can be compared
  byte-for-byte and, on mismatch, pinpointed to the first divergent
  cell.

Resume works through the same canonical form: a restarted run re-reads
the shard files, keeps every row whose cell id is in the plan, and runs
only the remainder — the final artifacts are identical to an
uninterrupted run's.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from .grid import PlanError, SweepPlan
from .worker import pool_initializer, run_cell

__all__ = ["EXECUTORS", "SweepResult", "run_sweep"]

#: Supported executor kinds (CLI ``--executor`` values).
EXECUTORS = ("serial", "process", "futures")

#: Invoked after each finished cell: (done_count, total, cell_id).
ProgressFn = Callable[[int, int, str], None]


@dataclass(frozen=True)
class SweepResult:
    """What one orchestrator invocation accomplished."""

    outdir: Path
    total: int
    #: Cells computed by *this* invocation (excludes resumed rows).
    ran: int
    #: Cells already present from prior partial runs.
    resumed: int
    complete: bool
    #: SHA-256 of ``merged.jsonl`` bytes; None until the plan completes.
    merged_digest: str | None


def _shard_path(outdir: Path, shard: int) -> Path:
    return outdir / "shards" / f"shard-{shard:02d}.jsonl"


def _row_line(row: dict) -> str:
    return json.dumps(row, sort_keys=True)


def _load_existing(outdir: Path, plan: SweepPlan) -> dict[str, dict]:
    """Rows from prior partial runs, keyed by cell id.

    Rows whose cell id is not in the plan are dropped (stale output from
    an earlier, different grid in the same directory); a malformed
    trailing line — the signature of a run killed mid-write — is
    skipped, and its cell simply re-runs.
    """
    wanted = {c.cell_id for c in plan.cells}
    rows: dict[str, dict] = {}
    for shard in range(plan.n_shards):
        path = _shard_path(outdir, shard)
        if not path.exists():
            continue
        for line in path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except ValueError:
                continue
            cell_id = row.get("cell")
            if cell_id in wanted:
                rows[cell_id] = row
    return rows


def _check_plan_file(outdir: Path, plan: SweepPlan) -> None:
    """Refuse to mix output from two different plans in one directory."""
    plan_path = outdir / "plan.json"
    if plan_path.exists():
        existing = SweepPlan.from_json(plan_path.read_text(encoding="utf-8"))
        if existing.digest() != plan.digest():
            raise PlanError(
                f"{plan_path} describes a different sweep "
                f"(digest {existing.digest()[:12]}... != "
                f"{plan.digest()[:12]}...); use a fresh --out directory"
            )
    else:
        plan_path.write_text(plan.to_json() + "\n", encoding="utf-8")


def _compute(
    plan: SweepPlan,
    todo: list,
    executor: str,
    jobs: int,
    progress: ProgressFn | None,
    done_already: int,
) -> dict[str, dict]:
    """Run the outstanding cells; returns rows keyed by cell id.

    Completion order is executor-dependent and deliberately discarded:
    the dict is keyed by cell id, and every consumer sorts.
    """
    rows: dict[str, dict] = {}
    done = done_already
    total = len(plan)

    def note(row: dict) -> None:
        nonlocal done
        rows[row["cell"]] = row
        done += 1
        if progress is not None:
            progress(done, total, row["cell"])

    payloads = [cell.payload() for cell in todo]
    if executor == "serial" or jobs <= 1:
        pool_initializer()
        for payload in payloads:
            note(run_cell(payload))
    elif executor == "process":
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(jobs, initializer=pool_initializer) as pool:
            for row in pool.imap_unordered(run_cell, payloads):
                note(row)
    elif executor == "futures":
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor, as_completed

        ctx = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=jobs, mp_context=ctx, initializer=pool_initializer
        ) as pool:
            futures = [pool.submit(run_cell, payload) for payload in payloads]
            for future in as_completed(futures):
                note(future.result())
    else:
        raise ValueError(
            f"unknown executor {executor!r}; known: {', '.join(EXECUTORS)}"
        )
    return rows


def _write_shards(outdir: Path, plan: SweepPlan, rows: dict[str, dict]) -> None:
    """Rewrite every shard in canonical (cell-id) order."""
    shard_dir = outdir / "shards"
    shard_dir.mkdir(parents=True, exist_ok=True)
    by_shard: dict[int, list[str]] = {}
    for cell_id in sorted(rows):
        shard = plan.shard_of(cell_id)
        by_shard.setdefault(shard, []).append(_row_line(rows[cell_id]))
    for shard in range(plan.n_shards):
        lines = by_shard.get(shard, [])
        path = _shard_path(outdir, shard)
        if lines:
            path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        elif path.exists():
            path.unlink()


def _write_merged(
    outdir: Path, plan: SweepPlan, rows: dict[str, dict]
) -> str:
    """Write ``merged.jsonl`` + ``manifest.json``; returns the digest."""
    body = "".join(
        _row_line(rows[cell_id]) + "\n" for cell_id in sorted(rows)
    )
    data = body.encode("utf-8")
    digest = hashlib.sha256(data).hexdigest()
    (outdir / "merged.jsonl").write_bytes(data)
    manifest = {
        "cells": len(rows),
        "merged_digest": digest,
        "plan_digest": plan.digest(),
        "cell_digests": {
            cell_id: rows[cell_id].get("digest", "")
            for cell_id in sorted(rows)
        },
    }
    (outdir / "manifest.json").write_text(
        json.dumps(manifest, sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    return digest


def run_sweep(
    plan: SweepPlan,
    outdir: str | Path,
    executor: str = "serial",
    jobs: int = 1,
    max_cells: int | None = None,
    progress: ProgressFn | None = None,
) -> SweepResult:
    """Run ``plan``, writing sharded JSONL plus a canonical merge.

    ``max_cells`` caps how many *outstanding* cells this invocation
    computes (for incremental/interrupted runs); the merged output is
    only written once every cell in the plan has a row, and is then
    byte-identical no matter how the work was split across invocations,
    executors, or worker counts.
    """
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; known: {', '.join(EXECUTORS)}"
        )
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    _check_plan_file(outdir, plan)

    rows = _load_existing(outdir, plan)
    resumed = len(rows)
    todo = [cell for cell in plan.cells if cell.cell_id not in rows]
    if max_cells is not None:
        todo = todo[:max_cells]
    fresh = _compute(plan, todo, executor, jobs, progress, resumed)
    rows.update(fresh)

    _write_shards(outdir, plan, rows)
    complete = len(rows) == len(plan)
    merged_digest = _write_merged(outdir, plan, rows) if complete else None
    return SweepResult(
        outdir=outdir,
        total=len(plan),
        ran=len(fresh),
        resumed=resumed,
        complete=complete,
        merged_digest=merged_digest,
    )
