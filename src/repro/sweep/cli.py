"""``repro-sweep``: run a (policy x seed) grid from the command line.

Exit codes: 0 — the plan completed (merged output written); 1 — the run
is still partial (``--max-cells`` stopped early; rerun to resume);
2 — usage error (bad grid, mismatched output directory, unknown policy).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from ..runtime.routing import ROUTER_FACTORIES
from .grid import GridSpec, PlanError
from .orchestrator import EXECUTORS, run_sweep
from .worker import LIMP_SCHEDULES, POLICY_FACTORIES

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description=(
            "Sweep a (policy x seed) grid through the queueing simulator, "
            "sharding cells across an executor; merged output is "
            "byte-identical regardless of executor kind or worker count."
        ),
    )
    parser.add_argument(
        "--out",
        help="output directory (plan.json, shards/, merged.jsonl)",
    )
    parser.add_argument(
        "--policies", default="anu,random",
        help="comma-separated policy axis (default: %(default)s)",
    )
    parser.add_argument(
        "--seeds", type=int, default=10, metavar="N",
        help="sweep seeds 0..N-1 (default: %(default)s)",
    )
    parser.add_argument(
        "--filesets", type=int, default=40,
        help="synthetic file sets per cell (default: %(default)s)",
    )
    parser.add_argument(
        "--requests", type=int, default=400,
        help="synthetic requests per cell (default: %(default)s)",
    )
    parser.add_argument(
        "--duration", type=float, default=600.0,
        help="trace duration in seconds (default: %(default)s)",
    )
    parser.add_argument(
        "--alpha", type=float, default=4.0,
        help="Pareto shape of the file-set popularity skew "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--tuning-interval", type=float, default=60.0,
        help="delegate tuning period in seconds (default: %(default)s)",
    )
    parser.add_argument(
        "--limps", default=None,
        help="comma-separated gray-failure axis (none, sustained, ramp, "
             "couple); omitted = no limp axis",
    )
    parser.add_argument(
        "--routers", default=None,
        help="comma-separated routing-plane axis (single, jsq2, jsq3, "
             "wjsq2, wjsq3); omitted = no router axis (single-owner "
             "dispatch)",
    )
    parser.add_argument(
        "--replication", default=None, metavar="R[,R...]",
        help="comma-separated owner-set-size axis (e.g. 1,2,3); omitted "
             "= no replication axis (r=1)",
    )
    parser.add_argument(
        "--executor", choices=EXECUTORS, default="serial",
        help="execution backend (default: %(default)s)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for parallel executors (default: %(default)s)",
    )
    parser.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help="compute at most N outstanding cells, then stop (resumable)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny per-cell workload (12 file sets, 60 requests, 120 s)",
    )
    parser.add_argument(
        "--table", action="store_true",
        help="after a complete run, print a markdown comparison table "
             "(policy x r x router x limp, seed-aggregated) to stdout",
    )
    parser.add_argument(
        "--list-policies", action="store_true",
        help="print the policy registry and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``repro-sweep``; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_policies:
        for name in sorted(POLICY_FACTORIES):
            print(name)
        return 0
    if args.out is None:
        parser.error("--out is required (unless --list-policies)")

    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    unknown = sorted(set(policies) - set(POLICY_FACTORIES))
    if not policies or unknown:
        parser.error(
            f"unknown policies: {', '.join(unknown)}" if unknown
            else "--policies needs at least one policy"
        )
    if args.seeds < 1:
        parser.error("--seeds must be >= 1")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    axes: dict[str, list] = {"policy": policies}
    if args.limps is not None:
        limps = [p.strip() for p in args.limps.split(",") if p.strip()]
        unknown = sorted(set(limps) - set(LIMP_SCHEDULES))
        if not limps or unknown:
            parser.error(
                f"unknown limp profiles: {', '.join(unknown)}" if unknown
                else "--limps needs at least one profile"
            )
        axes["limp"] = limps
    if args.routers is not None:
        routers = [p.strip() for p in args.routers.split(",") if p.strip()]
        unknown = sorted(set(routers) - set(ROUTER_FACTORIES))
        if not routers or unknown:
            parser.error(
                f"unknown routers: {', '.join(unknown)}" if unknown
                else "--routers needs at least one router"
            )
        axes["router"] = routers
    if args.replication is not None:
        try:
            levels = [
                int(p.strip())
                for p in args.replication.split(",")
                if p.strip()
            ]
        except ValueError:
            parser.error("--replication must be comma-separated integers")
        if not levels or any(r < 1 for r in levels):
            parser.error("--replication needs integers >= 1")
        axes["r"] = levels

    base = {
        "n_filesets": 12 if args.quick else args.filesets,
        "n_requests": 60 if args.quick else args.requests,
        "duration": 120.0 if args.quick else args.duration,
        "alpha": args.alpha,
        "tuning_interval": 30.0 if args.quick else args.tuning_interval,
    }
    spec = GridSpec(
        axes=axes, seeds=list(range(args.seeds)), base=base
    )

    def progress(done: int, total: int, cell_id: str) -> None:
        sys.stderr.write(f"\r[{done}/{total}] {cell_id}")
        if done == total:
            sys.stderr.write("\n")
        sys.stderr.flush()

    started = time.perf_counter()
    try:
        result = run_sweep(
            spec.build_plan(),
            args.out,
            executor=args.executor,
            jobs=args.jobs,
            max_cells=args.max_cells,
            progress=progress,
        )
    except (PlanError, ValueError) as exc:
        print(f"repro-sweep: error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started

    done = result.resumed + result.ran
    print(
        f"{result.ran} cell(s) ran, {result.resumed} resumed "
        f"({done}/{result.total}) in {elapsed:.2f}s "
        f"[{args.executor}, jobs={args.jobs}]"
    )
    if result.complete:
        print(f"merged: {result.outdir / 'merged.jsonl'}")
        print(f"digest: {result.merged_digest}")
        if args.table:
            from .table import aggregate, read_rows, render_markdown

            print()
            print(
                render_markdown(
                    aggregate(read_rows(result.outdir / "merged.jsonl"))
                ),
                end="",
            )
        return 0
    print(f"partial: {result.total - done} cell(s) outstanding; rerun to resume")
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
