"""Aggregate a sweep's merged JSONL into a comparison table.

The routing-plane experiments need one artifact: a
(policy x r x router x limp) table of mean latencies, aggregated over the
seed axis.  This module renders it straight from ``merged.jsonl`` so a
single ``repro-sweep ... --table`` invocation produces the EXPERIMENTS.md
table, with no notebook or ad-hoc script in between.

Aggregation is deterministic: rows are grouped by their sorted parameter
signature and emitted in sorted order, so the same merged file always
renders byte-identical markdown.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping, Sequence

__all__ = ["aggregate", "read_rows", "render_markdown"]

#: Parameters that identify a table row (everything except the seed);
#: listed in presentation order.
GROUP_KEYS = ("policy", "r", "router", "limp")


def read_rows(path: str | Path) -> list[dict]:
    """Parse one merged JSONL sweep output into row dicts."""
    rows = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def _group_of(params: Mapping[str, object]) -> tuple:
    """The row's identity under seed-aggregation, in GROUP_KEYS order."""
    return tuple(params.get(key) for key in GROUP_KEYS)


def aggregate(rows: Iterable[Mapping]) -> list[dict]:
    """Collapse the seed axis: one output row per parameter combination.

    Reports the seed-mean of each cell's overall mean latency, the mean
    of per-cell completed totals and move counts, and the seed count —
    enough to rank (policy, r, router) families per limp profile.
    """
    groups: dict[tuple, list[Mapping]] = {}
    for row in rows:
        groups.setdefault(_group_of(row["params"]), []).append(row)
    out = []
    for key in sorted(groups, key=lambda k: tuple(str(v) for v in k)):
        cells = groups[key]
        latencies = [float(c["summary"]["mean_latency"]) for c in cells]
        moves = [int(c["summary"]["moves_completed"]) for c in cells]
        totals = [int(c["summary"]["total_requests"]) for c in cells]
        entry = dict(zip(GROUP_KEYS, key))
        entry.update(
            seeds=len(cells),
            mean_latency=sum(latencies) / len(latencies),
            moves_completed=sum(moves) / len(moves),
            total_requests=sum(totals) / len(totals),
        )
        out.append(entry)
    return out


def render_markdown(rows: Sequence[Mapping]) -> str:
    """One GitHub-flavored markdown table from :func:`aggregate` output."""
    header = (
        "| policy | r | router | limp | seeds | mean latency (s) | moves |\n"
        "|---|---|---|---|---|---|---|"
    )
    lines = [header]
    for row in rows:
        lines.append(
            "| {policy} | {r} | {router} | {limp} | {seeds} | "
            "{mean_latency:.4f} | {moves_completed:.1f} |".format(
                policy=row.get("policy", "anu"),
                r=row.get("r") if row.get("r") is not None else 1,
                router=row.get("router") or "single",
                limp=row.get("limp") or "none",
                seeds=row["seeds"],
                mean_latency=row["mean_latency"],
                moves_completed=row["moves_completed"],
            )
        )
    return "\n".join(lines) + "\n"
