"""``python -m repro.sweep`` — alias for the ``repro-sweep`` script."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
