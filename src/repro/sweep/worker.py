"""The spawn-safe per-cell worker: one cell in, one plain-dict row out.

:func:`run_cell` is the sweep's worker boundary.  Its contract with the
concurrency sanitizer (RPL107-RPL110):

- the payload and the returned row are dicts of JSON scalars — nothing
  carrying an engine back-reference, open handle, or live sink crosses
  the process boundary (RPL108);
- every run draws randomness only from the cell's own seed, threaded
  through :class:`~repro.runtime.scenario.Scenario` into the simulator's
  named ``StreamFactory`` streams — never from process-global RNG state
  (RPL110);
- the row carries the cell's full :class:`DigestSink` chain head, so the
  orchestrator can prove that merged output is independent of which
  process computed the cell and when (RPL109's merge is keyed by cell
  id, never by completion order);
- :func:`pool_initializer` clears every registered process cache before
  a worker computes anything, so no parent-process memo state can leak
  into a child (RPL107).
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..cluster.cluster import RunResult, paper_servers
from ..membership.faults import FaultSchedule
from ..placement.anu_policy import ANUPolicy
from ..placement.base import PlacementPolicy
from ..placement.consistent_hash import ConsistentHashPolicy
from ..placement.prescient import PrescientPolicy
from ..placement.round_robin import RoundRobinPolicy
from ..placement.replicated import ReplicatedPolicy
from ..placement.simple_random import SimpleRandomPolicy
from ..placement.two_choice import TwoChoicePolicy
from ..runtime.routing import ROUTER_FACTORIES
from ..runtime.scenario import Scenario
from ..runtime.telemetry import DigestSink
from ..workloads.synthetic import SyntheticConfig, generate_synthetic
from .api import clear_process_caches, worker_entry

__all__ = [
    "LIMP_SCHEDULES",
    "POLICY_FACTORIES",
    "pool_initializer",
    "run_cell",
]

#: Policy-zoo registry: sweep axis value -> fresh-policy factory.
POLICY_FACTORIES: dict[str, Callable[[], PlacementPolicy]] = {
    "anu": ANUPolicy,
    "random": SimpleRandomPolicy,
    "round-robin": RoundRobinPolicy,
    "two-choice": TwoChoicePolicy,
    "prescient": PrescientPolicy,
    "consistent-hash": ConsistentHashPolicy,
}


def pool_initializer() -> None:
    """Run in every worker process before it computes its first cell."""
    clear_process_caches()


def _sustained_limp(duration: float) -> FaultSchedule:
    """The fastest server limps at 15% speed for the middle half-run."""
    from ..units import Seconds

    schedule = FaultSchedule()
    schedule.degrade(Seconds(duration * 0.25), "server4", 0.15)
    schedule.restore(Seconds(duration * 0.75), "server4")
    return schedule


def _ramp_limp(duration: float) -> FaultSchedule:
    """Slow-then-dead: the fastest server worsens in steps, then dies."""
    from ..units import Seconds

    schedule = FaultSchedule()
    schedule.degrade(Seconds(duration * 0.25), "server4", 0.5)
    schedule.degrade(Seconds(duration * 0.40), "server4", 0.25)
    schedule.degrade(Seconds(duration * 0.55), "server4", 0.125)
    schedule.fail(Seconds(duration * 0.70), "server4")
    schedule.recover(Seconds(duration * 0.85), "server4")
    return schedule


def _coupled_limp(duration: float) -> FaultSchedule:
    """I/O contention: the limping server drags a sharer down with it."""
    from ..units import Seconds

    schedule = FaultSchedule()
    schedule.degrade(Seconds(duration * 0.25), "server4", 0.2)
    schedule.degrade(Seconds(duration * 0.25), "server3", 0.6)
    schedule.restore(Seconds(duration * 0.75), "server3")
    schedule.restore(Seconds(duration * 0.75), "server4")
    return schedule


#: Limp-axis registry: value -> schedule factory over the trace duration.
#: Schedules are pure functions of the cell params, preserving the
#: sweep's byte-identical-merge contract; ``none`` keeps the fault-free
#: baseline bit-for-bit.
LIMP_SCHEDULES: dict[str, Callable[[float], FaultSchedule] | None] = {
    "none": None,
    "sustained": _sustained_limp,
    "ramp": _ramp_limp,
    "couple": _coupled_limp,
}


def _scenario_for(seed: int, params: Mapping[str, object]) -> Scenario:
    """Build the cell's scenario from its (seed, params) description.

    Everything is derived from the payload: the trace from the cell
    seed, the policy fresh from its registered factory.  Unknown
    parameter names are rejected so a typo in a grid axis fails the
    whole sweep loudly instead of silently running defaults.
    """
    known = {
        "policy",
        "n_filesets",
        "n_requests",
        "duration",
        "alpha",
        "tuning_interval",
        "limp",
        "r",
        "router",
    }
    unknown = sorted(set(params) - known)
    if unknown:
        raise ValueError(f"unknown sweep parameter(s): {', '.join(unknown)}")
    policy_name = str(params.get("policy", "anu"))
    try:
        factory = POLICY_FACTORIES[policy_name]
    except KeyError:
        raise ValueError(
            f"unknown policy {policy_name!r}; known: "
            f"{', '.join(sorted(POLICY_FACTORIES))}"
        ) from None
    limp_name = str(params.get("limp", "none"))
    try:
        limp_factory = LIMP_SCHEDULES[limp_name]
    except KeyError:
        raise ValueError(
            f"unknown limp profile {limp_name!r}; known: "
            f"{', '.join(sorted(LIMP_SCHEDULES))}"
        ) from None
    duration = float(params.get("duration", 600.0))
    tuning_interval = float(params.get("tuning_interval", 60.0))
    trace = generate_synthetic(
        SyntheticConfig(
            n_filesets=int(params.get("n_filesets", 40)),
            n_requests=int(params.get("n_requests", 400)),
            duration=duration,
            alpha=float(params.get("alpha", 4.0)),
            seed=seed,
        )
    )
    if policy_name == "prescient":
        # The prescient comparator needs its oracle granted up front:
        # the *nominal* server speeds (perfect static knowledge — gray
        # failures stay invisible even to the oracle, which is the
        # point of the limp axis) and the first interval's demand.
        nominal = {s.name: s.speed for s in paper_servers()}
        first_demand = trace.demand_by_fileset(0.0, tuning_interval)

        def factory() -> PlacementPolicy:
            policy = PrescientPolicy()
            policy.grant_oracle(nominal, first_demand)
            return policy

    replication = int(params.get("r", 1))
    router = str(params.get("router", "single"))
    if router not in ROUTER_FACTORIES:
        raise ValueError(
            f"unknown router {router!r}; known: "
            f"{', '.join(sorted(ROUTER_FACTORIES))}"
        )
    if replication > 1:
        # Wrap so the row's policy name carries the replication level
        # ("anu+r2"); the harness derives the same owner sets either way.
        base_factory = factory

        def factory() -> PlacementPolicy:
            return ReplicatedPolicy(base_factory(), replication)

    return Scenario(
        servers=paper_servers(),
        trace=trace,
        policy=factory,
        faults=limp_factory(duration) if limp_factory is not None else None,
        tuning_interval=tuning_interval,
        seed=seed,
        replication=replication,
        router=router,
    )


def _summarize(result: RunResult) -> dict:
    """The scalar result surface that lands in the merged JSONL."""
    return {
        "policy": result.policy_name,
        "completed": result.completed,
        "total_requests": result.total_requests,
        "mean_latency": result.mean_latency,
        "utilization": result.utilization,
        "moves_completed": result.moves_completed,
        "retries": result.retries,
        "tuning_rounds": result.tuning_rounds,
    }


@worker_entry
def run_cell(payload: dict) -> dict:
    """Run one sweep cell; both ``payload`` and the row are plain dicts.

    ``payload`` is :meth:`repro.sweep.grid.Cell.payload`.  The returned
    row is a pure function of it: the same payload produces the same row
    bytes in any process, under any executor, in any order.
    """
    seed = int(payload["seed"])
    params = dict(payload["params"])
    sink = DigestSink()
    result = _scenario_for(seed, params).run_cluster(telemetry=sink)
    return {
        "cell": payload["cell"],
        "seed": seed,
        "params": params,
        "summary": _summarize(result),
        "events": len(sink.chain),
        "digest": sink.chain[-1] if sink.chain else "",
    }
