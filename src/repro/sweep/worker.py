"""The spawn-safe per-cell worker: one cell in, one plain-dict row out.

:func:`run_cell` is the sweep's worker boundary.  Its contract with the
concurrency sanitizer (RPL107-RPL110):

- the payload and the returned row are dicts of JSON scalars — nothing
  carrying an engine back-reference, open handle, or live sink crosses
  the process boundary (RPL108);
- every run draws randomness only from the cell's own seed, threaded
  through :class:`~repro.runtime.scenario.Scenario` into the simulator's
  named ``StreamFactory`` streams — never from process-global RNG state
  (RPL110);
- the row carries the cell's full :class:`DigestSink` chain head, so the
  orchestrator can prove that merged output is independent of which
  process computed the cell and when (RPL109's merge is keyed by cell
  id, never by completion order);
- :func:`pool_initializer` clears every registered process cache before
  a worker computes anything, so no parent-process memo state can leak
  into a child (RPL107).
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..cluster.cluster import RunResult, paper_servers
from ..placement.anu_policy import ANUPolicy
from ..placement.base import PlacementPolicy
from ..placement.consistent_hash import ConsistentHashPolicy
from ..placement.prescient import PrescientPolicy
from ..placement.round_robin import RoundRobinPolicy
from ..placement.simple_random import SimpleRandomPolicy
from ..placement.two_choice import TwoChoicePolicy
from ..runtime.scenario import Scenario
from ..runtime.telemetry import DigestSink
from ..workloads.synthetic import SyntheticConfig, generate_synthetic
from .api import clear_process_caches, worker_entry

__all__ = ["POLICY_FACTORIES", "pool_initializer", "run_cell"]

#: Policy-zoo registry: sweep axis value -> fresh-policy factory.
POLICY_FACTORIES: dict[str, Callable[[], PlacementPolicy]] = {
    "anu": ANUPolicy,
    "random": SimpleRandomPolicy,
    "round-robin": RoundRobinPolicy,
    "two-choice": TwoChoicePolicy,
    "prescient": PrescientPolicy,
    "consistent-hash": ConsistentHashPolicy,
}


def pool_initializer() -> None:
    """Run in every worker process before it computes its first cell."""
    clear_process_caches()


def _scenario_for(seed: int, params: Mapping[str, object]) -> Scenario:
    """Build the cell's scenario from its (seed, params) description.

    Everything is derived from the payload: the trace from the cell
    seed, the policy fresh from its registered factory.  Unknown
    parameter names are rejected so a typo in a grid axis fails the
    whole sweep loudly instead of silently running defaults.
    """
    known = {
        "policy",
        "n_filesets",
        "n_requests",
        "duration",
        "alpha",
        "tuning_interval",
    }
    unknown = sorted(set(params) - known)
    if unknown:
        raise ValueError(f"unknown sweep parameter(s): {', '.join(unknown)}")
    policy_name = str(params.get("policy", "anu"))
    try:
        factory = POLICY_FACTORIES[policy_name]
    except KeyError:
        raise ValueError(
            f"unknown policy {policy_name!r}; known: "
            f"{', '.join(sorted(POLICY_FACTORIES))}"
        ) from None
    trace = generate_synthetic(
        SyntheticConfig(
            n_filesets=int(params.get("n_filesets", 40)),
            n_requests=int(params.get("n_requests", 400)),
            duration=float(params.get("duration", 600.0)),
            alpha=float(params.get("alpha", 4.0)),
            seed=seed,
        )
    )
    return Scenario(
        servers=paper_servers(),
        trace=trace,
        policy=factory,
        tuning_interval=float(params.get("tuning_interval", 60.0)),
        seed=seed,
    )


def _summarize(result: RunResult) -> dict:
    """The scalar result surface that lands in the merged JSONL."""
    return {
        "policy": result.policy_name,
        "completed": result.completed,
        "total_requests": result.total_requests,
        "mean_latency": result.mean_latency,
        "utilization": result.utilization,
        "moves_completed": result.moves_completed,
        "retries": result.retries,
        "tuning_rounds": result.tuning_rounds,
    }


@worker_entry
def run_cell(payload: dict) -> dict:
    """Run one sweep cell; both ``payload`` and the row are plain dicts.

    ``payload`` is :meth:`repro.sweep.grid.Cell.payload`.  The returned
    row is a pure function of it: the same payload produces the same row
    bytes in any process, under any executor, in any order.
    """
    seed = int(payload["seed"])
    params = dict(payload["params"])
    sink = DigestSink()
    result = _scenario_for(seed, params).run_cluster(telemetry=sink)
    return {
        "cell": payload["cell"],
        "seed": seed,
        "params": params,
        "summary": _summarize(result),
        "events": len(sink.chain),
        "digest": sink.chain[-1] if sink.chain else "",
    }
