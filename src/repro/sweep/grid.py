"""Sweep plans: (seed x parameter-grid) cells with stable identities.

A sweep is described by a :class:`GridSpec` — named parameter axes, a
seed list, and shared base parameters.  :meth:`GridSpec.build_plan`
expands the cross product into :class:`Cell` objects, each carrying a
*content-derived* ``cell_id``: the truncated SHA-256 of the cell's
canonical JSON ``{"params": ..., "seed": ...}``.  Because the id depends
only on what the cell computes — never on its position in the grid — a
plan is invariant under axis reordering, value reordering, or splitting
one sweep into several, and a partially completed run can always be
resumed against a freshly built plan.

The plan's canonical cell order is ``cell_id`` order, and every
downstream artifact (shard assignment, merged JSONL, the plan digest) is
derived from ids, so no completion order, executor kind, or worker count
can leak into the output bytes.

Parameter values are restricted to JSON scalars (str/int/float/bool/
None): anything richer would need a canonical serialization of its own
and would not survive the process boundary as-is.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

__all__ = ["Cell", "GridSpec", "SweepPlan", "cell_id_for"]

#: Length of the hex cell id (64 bits of the SHA-256 digest).
CELL_ID_HEX = 16

#: Schema version stamped into ``plan.json``.
PLAN_SCHEMA = 1

_SCALARS = (str, int, float, bool, type(None))


class PlanError(ValueError):
    """Raised on malformed grids or mismatched plan files."""


def _check_scalar(name: str, value: Any) -> None:
    if not isinstance(value, _SCALARS):
        raise PlanError(
            f"parameter {name!r} has non-scalar value {value!r}; sweep "
            f"parameters must be JSON scalars"
        )


def cell_id_for(seed: int, params: Mapping[str, Any]) -> str:
    """Stable content hash identifying one (seed, params) cell."""
    canon = json.dumps(
        {"params": dict(sorted(params.items())), "seed": seed},
        sort_keys=True,
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:CELL_ID_HEX]


@dataclass(frozen=True)
class Cell:
    """One unit of sweep work: a parameter assignment plus a seed."""

    cell_id: str
    seed: int
    #: Sorted ``(name, value)`` pairs — hashable, order-canonical.
    params: tuple

    def __post_init__(self) -> None:
        if list(self.params) != sorted(self.params, key=lambda kv: kv[0]):
            raise PlanError("cell params must be sorted by name")
        expected = cell_id_for(self.seed, dict(self.params))
        if self.cell_id != expected:
            raise PlanError(
                f"cell id {self.cell_id!r} does not match the cell's "
                f"content (expected {expected!r})"
            )

    @property
    def params_dict(self) -> dict:
        return dict(self.params)

    def payload(self) -> dict:
        """The cell as a plain dict (what crosses the process boundary)."""
        return {
            "cell": self.cell_id,
            "seed": self.seed,
            "params": self.params_dict,
        }

    @staticmethod
    def build(seed: int, params: Mapping[str, Any]) -> "Cell":
        for name, value in params.items():
            _check_scalar(name, value)
        return Cell(
            cell_id=cell_id_for(seed, params),
            seed=seed,
            params=tuple(sorted(params.items())),
        )


@dataclass(frozen=True)
class GridSpec:
    """Axes x seeds, expanded by :meth:`build_plan` into a canonical plan."""

    #: Parameter name -> candidate values (the cross product is swept).
    axes: Mapping[str, Sequence[Any]]
    #: Seeds; every parameter combination runs once per seed.
    seeds: Sequence[int]
    #: Parameters shared by every cell (axes override on name clash).
    base: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.seeds:
            raise PlanError("a sweep needs at least one seed")
        if len(set(self.seeds)) != len(list(self.seeds)):
            raise PlanError(f"duplicate seeds in {list(self.seeds)!r}")
        for name, values in self.axes.items():
            if not values:
                raise PlanError(f"axis {name!r} has no values")
            for value in values:
                _check_scalar(name, value)
        for name, value in self.base.items():
            _check_scalar(name, value)

    def _combinations(self) -> Iterator[dict]:
        names = sorted(self.axes)
        combo: dict = dict(self.base)

        def expand(i: int) -> Iterator[dict]:
            if i == len(names):
                yield dict(combo)
                return
            for value in self.axes[names[i]]:
                combo[names[i]] = value
                yield from expand(i + 1)

        yield from expand(0)

    def build_plan(self, n_shards: int = 8) -> "SweepPlan":
        """Expand to a :class:`SweepPlan`; cells sorted by ``cell_id``."""
        cells: dict[str, Cell] = {}
        for params in self._combinations():
            for seed in self.seeds:
                cell = Cell.build(seed, params)
                if cell.cell_id in cells:
                    raise PlanError(
                        f"duplicate cell {cell.cell_id} (seed {seed}, "
                        f"params {params!r})"
                    )
                cells[cell.cell_id] = cell
        return SweepPlan(
            cells=tuple(cells[c] for c in sorted(cells)), n_shards=n_shards
        )


@dataclass(frozen=True)
class SweepPlan:
    """An expanded sweep: cells in canonical (cell-id) order."""

    cells: tuple
    #: Shard-file count; fixed per plan so shard assignment is stable
    #: across resumes regardless of executor kind or worker count.
    n_shards: int = 8

    def __post_init__(self) -> None:
        if not self.cells:
            raise PlanError("a plan needs at least one cell")
        if self.n_shards < 1:
            raise PlanError(f"n_shards must be >= 1, got {self.n_shards}")
        ids = [c.cell_id for c in self.cells]
        if ids != sorted(ids):
            raise PlanError("plan cells must be in cell-id order")
        if len(set(ids)) != len(ids):
            raise PlanError("plan contains duplicate cell ids")

    def __len__(self) -> int:
        return len(self.cells)

    def shard_of(self, cell_id: str) -> int:
        """Stable shard index for a cell (id-derived, order-free)."""
        return int(cell_id[:8], 16) % self.n_shards

    def digest(self) -> str:
        """Content hash of the whole plan (guards mixed-plan resumes)."""
        payload = json.dumps(
            {
                "cells": [c.payload() for c in self.cells],
                "n_shards": self.n_shards,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Canonical ``plan.json`` body (byte-stable across rebuilds)."""
        return json.dumps(
            {
                "schema_version": PLAN_SCHEMA,
                "n_shards": self.n_shards,
                "digest": self.digest(),
                "cells": [c.payload() for c in self.cells],
            },
            sort_keys=True,
            indent=None,
        )

    @staticmethod
    def from_json(text: str) -> "SweepPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise PlanError(f"unreadable plan file: {exc}") from None
        if data.get("schema_version") != PLAN_SCHEMA:
            raise PlanError(
                f"plan schema {data.get('schema_version')!r} is not "
                f"{PLAN_SCHEMA}"
            )
        cells = tuple(
            Cell.build(entry["seed"], entry["params"])
            for entry in data["cells"]
        )
        plan = SweepPlan(cells=cells, n_shards=data["n_shards"])
        if plan.digest() != data.get("digest"):
            raise PlanError("plan digest mismatch: file was edited or corrupt")
        return plan
