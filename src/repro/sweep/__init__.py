"""Parallel parameter sweeps: grids of (seed x parameter) cells.

The package splits along the process boundary:

- :mod:`repro.sweep.api` — the process-safety contract (``@worker_entry``,
  the process-cache registry).  Dependency-free; imported from every
  layer, including :mod:`repro.core`.
- :mod:`repro.sweep.grid` — plans: cells with content-derived ids,
  canonical ordering, plan digests.
- :mod:`repro.sweep.worker` — the spawn-safe per-cell worker running one
  :class:`~repro.runtime.scenario.Scenario` under a ``DigestSink``.
- :mod:`repro.sweep.orchestrator` — pluggable executors (serial /
  ``multiprocessing`` / ``concurrent.futures``), sharded JSONL output,
  order-independent merge, resume-from-partial.
- :mod:`repro.sweep.table` — deterministic seed-aggregation of a merged
  sweep into the (policy x r x router x limp) comparison table.
- :mod:`repro.sweep.cli` — the ``repro-sweep`` command.

Only ``api`` and ``grid`` import eagerly (both are stdlib-only, keeping
this package importable from low layers without cycles); the heavier
modules load on first attribute access.
"""

from __future__ import annotations

from .api import (
    clear_process_caches,
    is_worker_entry,
    register_process_cache,
    worker_entry,
)
from .grid import Cell, GridSpec, PlanError, SweepPlan, cell_id_for

__all__ = [
    "Cell",
    "GridSpec",
    "PlanError",
    "SweepPlan",
    "cell_id_for",
    "clear_process_caches",
    "is_worker_entry",
    "register_process_cache",
    "worker_entry",
    "run_sweep",
    "SweepResult",
    "run_cell",
]

_LAZY = {
    "run_sweep": "orchestrator",
    "SweepResult": "orchestrator",
    "run_cell": "worker",
}


def __getattr__(name: str):
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, name)
