"""The shared tuning-round driver behind every harness.

The paper's delegate loop — collect per-server latency reports each
interval, compute a tuning decision, realize the resulting assignment
diff as shared-disk moves — was re-implemented three times in this
repository (queueing cluster, timed full system, message-level protocol).
This module owns that loop once:

- :class:`TuningLoop` drives periodic rounds on an engine: it asks its
  host to build a :class:`~repro.placement.base.TuningContext`, invokes
  the host's decision function (``PlacementPolicy.update`` or a delegate
  tuner), tracks the previous interval's reports for the divergent
  heuristic, and realizes assignment diffs through the host's movement
  layer (membership changes are driven separately by
  :class:`repro.membership.director.MembershipDirector`);
- :class:`DelegateRoundDriver` is the smaller kernel shared with the
  message-driven protocol (:mod:`repro.proto.node`), where round cadence
  is governed by heartbeats and elections rather than a timer: stateless
  :class:`~repro.core.tuning.DelegateTuner` invocation plus
  previous-report bookkeeping.

Every scheduling decision here replicates the pre-runtime harnesses
exactly (same event priorities, same reschedule conditions, same RNG
usage), so seeded runs replay bit-identically through the refactor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence

from ..core.tuning import DelegateTuner, ServerReport, TuningDecision
from ..sim.engine import Engine
from ..sim.events import PRIORITY_LATE
from .telemetry import NULL_SINK, TelemetrySink, TuningDecided

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..placement.base import TuningContext

__all__ = ["TuningHost", "TuningLoop", "DelegateRoundDriver"]


class TuningHost(Protocol):
    """What a harness provides for :class:`TuningLoop` to drive it."""

    def build_tuning_context(
        self,
        now: float,
        interval: float,
        previous_reports: Sequence[ServerReport] | None,
    ) -> "TuningContext":
        """Assemble this round's context (reports, assignment, rng, ...)."""

    def decide(
        self, context: "TuningContext"
    ) -> tuple[dict[str, str] | None, TuningDecision | None]:
        """Compute (and validate) the new assignment, or ``None`` to keep
        the current one.  The second element carries the delegate's
        decision detail when the host surfaces one (telemetry)."""

    def realize(self, old: dict[str, str], new: dict[str, str]) -> None:
        """Turn an assignment diff into movement on the harness's engine."""


class TuningLoop:
    """Periodic delegate rounds on a discrete-event engine.

    The loop owns round cadence and report history; everything
    harness-specific (how reports are measured, what "realize" means)
    lives behind the :class:`TuningHost` protocol.
    """

    def __init__(
        self,
        engine: Engine,
        interval: float,
        duration: float,
        host: TuningHost,
        telemetry: TelemetrySink = NULL_SINK,
        priority: int = PRIORITY_LATE,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"tuning interval must be positive, got {interval!r}")
        self.engine = engine
        self.interval = interval
        #: Rounds stop rescheduling once ``now + interval`` passes this.
        self.duration = duration
        self.host = host
        self.telemetry = telemetry
        self.rounds = 0
        self.previous_reports: list[ServerReport] | None = None
        self._priority = priority

    # ------------------------------------------------------------------
    def start(self, first_round_at: float) -> None:
        """Schedule the first round at an absolute simulated time."""
        self.engine.schedule_at(
            first_round_at, self._round, priority=self._priority
        )

    def _round(self) -> None:
        now = self.engine.now
        context = self.host.build_tuning_context(
            now, self.interval, self.previous_reports
        )
        self.rounds += 1
        new_assignment, decision = self.host.decide(context)
        self.previous_reports = list(context.reports)
        sink = self.telemetry
        if sink.enabled:
            sink.emit(
                TuningDecided(
                    time=now,
                    round=self.rounds,
                    changed=new_assignment is not None,
                    reporting=sum(
                        1 for r in context.reports if r.request_count > 0
                    ),
                    average=decision.average if decision is not None else None,
                    tuned=dict(decision.tuned) if decision is not None else {},
                )
            )
        if new_assignment is not None:
            self.host.realize(dict(context.assignment), new_assignment)
        if now + self.interval <= self.duration:
            self.engine.schedule(
                self.interval, self._round, priority=self._priority
            )

    # ------------------------------------------------------------------
    def reset_history(self) -> None:
        """Forget the previous interval's reports (delegate fail-over or
        membership change — latency history straddles either)."""
        self.previous_reports = None


class DelegateRoundDriver:
    """Stateless-tuner invocation plus previous-report bookkeeping.

    Shared by hosts whose decision function is a raw
    :class:`DelegateTuner` (the timed full-system harness) and by the
    message-level delegate (:class:`repro.proto.node.ServerNode`), whose
    round cadence is protocol-driven.  Reports from servers absent this
    round are filtered out of the previous set, so the divergent gate
    only ever compares a server against its own history.
    """

    def __init__(self, tuner: DelegateTuner) -> None:
        self.tuner = tuner
        self.previous_reports: list[ServerReport] | None = None
        self.rounds_run = 0

    def compute(
        self,
        shares: dict[str, float],
        reports: Sequence[ServerReport],
    ) -> TuningDecision:
        """One delegate round over ``reports``; updates report history."""
        previous: list[ServerReport] | None = None
        if self.previous_reports is not None:
            previous = [r for r in self.previous_reports if r.name in shares]
        decision = self.tuner.compute(shares, list(reports), previous)
        self.previous_reports = list(reports)
        self.rounds_run += 1
        return decision

    def reset(self) -> None:
        """Forget history (new delegate, membership change)."""
        self.previous_reports = None
