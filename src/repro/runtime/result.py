"""The unified simulation result shared by every harness.

Before :mod:`repro.runtime`, each harness grew its own result struct
(``RunResult`` in the queueing cluster, ``FullSystemResult`` in the timed
semantic stack) with duplicated summary math.  :class:`SimResult` is the
one shape; the legacy names survive as thin subclasses so existing
figures, benches, and tests keep working unchanged.

The result keeps a reference to its :class:`~repro.metrics.latency.
LatencyCollector` so tail percentiles go through the collector's
single-pass quantile fast path (see :mod:`repro.metrics.summary`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.movement import MovementLedger
from ..metrics.latency import LatencyCollector, LatencySeries
from ..metrics.summary import run_summary, tail_summary, weighted_mean_latency

__all__ = ["SimResult", "summarize_collector"]


@dataclass
class SimResult:
    """Everything a figure, bench, or test reads from one simulated run."""

    policy_name: str
    duration: float
    series: LatencySeries
    ledger: MovementLedger
    completed: dict[str, int]
    utilization: dict[str, float]
    mean_latency: float
    total_requests: int
    moves_started: int
    moves_completed: int
    retries: int
    final_assignment: dict[str, str]
    tuning_rounds: int
    #: The raw sample store behind ``series`` (kept for fast-path tail
    #: summaries; excluded from equality so results compare by content).
    collector: LatencyCollector | None = field(
        default=None, repr=False, compare=False
    )

    def summary(self) -> dict[str, float]:
        """Scalar metrics for report tables (shared schema, see metrics)."""
        return run_summary(self)

    def tail_summary(self, server: str | None = None) -> dict[str, float]:
        """p50/p95/p99/max latency via the collector's pooled fast path."""
        return tail_summary(self.collector, self.series, server)


def summarize_collector(
    collector: LatencyCollector,
    duration: float,
    sample_window: float,
    completed: dict[str, int],
) -> tuple[LatencySeries, float, int]:
    """The common tail of every harness's result construction.

    Returns ``(series, request-weighted mean latency, total requests)``.
    """
    series = collector.series(duration, sample_window)
    mean = weighted_mean_latency(series, completed)
    return series, mean, sum(completed.values())
