"""Scenario: one experiment description, runnable on every harness stack.

A :class:`Scenario` bundles what the paper calls an experiment — a server
fleet, a workload, a placement policy, and an optional fault schedule —
without committing to a simulator.  The same scenario can then drive:

- :meth:`Scenario.run_cluster` — the queueing simulation
  (:mod:`repro.cluster`), abstract requests against FIFO servers;
- :meth:`Scenario.run_full_system` — the timed semantic stack
  (:mod:`repro.fs`), real metadata operations with shared-disk image
  moves (requires ``operations`` + ``fileset_roots``);
- :meth:`Scenario.run_protocol` — the queueing simulation tuned
  end-to-end over the §4 message protocol (:mod:`repro.proto`).

All three accept a telemetry sink and return results built on
:class:`~repro.runtime.result.SimResult`, so one scenario definition
yields directly comparable runs across modeling fidelities.

Policies are stateful, so the scenario holds a *factory* and builds a
fresh policy per run; every run is a pure function of the scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from .telemetry import TelemetrySink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cluster import RunResult
    from ..cluster.protocol_driver import ProtocolRunResult
    from ..cluster.server import ServerSpec
    from ..core.tuning import TuningConfig
    from ..fs.ops import Operation
    from ..fs.simulation import FullSystemResult
    from ..membership.faults import FaultSchedule
    from ..membership.injector import FaultInjector
    from ..placement.base import PlacementPolicy
    from ..proto.node import ProtocolConfig
    from ..workloads.trace import Trace
    from .routing import RequestRouter

__all__ = ["Scenario"]


def _default_policy() -> "PlacementPolicy":
    """Default policy factory: a fresh ANU placement policy."""
    from ..placement.anu_policy import ANUPolicy

    return ANUPolicy()


@dataclass
class Scenario:
    """A fleet + workload + policy + fault schedule, harness-agnostic.

    ``trace`` feeds the queueing harnesses directly; ``operations`` (with
    ``fileset_roots``) feeds the semantic stack, and is bridged to a trace
    via :func:`repro.fs.workload.ops_to_trace` when no explicit trace is
    given — so one workload description serves every stack.
    """

    servers: Sequence["ServerSpec"]
    trace: "Trace | None" = None
    operations: "list[Operation] | None" = None
    fileset_roots: dict[str, str] | None = None
    #: Fresh-policy factory (policies are stateful); defaults to ANU.
    policy: Callable[[], "PlacementPolicy"] = field(default=_default_policy)
    faults: "FaultSchedule | None" = None
    #: Stochastic chaos source: when set (and ``faults`` is not), each
    #: queueing/protocol run generates its schedule from the injector over
    #: the trace duration — seeded, so every run sees the same events.
    injector: "FaultInjector | None" = None
    tuning_interval: float = 120.0
    sample_window: float = 60.0
    seed: int = 0
    #: Speed-1 seconds for a mean-weight semantic op (fs + bridged trace).
    mean_op_cost: float = 0.1
    tuning: "TuningConfig | None" = None
    #: Owner-set size (assignment plane); 1 = the classic single-owner model.
    replication: int = 1
    #: Routing-plane router, by registry name
    #: (:data:`repro.runtime.routing.ROUTER_FACTORIES`); ``None`` means the
    #: single-owner passthrough.  A name rather than an instance keeps
    #: scenarios picklable for the sweep's process pool, and routers are
    #: stateful so every run must build a fresh one anyway.
    router: str | None = None

    def __post_init__(self) -> None:
        if not self.servers:
            raise ValueError("a scenario needs at least one server")
        if self.trace is None and self.operations is None:
            raise ValueError("a scenario needs a trace or an operation stream")
        if self.faults is not None and self.injector is not None:
            raise ValueError(
                "give either an explicit fault schedule or an injector, not both"
            )
        if self.replication < 1:
            raise ValueError(
                f"replication must be >= 1, got {self.replication!r}"
            )
        if self.router is not None:
            from .routing import ROUTER_FACTORIES

            if self.router not in ROUTER_FACTORIES:
                raise ValueError(
                    f"unknown router {self.router!r}; known: "
                    f"{', '.join(sorted(ROUTER_FACTORIES))}"
                )

    def make_router(self) -> "RequestRouter":
        """A fresh router instance for one run (routers are stateful)."""
        from .routing import make_router

        return make_router(self.router or "single")

    def fault_schedule(self) -> "FaultSchedule | None":
        """The run's fault schedule: explicit, injector-generated, or None."""
        if self.faults is not None:
            return self.faults
        if self.injector is not None:
            from ..units import Seconds

            return self.injector.generate(Seconds(self.cluster_trace().duration))
        return None

    # ------------------------------------------------------------------
    @property
    def speeds(self) -> dict[str, float]:
        """Server name -> relative speed, for the timed semantic stack."""
        return {s.name: s.speed for s in self.servers}

    def cluster_trace(self) -> "Trace":
        """The queueing-harness trace (bridged from operations if needed)."""
        if self.trace is not None:
            return self.trace
        from ..fs.cluster import MetadataCluster
        from ..fs.workload import ops_to_trace

        if self.fileset_roots is None:
            raise ValueError("bridging operations to a trace needs fileset_roots")
        operations = self.operations or []
        registry = MetadataCluster(["bridge"], self.fileset_roots).registry
        duration = operations[-1].time if operations else 0.0
        return ops_to_trace(operations, registry, self.mean_op_cost, duration)

    # ------------------------------------------------------------------
    def run_cluster(
        self, telemetry: TelemetrySink | None = None
    ) -> "RunResult":
        """Run the scenario on the queueing simulator."""
        from ..cluster.cluster import ClusterConfig, ClusterSimulation

        config = ClusterConfig(
            servers=tuple(self.servers),
            tuning_interval=self.tuning_interval,
            sample_window=self.sample_window,
            seed=self.seed,
        )
        return ClusterSimulation(
            config,
            self.policy(),
            self.cluster_trace(),
            faults=self.fault_schedule(),
            telemetry=telemetry,
            router=self.make_router(),
            replication=self.replication,
        ).run()

    def run_full_system(
        self, telemetry: TelemetrySink | None = None
    ) -> "FullSystemResult":
        """Run the scenario on the timed semantic (Storage Tank-style) stack."""
        from ..fs.simulation import FullSystemConfig, FullSystemSimulation

        if self.operations is None or self.fileset_roots is None:
            raise ValueError(
                "the full-system run needs operations and fileset_roots"
            )
        if self.faults is not None and len(list(self.faults)) > 0:
            raise ValueError("the full-system harness has a static server set")
        if self.injector is not None:
            raise ValueError("the full-system harness has a static server set")
        config = FullSystemConfig(
            server_speeds=self.speeds,
            fileset_roots=self.fileset_roots,
            tuning_interval=self.tuning_interval,
            sample_window=self.sample_window,
            mean_op_cost=self.mean_op_cost,
            seed=self.seed,
            replication=self.replication,
        )
        return FullSystemSimulation(
            config, list(self.operations), tuning=self.tuning,
            telemetry=telemetry, router=self.make_router(),
        ).run()

    def run_protocol(
        self,
        telemetry: TelemetrySink | None = None,
        protocol: "ProtocolConfig | None" = None,
        delegate_crash_times: Sequence[float] = (),
    ) -> "ProtocolRunResult":
        """Run the scenario with tuning driven over the message protocol."""
        from ..cluster.cluster import ClusterConfig
        from ..cluster.protocol_driver import ProtocolDrivenCluster

        config = ClusterConfig(
            servers=tuple(self.servers),
            tuning_interval=self.tuning_interval,
            sample_window=self.sample_window,
            seed=self.seed,
        )
        return ProtocolDrivenCluster(
            config,
            self.cluster_trace(),
            tuning=self.tuning,
            protocol=protocol,
            delegate_crash_times=delegate_crash_times,
            telemetry=telemetry,
            faults=self.fault_schedule(),
            router=self.make_router(),
            replication=self.replication,
        ).run()
