"""Shared simulation-harness core.

One implementation of the pieces every harness in this repository was
duplicating: arrival scheduling (:mod:`.arrivals`), the delegate tuning
loop (:mod:`.loop`), the run-result shape (:mod:`.result`), a structured
telemetry event stream (:mod:`.telemetry`), the per-request routing
plane over replicated owners (:mod:`.routing`), and the :class:`Scenario`
assembly that runs one experiment description through any of the three
harness stacks (:mod:`.scenario`).
"""

from .arrivals import ArrivalPump, schedule_all
from .loop import DelegateRoundDriver, TuningHost, TuningLoop
from .result import SimResult, summarize_collector
from .routing import (
    ROUTER_FACTORIES,
    JSQRouter,
    RequestRouter,
    SingleOwnerRouter,
    WeightedPowerOfDRouter,
    make_router,
)
from .telemetry import (
    NULL_SINK,
    CallbackSink,
    DelegateElected,
    DigestSink,
    FaultInjected,
    JsonlSink,
    MembershipChanged,
    MemorySink,
    MoveFinished,
    MoveStarted,
    NullSink,
    RequestArrived,
    RequestCompleted,
    RequestDispatched,
    TeeSink,
    TelemetryRecord,
    TelemetrySink,
    TuningDecided,
    first_divergence,
    read_jsonl,
    record_from_dict,
)

__all__ = [
    "ArrivalPump",
    "schedule_all",
    "DelegateRoundDriver",
    "TuningHost",
    "TuningLoop",
    "SimResult",
    "summarize_collector",
    "ROUTER_FACTORIES",
    "JSQRouter",
    "RequestRouter",
    "SingleOwnerRouter",
    "WeightedPowerOfDRouter",
    "make_router",
    "Scenario",
    "NULL_SINK",
    "CallbackSink",
    "DelegateElected",
    "DigestSink",
    "FaultInjected",
    "JsonlSink",
    "MembershipChanged",
    "MemorySink",
    "MoveFinished",
    "MoveStarted",
    "NullSink",
    "RequestArrived",
    "RequestCompleted",
    "RequestDispatched",
    "TeeSink",
    "TelemetryRecord",
    "TelemetrySink",
    "TuningDecided",
    "first_divergence",
    "read_jsonl",
    "record_from_dict",
]


def __getattr__(name: str):
    # Scenario imports the harness packages, which import repro.runtime —
    # resolve it lazily to keep the package import-cycle free.
    if name == "Scenario":
        from .scenario import Scenario

        return Scenario
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
