"""Per-request routing over replicated owners: the routing plane.

The two-plane split: the *assignment plane* decides, at tuning-round
cadence, which ``r`` servers own each file set
(:mod:`repro.placement.replicated`); the *routing plane* decides, at
per-request cadence, which of the currently-live owners serves this one
request.  This module is the routing plane: a small
:class:`RequestRouter` family shared by all three harness stacks.

- :class:`SingleOwnerRouter` — always the primary (slot 0).  The
  passthrough router: with r=1 it draws no randomness and reproduces the
  pre-refactor dispatch byte-for-byte (the golden-replay guard).
- :class:`JSQRouter` — join-the-shortest-queue over ``d`` sampled
  owners: the power-of-d-choices policy of the Mukhopadhyay & Mazumdar
  heterogeneous-server analyses (arXiv 1502.05786, 1311.5806).
  Queue-length-only: blind to server speed.
- :class:`WeightedPowerOfDRouter` — JSQ(d) with queue length normalized
  by *observed* per-server latency (an EWMA over completion feedback),
  so it discovers speed differences — including gray-failure limps —
  from latency alone, exactly the information regime ANU's tuner lives
  in.  It gets no out-of-band speed signal.

Routers are deterministic given their bound RNG stream: harnesses bind a
named stream from the run's :class:`~repro.sim.rng.StreamFactory`, so
routed runs replay from the seed like everything else.  ``choose``
returns an *index* into the candidate sequence, which arrives in owner-
slot order — the caller maps it back to a (slot, server) pair for the
dispatch telemetry record.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "RequestRouter",
    "SingleOwnerRouter",
    "JSQRouter",
    "WeightedPowerOfDRouter",
    "ROUTER_FACTORIES",
    "make_router",
]


class RequestRouter:
    """Chooses which live owner of a file set serves one request.

    Subclasses override :meth:`choose`; routers that learn from
    completion latencies set ``observes = True`` and override
    :meth:`observe` (the hot path skips the feedback call entirely for
    routers that don't want it).
    """

    #: Registry/telemetry name of this router.
    name: str = "abstract"
    #: True when the router wants per-completion latency feedback.
    observes: bool = False

    def __init__(self) -> None:
        self._rng: np.random.Generator | None = None

    def bind(self, rng: np.random.Generator) -> None:
        """Attach the run's named RNG stream (before any dispatch)."""
        self._rng = rng

    def choose(
        self,
        fileset: str,
        candidates: Sequence[str],
        queue_len: Callable[[str], int],
    ) -> int:
        """Index (into ``candidates``) of the server to dispatch to.

        ``candidates`` is the file set's live owners in slot order and is
        never empty — the harness buffers the request instead of calling
        the router when every owner is down.
        """
        raise NotImplementedError

    def observe(self, server: str, latency: float) -> None:
        """Completion feedback (response time); default routers ignore it."""

    def _sample(self, count: int, d: int) -> Sequence[int]:
        """``min(d, count)`` distinct candidate indices, in slot order.

        Draws from the bound stream only when there is an actual choice
        to make (``count > d``), so small owner sets cost no randomness.
        """
        if count <= d:
            return range(count)
        rng = self._rng
        if rng is None:
            raise RuntimeError(f"router {self.name!r} used before bind()")
        picks = rng.choice(count, size=d, replace=False)
        return sorted(int(i) for i in picks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class SingleOwnerRouter(RequestRouter):
    """Always the primary owner: the byte-identical passthrough."""

    name = "single"

    def choose(
        self,
        fileset: str,
        candidates: Sequence[str],
        queue_len: Callable[[str], int],
    ) -> int:
        """Slot 0, unconditionally; no randomness, no queue reads."""
        return 0


class JSQRouter(RequestRouter):
    """Join-the-shortest-queue over ``d`` sampled owners (power of d)."""

    def __init__(self, d: int = 2) -> None:
        super().__init__()
        if d < 1:
            raise ValueError(f"need d >= 1 choices, got {d!r}")
        self.d = d
        self.name = f"jsq{d}"

    def choose(
        self,
        fileset: str,
        candidates: Sequence[str],
        queue_len: Callable[[str], int],
    ) -> int:
        """The sampled owner with the shortest queue (ties to the lowest
        slot, so replays don't depend on dict order)."""
        best = -1
        best_q = 0
        for i in self._sample(len(candidates), self.d):
            q = queue_len(candidates[i])
            if best < 0 or q < best_q:
                best, best_q = i, q
        return best


class WeightedPowerOfDRouter(RequestRouter):
    """JSQ(d) weighted by observed per-server latency (limp discovery).

    Scores each sampled owner ``(queue + 1) * (ewma_latency + eps)`` and
    picks the minimum: queue length normalized by the server's observed
    speed, estimated purely from completion response times — a limping
    server's EWMA rises with its service times, steering work away long
    before its queue alone would.  Servers with no observations yet
    score as infinitely fast (EWMA 0), which makes the first touch of
    each replica an exploration step.
    """

    observes = True

    def __init__(self, d: int = 2, decay: float = 0.2) -> None:
        super().__init__()
        if d < 1:
            raise ValueError(f"need d >= 1 choices, got {d!r}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay!r}")
        self.d = d
        self.decay = decay
        self.name = f"wjsq{d}"
        self._ewma: dict[str, float] = {}

    def observe(self, server: str, latency: float) -> None:
        """Fold one completion's response time into the server's EWMA."""
        previous = self._ewma.get(server)
        if previous is None:
            self._ewma[server] = latency
        else:
            self._ewma[server] = (
                (1.0 - self.decay) * previous + self.decay * latency
            )

    def choose(
        self,
        fileset: str,
        candidates: Sequence[str],
        queue_len: Callable[[str], int],
    ) -> int:
        """The sampled owner with the lowest speed-normalized queue."""
        best = -1
        best_score = 0.0
        for i in self._sample(len(candidates), self.d):
            server = candidates[i]
            score = (queue_len(server) + 1.0) * (
                self._ewma.get(server, 0.0) + 1e-9
            )
            if best < 0 or score < best_score:
                best, best_score = i, score
        return best


#: Router registry: sweep-axis value -> fresh-router factory.  Routers
#: are stateful (bound RNG, EWMA tables), so — like policies — the
#: registry holds factories and every run builds its own instance.
ROUTER_FACTORIES: dict[str, Callable[[], RequestRouter]] = {
    "single": SingleOwnerRouter,
    "jsq2": lambda: JSQRouter(2),
    "jsq3": lambda: JSQRouter(3),
    "wjsq2": lambda: WeightedPowerOfDRouter(2),
    "wjsq3": lambda: WeightedPowerOfDRouter(3),
}


def make_router(name: str) -> RequestRouter:
    """Build a fresh router from its registry name."""
    try:
        factory = ROUTER_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown router {name!r}; known: "
            f"{', '.join(sorted(ROUTER_FACTORIES))}"
        ) from None
    return factory()
