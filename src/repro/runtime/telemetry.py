"""Structured telemetry: typed simulation events with pluggable sinks.

Every harness built on :mod:`repro.runtime` emits the same stream of typed
records — request arrival/dispatch/completion, tuning decisions, file-set
move start/finish, fault injection, delegate election — so metrics and
experiment tooling consume one well-defined surface instead of reaching
into simulation internals.

Telemetry is strictly *observational*: emitting a record draws no random
numbers and schedules no events, so enabling a sink never perturbs a
seeded replay.  The default :data:`NULL_SINK` is disabled; harness code
guards every emission with ``if sink.enabled:`` so a silent run skips even
record construction and stays within measurement noise of the
pre-telemetry hot path (gated by ``benchmarks/bench_runtime.py``).

Sinks:

- :class:`MemorySink` — in-process list with query helpers (tests, metrics);
- :class:`JsonlSink` — one JSON object per line for offline analysis;
- :class:`DigestSink` — rolling hash chain for replay comparison
  (:mod:`repro.dsan`);
- :data:`NULL_SINK` — the disabled default.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Callable, ClassVar, IO, Iterable, Iterator

from ..sweep.api import register_process_cache
from ..units import Seconds

__all__ = [
    "TelemetryRecord",
    "RequestArrived",
    "RequestDispatched",
    "RequestCompleted",
    "TuningDecided",
    "MoveStarted",
    "MoveFinished",
    "FaultInjected",
    "MembershipChanged",
    "DelegateElected",
    "SpeedChanged",
    "TelemetrySink",
    "NullSink",
    "NULL_SINK",
    "MemorySink",
    "JsonlSink",
    "DigestSink",
    "first_divergence",
    "record_from_dict",
]


@dataclass(frozen=True, slots=True)
class TelemetryRecord:
    """Base class of every telemetry record: a timestamped observation."""

    #: Discriminator used by :meth:`to_dict` / :func:`record_from_dict`.
    kind: ClassVar[str] = "record"

    time: Seconds

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable dict, ``kind`` included."""
        payload = asdict(self)
        payload["kind"] = self.kind
        return payload


@dataclass(frozen=True, slots=True)
class RequestArrived(TelemetryRecord):
    """A request (or semantic operation) entered the system."""

    kind: ClassVar[str] = "arrival"

    fileset: str
    cost: float


@dataclass(frozen=True, slots=True)
class RequestDispatched(TelemetryRecord):
    """A request was submitted to a server's queue.

    ``router`` and ``replica`` record the routing-plane decision under
    replicated ownership: which :class:`~repro.runtime.routing`
    router chose the target, and which owner-set slot it landed on
    (0 = primary).  The defaults are the classic single-owner dispatch,
    so pre-replication JSONL streams round-trip unchanged.
    """

    kind: ClassVar[str] = "dispatch"

    fileset: str
    server: str
    service_time: Seconds
    router: str = "single"
    replica: int = 0


@dataclass(frozen=True, slots=True)
class RequestCompleted(TelemetryRecord):
    """A request finished service; ``latency`` is the harness's metric."""

    kind: ClassVar[str] = "completion"

    server: str
    latency: Seconds


@dataclass(frozen=True, slots=True)
class TuningDecided(TelemetryRecord):
    """One delegate round concluded (whether or not anything changed)."""

    kind: ClassVar[str] = "tuning"

    round: int
    changed: bool
    #: Servers that actually reported this round.
    reporting: int
    #: System average latency the tuner computed (None when the driver
    #: does not surface it, e.g. opaque policies).
    average: float | None = None
    #: server -> multiplicative share factor applied (empty if untuned).
    tuned: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class MoveStarted(TelemetryRecord):
    """A file set began moving over the shared disk."""

    kind: ClassVar[str] = "move-start"

    fileset: str
    source: str | None
    destination: str


@dataclass(frozen=True, slots=True)
class MoveFinished(TelemetryRecord):
    """A file-set move completed; ownership now rests at ``destination``."""

    kind: ClassVar[str] = "move-finish"

    fileset: str
    destination: str


@dataclass(frozen=True, slots=True)
class FaultInjected(TelemetryRecord):
    """A scheduled fault/membership event was applied."""

    kind: ClassVar[str] = "fault"

    fault: str  # FaultKind.value: fail / recover / commission / ...
    server: str


@dataclass(frozen=True, slots=True)
class MembershipChanged(TelemetryRecord):
    """The membership director finished applying one lifecycle event.

    Emitted after the re-placement that follows a fault/commission, with
    the move classification from :mod:`repro.core.movement`: ``orphaned``
    counts recovery moves (file sets whose source is gone), ``rebalanced``
    counts live-to-live moves, ``stayed`` counts boundary-preserved file
    sets — the paper's cache-preservation claim, observable per event.
    """

    kind: ClassVar[str] = "membership"

    fault: str   # FaultKind.value that triggered the change
    server: str
    live: int    # live servers after the event
    orphaned: int = 0
    rebalanced: int = 0
    stayed: int = 0


@dataclass(frozen=True, slots=True)
class DelegateElected(TelemetryRecord):
    """A node won a delegate election (proto control plane)."""

    kind: ClassVar[str] = "election"

    delegate: str
    epoch: int


@dataclass(frozen=True, slots=True)
class SpeedChanged(TelemetryRecord):
    """A server's effective speed changed (gray failure or restore).

    Emitted by the membership director for ``DEGRADE``/``RESTORE`` events
    *instead of* :class:`MembershipChanged`: a limping server is still
    live, keeps its mapped share, and triggers no re-placement — the only
    observable is the speed itself.  ``factor`` is the new degradation
    multiplier (1.0 on restore); ``effective_speed`` is base × factor.
    """

    kind: ClassVar[str] = "speed"

    server: str
    factor: float
    effective_speed: float


_RECORD_TYPES: dict[str, type[TelemetryRecord]] = {
    cls.kind: cls
    for cls in (
        RequestArrived,
        RequestDispatched,
        RequestCompleted,
        TuningDecided,
        MoveStarted,
        MoveFinished,
        FaultInjected,
        MembershipChanged,
        DelegateElected,
        SpeedChanged,
    )
}


def record_from_dict(payload: dict[str, Any]) -> TelemetryRecord:
    """Inverse of :meth:`TelemetryRecord.to_dict` (JSONL round trip)."""
    data = dict(payload)
    kind = data.pop("kind")
    try:
        cls = _RECORD_TYPES[kind]
    except KeyError:
        raise ValueError(f"unknown telemetry record kind {kind!r}") from None
    return cls(**data)


class TelemetrySink:
    """Receives telemetry records from a harness.

    ``enabled`` is a class-level constant the hot path checks before even
    constructing a record; subclasses that want the stream leave it True.
    """

    enabled: ClassVar[bool] = True

    def emit(self, record: TelemetryRecord) -> None:  # pragma: no cover
        """Receive one record (subclasses decide what to do with it)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (no-op by default)."""


class NullSink(TelemetrySink):
    """The disabled default: records are never constructed, never stored."""

    enabled: ClassVar[bool] = False

    def emit(self, record: TelemetryRecord) -> None:
        """Drop the record (never called on the guarded hot path)."""


#: Shared disabled sink; harnesses default to this.
NULL_SINK = NullSink()


class MemorySink(TelemetrySink):
    """Collects records in memory, with small query helpers."""

    def __init__(self) -> None:
        self.records: list[TelemetryRecord] = []

    def emit(self, record: TelemetryRecord) -> None:
        """Append the record to the in-memory list."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TelemetryRecord]:
        return iter(self.records)

    def of_kind(self, kind: str) -> list[TelemetryRecord]:
        """All records with the given ``kind`` discriminator, in order."""
        return [r for r in self.records if r.kind == kind]

    def counts(self) -> dict[str, int]:
        """kind -> number of records."""
        out: dict[str, int] = {}
        for record in self.records:
            out[record.kind] = out.get(record.kind, 0) + 1
        return out


class JsonlSink(TelemetrySink):
    """Writes one JSON object per record to a file (offline analysis)."""

    def __init__(self, target: str | IO[str]) -> None:
        if isinstance(target, str):
            self._file: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False

    def emit(self, record: TelemetryRecord) -> None:
        """Serialize the record as one sorted-key JSON line."""
        self._file.write(json.dumps(record.to_dict(), sort_keys=True))
        self._file.write("\n")

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_jsonl(source: str | Iterable[str]) -> list[TelemetryRecord]:
    """Parse records back from a JSONL file path or iterable of lines.

    Accepts the same ``str`` path / open-file duality as
    :class:`JsonlSink`, so ``read_jsonl(path)`` round-trips what
    ``JsonlSink(path)`` wrote.  Blank lines are skipped.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as file:
            return [
                record_from_dict(json.loads(ln)) for ln in file if ln.strip()
            ]
    return [record_from_dict(json.loads(ln)) for ln in source if ln.strip()]


class TeeSink(TelemetrySink):
    """Fans one stream out to several sinks (e.g. memory + JSONL)."""

    def __init__(self, *sinks: TelemetrySink) -> None:
        self.sinks = tuple(s for s in sinks if s.enabled)

    def emit(self, record: TelemetryRecord) -> None:
        """Forward the record to every enabled child sink."""
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


#: Per-record-class field-name cache for :class:`DigestSink` — avoids
#: re-walking ``dataclasses.fields`` on every emission.  Registered as a
#: process cache: contents are derivable (and re-derived) anywhere, so a
#: worker never depends on what the parent happened to memoize.
_DIGEST_FIELDS: dict[type, tuple[str, ...]] = {}
register_process_cache(_DIGEST_FIELDS.clear)


def _canonical_value(value: Any) -> Any:
    """Normalize a record field for hashing: dicts hash by sorted items.

    Two dicts that compare equal must hash equally regardless of
    insertion order — otherwise the chain would flag a "divergence" on
    runs whose records are ``==``-identical.
    """
    if type(value) is dict:
        return tuple(sorted(value.items()))
    return value


class DigestSink(TelemetrySink):
    """Folds every record into a rolling hash chain (the dsan backbone).

    ``chain[i]`` is a 128-bit BLAKE2b digest of record *i*'s canonical
    payload — ``repr`` of ``(kind, *field values)`` with dict fields
    item-sorted — chained onto digest ``i-1``, so ``chain[i]`` of two
    runs is equal **iff** their first ``i+1`` records are equal.  That
    prefix property is what lets :mod:`repro.dsan` binary-search two
    chains for the first divergent event instead of replaying both
    streams side by side.  (``repr`` rather than JSON: float reprs are
    exact shortest round-trips, and skipping the dict build plus
    serializer keeps the per-record cost a few microseconds — the bench
    suite gates a full hashed run at roughly 2x the silent run.)

    With ``keep_records=True`` the raw records are retained as well so
    the divergent event can be *named*, not just indexed; leave it off
    for pure chain comparison (e.g. the CI smoke job) where memory
    should stay flat.
    """

    def __init__(self, keep_records: bool = False) -> None:
        self.chain: list[str] = []
        self.records: list[TelemetryRecord] | None = (
            [] if keep_records else None
        )
        self._last = b""

    def emit(self, record: TelemetryRecord) -> None:
        """Chain the record's canonical payload onto the running digest."""
        cls = type(record)
        names = _DIGEST_FIELDS.get(cls)
        if names is None:
            names = tuple(f.name for f in fields(record))
            _DIGEST_FIELDS[cls] = names
        payload = repr(
            (record.kind, *[_canonical_value(getattr(record, n)) for n in names])
        ).encode()
        digest = hashlib.blake2b(self._last + payload, digest_size=16)
        self._last = digest.digest()
        self.chain.append(digest.hexdigest())
        if self.records is not None:
            self.records.append(record)

    def __len__(self) -> int:
        return len(self.chain)


def first_divergence(a: list[str], b: list[str]) -> int | None:
    """Index of the first event where two digest chains diverge, or None.

    Binary search, not a linear scan: the chain construction guarantees
    ``a[i] == b[i]`` iff the record prefixes ``[0, i]`` match, so the
    divergence point is the boundary of a monotone predicate.  If one
    chain is a strict prefix of the other, the first missing index is
    the divergence (the shorter run stopped emitting there).
    """
    shared = min(len(a), len(b))
    if shared and a[shared - 1] != b[shared - 1]:
        lo, hi = 0, shared - 1  # invariant: a[hi] != b[hi]
        while lo < hi:
            mid = (lo + hi) // 2
            if a[mid] == b[mid]:
                lo = mid + 1
            else:
                hi = mid
        return lo
    if len(a) != len(b):
        return shared
    return None


class CallbackSink(TelemetrySink):
    """Invokes a callable per record (lightweight custom consumers)."""

    def __init__(self, fn: Callable[[TelemetryRecord], None]) -> None:
        self._fn = fn

    def emit(self, record: TelemetryRecord) -> None:
        """Hand the record to the wrapped callable."""
        self._fn(record)
