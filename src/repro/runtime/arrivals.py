"""Arrival scheduling strategies shared by the harness adapters.

Two patterns cover every harness in the repository:

- :class:`ArrivalPump` — *lazy chaining*: exactly one arrival event is on
  the calendar at a time; firing it schedules the next record before
  handing the current one to the harness.  This is how the queueing
  cluster replays traces (the calendar stays O(1) in trace length).
- :func:`schedule_all` — *eager*: every timed item is placed on the
  calendar up front.  The timed full-system run uses this for its
  operation list (bounded, in-memory input).

Both preserve the exact event ordering of the pre-runtime harnesses, so
seeded replays are bit-identical.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, TypeVar

from ..sim.engine import Engine

T = TypeVar("T")

__all__ = ["ArrivalPump", "schedule_all"]


class ArrivalPump:
    """Chained lazy replay of a time-ordered record stream.

    ``on_arrival(record)`` runs at each record's time; the *next* record
    is scheduled before the callback runs, matching the classic
    self-rescheduling arrival pattern (and keeping insertion order — and
    therefore tie-breaking — identical to it).
    """

    def __init__(
        self,
        engine: Engine,
        records: Iterator[T],
        on_arrival: Callable[[T], None],
        time_of: Callable[[T], float],
    ) -> None:
        self._engine = engine
        self._records = records
        self._on_arrival = on_arrival
        self._time_of = time_of
        #: Arrivals delivered so far (instrumentation).
        self.delivered = 0

    def start(self) -> None:
        """Schedule the first record (no-op for an empty stream)."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        record = next(self._records, None)
        if record is None:
            return
        self._engine.schedule_at(self._time_of(record), self._fire, record)

    def _fire(self, record: T) -> None:
        self._schedule_next()
        self.delivered += 1
        self._on_arrival(record)


def schedule_all(
    engine: Engine,
    items: Iterable[T],
    on_arrival: Callable[[T], None],
    time_of: Callable[[T], float],
) -> int:
    """Place every item on the calendar up front; returns the count."""
    n = 0
    for item in items:
        engine.schedule_at(time_of(item), on_arrival, item)
        n += 1
    return n
