"""Control-plane message types.

The paper's tuning protocol (§4) needs four interactions: servers report
latencies to the delegate; the delegate distributes a new server→interval
mapping ("this is the only replicated state needed by our algorithm");
everyone watches the delegate's heartbeat; and a failed delegate triggers
an election.  Each interaction is one message type below.

Config updates carry a monotonically increasing *epoch* so that stale
updates (from a deposed delegate or a slow network path) are discarded —
the versioning that makes the stateless fail-over story safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.tuning import ServerReport


@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness beacon from the current delegate."""

    delegate: str
    epoch: int


@dataclass(frozen=True)
class ReportRequest:
    """Delegate asks every server for its last-interval latency report."""

    delegate: str
    epoch: int
    round_id: int


@dataclass(frozen=True)
class ReportReply:
    """A server's latency report for one collection round.

    ``queue_depth`` piggybacks the node's instantaneous facility queue
    length on the reply — the routing plane's signal, exposed to the
    control plane for observability (the delegate tuner itself stays
    latency-driven).  Defaults to 0 so report-only senders need no change.
    """

    round_id: int
    report: ServerReport
    queue_depth: int = 0


@dataclass(frozen=True)
class ConfigUpdate:
    """New relative shares for the unit interval, versioned by epoch."""

    epoch: int
    shares: dict[str, float] = field(default_factory=dict)
    issued_by: str = ""


@dataclass(frozen=True)
class Election:
    """Bully election probe: 'I want to be delegate; anyone bigger?'"""

    candidate: str


@dataclass(frozen=True)
class ElectionOk:
    """Bully election answer from a higher-priority node."""

    responder: str


@dataclass(frozen=True)
class Coordinator:
    """Election winner announcement."""

    delegate: str
    epoch: int
