"""Server nodes running the delegate protocol: election, heartbeats,
report collection, and config distribution.

The paper's §4 control plane, realized as an event-driven protocol:

- every server watches the delegate's **heartbeat**; a timeout triggers a
  **bully election** (highest-priority live node wins — any deterministic
  election works, the paper does not prescribe one);
- the winning delegate runs a **tuning round** every interval: it
  broadcasts a report request, collects replies for a bounded window,
  feeds whatever arrived to :class:`repro.core.tuning.DelegateTuner`
  (missing replies simply don't participate — a slow server looks idle,
  which is safe because idle servers are excluded from the average), and
  broadcasts a **versioned config update** with the new shares;
- nodes apply a config iff its epoch is >= their last seen epoch, so
  stale updates from deposed delegates are discarded;
- a *new* delegate starts with no previous reports, so the divergent
  heuristic is skipped for its first round — the paper's stateless
  degradation, for free.

The protocol layer is deliberately separable: ``on_config`` is a callback,
so the same nodes can drive a real :class:`repro.core.anu.ANUPlacement`
(see the integration tests) or a mock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.tuning import DelegateTuner, ServerReport, TuningConfig
from ..runtime.loop import DelegateRoundDriver
from ..runtime.telemetry import (
    NULL_SINK,
    DelegateElected,
    TelemetrySink,
    TuningDecided,
)
from ..sim.engine import Engine
from .messages import (
    ConfigUpdate,
    Coordinator,
    Election,
    ElectionOk,
    Heartbeat,
    ReportReply,
    ReportRequest,
)
from .network import Network


@dataclass(frozen=True)
class ProtocolConfig:
    """Timers of the control plane (seconds)."""

    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 3.5
    election_timeout: float = 0.5
    report_timeout: float = 0.5
    tuning_interval: float = 10.0

    def __post_init__(self) -> None:
        if min(
            self.heartbeat_interval,
            self.heartbeat_timeout,
            self.election_timeout,
            self.report_timeout,
            self.tuning_interval,
        ) <= 0:
            raise ValueError("all protocol timers must be positive")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ValueError("heartbeat_timeout must exceed heartbeat_interval")


#: Supplies a node's latency report when the delegate asks.
ReportSource = Callable[[], ServerReport]
#: Supplies a node's instantaneous facility queue depth (routing-plane
#: signal, piggybacked on report replies).
QueueSource = Callable[[], int]
#: Invoked when a node applies a new configuration.
ConfigSink = Callable[[dict[str, float], int], None]


class ServerNode:
    """One server participating in the delegate protocol."""

    def __init__(
        self,
        name: str,
        priority: int,
        engine: Engine,
        network: Network,
        report_source: ReportSource,
        on_config: ConfigSink | None = None,
        config: ProtocolConfig | None = None,
        tuning: TuningConfig | None = None,
        initial_shares: dict[str, float] | None = None,
        telemetry: TelemetrySink | None = None,
        queue_source: QueueSource | None = None,
    ) -> None:
        self.name = name
        self.priority = priority
        self.engine = engine
        self.network = network
        self.config = config or ProtocolConfig()
        self.report_source = report_source
        self.queue_source = queue_source
        self.on_config = on_config
        self.tuner = DelegateTuner(tuning)
        self.telemetry = telemetry if telemetry is not None else NULL_SINK
        # Round bookkeeping shared with the harness tuning loops.
        self._rounds = DelegateRoundDriver(self.tuner)

        self.alive = True
        #: Effective speed multiplier (gray failures); 1.0 means healthy.
        #: The protocol itself never reads it — latency models may, to
        #: couple reported latency to a limp — and :meth:`recover`
        #: resets it, mirroring the roster's reboot-cures-the-limp rule.
        self.speed = 1.0
        self.epoch = 0
        self.delegate: str | None = None
        self.shares: dict[str, float] = dict(initial_shares or {})
        self.applied_configs: list[ConfigUpdate] = []
        self.elections_started = 0

        self._last_heartbeat = 0.0
        self._election_pending = False
        self._got_ok = False
        self._election_round = 0
        self._round_id = 0
        self._round_replies: dict[int, list[ReportReply]] = {}
        #: Last collection round's per-server queue depths (routing-plane
        #: view, refreshed by :meth:`_finish_round` on the delegate).
        self.last_queue_depths: dict[str, int] = {}

        network.register(name, self._on_message)

    @property
    def rounds_run(self) -> int:
        """Delegate rounds this node has completed (driver-owned)."""
        return self._rounds.rounds_run

    @property
    def _previous_reports(self) -> list[ServerReport] | None:
        return self._rounds.previous_reports

    @_previous_reports.setter
    def _previous_reports(self, value: list[ServerReport] | None) -> None:
        self._rounds.previous_reports = value

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin monitoring; nodes bootstrap by racing an election."""
        self._last_heartbeat = self.engine.now
        # Stagger by priority so the highest-priority node usually wins the
        # bootstrap race without churn.
        delay = 0.01 * (1 + max(0, 100 - self.priority))
        self.engine.schedule(delay, self._maybe_start_election)
        self.engine.schedule(
            self.config.heartbeat_timeout, self._check_heartbeat
        )

    def crash(self) -> None:
        """Stop participating (the network drops our messages too)."""
        self.alive = False
        # A crash mid-election must not latch the pending flag: the stale
        # _election_decide event bails out on ``not alive``, so nothing
        # would ever clear it and a recovered node could never elect again.
        self._election_pending = False
        self._got_ok = False
        self.network.set_down(self.name)

    def shutdown(self) -> None:
        """Stop participating quietly (end of simulation, not a crash).

        Unlike :meth:`crash` the network registration is untouched; the
        point is only that every self-rescheduling timer loop
        (heartbeats, monitors, tuning rounds) observes ``alive == False``
        and stops, letting the event calendar drain.
        """
        self.alive = False

    def recover(self) -> None:
        """Rejoin: reset volatile protocol state and re-monitor."""
        self.alive = True
        self.speed = 1.0
        self.network.set_up(self.name)
        self.delegate = None
        self._previous_reports = None
        self._election_pending = False
        self._got_ok = False
        self._last_heartbeat = self.engine.now
        self.engine.schedule(0.0, self._maybe_start_election)
        self.engine.schedule(self.config.heartbeat_timeout, self._check_heartbeat)

    @property
    def is_delegate(self) -> bool:
        return self.alive and self.delegate == self.name

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def _on_message(self, src: str, message: object) -> None:
        if not self.alive:
            return
        if isinstance(message, Heartbeat):
            self._on_heartbeat(message)
        elif isinstance(message, Election):
            self._on_election(src, message)
        elif isinstance(message, ElectionOk):
            self._got_ok = True
        elif isinstance(message, Coordinator):
            self._on_coordinator(message)
        elif isinstance(message, ReportRequest):
            self._on_report_request(src, message)
        elif isinstance(message, ReportReply):
            self._on_report_reply(message)
        elif isinstance(message, ConfigUpdate):
            self._on_config_update(message)

    def _accepts_leader(self, leader: str, epoch: int) -> bool:
        """Newer epochs always win; equal epochs tie-break by priority.

        Message loss can let two nodes win concurrent elections at the same
        epoch; the deterministic tie-break makes every node converge on the
        higher-priority claimant, and the loser abdicates (its delegate
        loops check ``is_delegate`` and stop).
        """
        if epoch > self.epoch:
            return True
        if epoch < self.epoch:
            return False
        current = self.delegate
        if current is None or current == leader:
            return True
        return self._priority_of(leader) >= self._priority_of(current)

    def _on_heartbeat(self, hb: Heartbeat) -> None:
        if self._accepts_leader(hb.delegate, hb.epoch):
            self.epoch = max(self.epoch, hb.epoch)
            self.delegate = hb.delegate
            self._last_heartbeat = self.engine.now

    def _on_coordinator(self, msg: Coordinator) -> None:
        if self._accepts_leader(msg.delegate, msg.epoch):
            self.epoch = max(self.epoch, msg.epoch)
            self.delegate = msg.delegate
            self._last_heartbeat = self.engine.now
            self._election_pending = False
            if msg.delegate == self.name:
                self._become_delegate()

    def _on_election(self, src: str, _msg: Election) -> None:
        # Bully: candidates only probe strictly-higher-priority nodes, so
        # receiving a probe means we outrank the sender — answer and run
        # our own election.
        self.network.send(self.name, src, ElectionOk(responder=self.name))
        self._maybe_start_election()

    def _on_report_request(self, src: str, req: ReportRequest) -> None:
        if req.epoch >= self.epoch:
            self.epoch = max(self.epoch, req.epoch)
            self.delegate = req.delegate
            self._last_heartbeat = self.engine.now
        self.network.send(self.name, src, self._make_reply(req.round_id))

    def _make_reply(self, round_id: int) -> ReportReply:
        """This node's reply: latency report plus piggybacked queue depth."""
        depth = self.queue_source() if self.queue_source is not None else 0
        return ReportReply(
            round_id=round_id, report=self.report_source(), queue_depth=depth
        )

    def _on_report_reply(self, reply: ReportReply) -> None:
        bucket = self._round_replies.get(reply.round_id)
        if bucket is not None:
            bucket.append(reply)

    def _on_config_update(self, update: ConfigUpdate) -> None:
        if update.epoch < self.epoch:
            return  # stale delegate
        self.epoch = update.epoch
        self.shares = dict(update.shares)
        self.applied_configs.append(update)
        if self.on_config is not None:
            self.on_config(dict(update.shares), update.epoch)

    # ------------------------------------------------------------------
    # Heartbeat monitoring and election
    # ------------------------------------------------------------------
    def _check_heartbeat(self) -> None:
        if not self.alive:
            return
        if self.is_delegate:
            pass  # we produce heartbeats, we don't watch them
        elif (
            self.engine.now - self._last_heartbeat
            > self.config.heartbeat_timeout
        ):
            self._maybe_start_election()
        self.engine.schedule(self.config.heartbeat_interval, self._check_heartbeat)

    def _maybe_start_election(self) -> None:
        if not self.alive or self._election_pending or self.is_delegate:
            return
        self._election_pending = True
        self._got_ok = False
        self._election_round += 1
        self.elections_started += 1
        higher = [
            n for n in self.network.nodes
            if n != self.name and self._priority_of(n) > self.priority
        ]
        for node in higher:
            self.network.send(self.name, node, Election(candidate=self.name))
        self.engine.schedule(
            self.config.election_timeout, self._election_decide,
            self._election_round,
        )

    def _priority_of(self, name: str) -> int:
        # Priority is communicated out-of-band (static cluster config in
        # the target system); here it is the registry's numeric suffix.
        digits = "".join(ch for ch in name if ch.isdigit())
        return int(digits) if digits else 0

    def _election_decide(self, round_: int) -> None:
        if (
            not self.alive
            or not self._election_pending
            or round_ != self._election_round
        ):
            return  # stale timer from an election interrupted by a crash
        if self._got_ok:
            # A higher-priority node lives; wait for its Coordinator (the
            # heartbeat monitor restarts the election if none arrives).
            self._election_pending = False
            self._last_heartbeat = self.engine.now
            return
        # We win: bump the epoch and announce.
        self.epoch += 1
        self.delegate = self.name
        self._election_pending = False
        self.network.broadcast(
            self.name, Coordinator(delegate=self.name, epoch=self.epoch)
        )
        self._become_delegate()

    # ------------------------------------------------------------------
    # Delegate duties
    # ------------------------------------------------------------------
    def _become_delegate(self) -> None:
        self._rounds.reset()  # stateless: fresh delegate history
        if self.telemetry.enabled:
            self.telemetry.emit(
                DelegateElected(
                    time=self.engine.now, delegate=self.name, epoch=self.epoch
                )
            )
        self._send_heartbeat()
        self.engine.schedule(self.config.tuning_interval, self._tuning_round)

    def _send_heartbeat(self) -> None:
        if not self.is_delegate:
            return
        self.network.broadcast(
            self.name, Heartbeat(delegate=self.name, epoch=self.epoch)
        )
        self.engine.schedule(self.config.heartbeat_interval, self._send_heartbeat)

    def _tuning_round(self) -> None:
        if not self.is_delegate:
            return
        self._round_id += 1
        round_id = self._round_id
        self._round_replies[round_id] = [self._make_reply(round_id)]
        self.network.broadcast(
            self.name,
            ReportRequest(delegate=self.name, epoch=self.epoch, round_id=round_id),
        )
        self.engine.schedule(
            self.config.report_timeout, self._finish_round, round_id
        )
        self.engine.schedule(self.config.tuning_interval, self._tuning_round)

    def _finish_round(self, round_id: int) -> None:
        replies = self._round_replies.pop(round_id, [])
        if not self.is_delegate or not replies:
            return
        # Tune only over the servers that answered; shares for silent
        # servers are preserved as-is.  The shared round driver filters the
        # previous reports down to this round's responders, so the
        # divergent gate only compares a server against its own history.
        named = {reply.report.name: reply.report for reply in replies}
        self.last_queue_depths = {
            reply.report.name: reply.queue_depth for reply in replies
        }
        shares = {
            name: self.shares.get(name, 1.0) for name in named
        }
        decision = self._rounds.compute(shares, list(named.values()))
        if self.telemetry.enabled:
            self.telemetry.emit(
                TuningDecided(
                    time=self.engine.now,
                    round=self._rounds.rounds_run,
                    changed=bool(decision.tuned),
                    reporting=len(named),
                    average=decision.average,
                    tuned=dict(decision.tuned),
                )
            )
        if decision.tuned:
            new_shares = dict(self.shares)
            new_shares.update(decision.new_shares)
            self.epoch += 1
            update = ConfigUpdate(
                epoch=self.epoch, shares=new_shares, issued_by=self.name
            )
            self.network.broadcast(self.name, update, include_self=True)
