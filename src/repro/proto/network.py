"""Simulated message-passing network on the discrete-event engine.

A :class:`Network` connects named nodes.  ``send`` delivers a message
after a random latency drawn from ``[min_latency, max_latency]``, dropping
it with probability ``loss``; messages to down nodes vanish (no errors —
the sender cannot tell a slow node from a dead one, which is what makes
heartbeats and elections necessary).  Delivery order between two nodes is
not guaranteed (independent latency draws), matching a datagram network.

Determinism: all latency/loss draws come from one seeded stream, so
protocol runs replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..sim.engine import Engine


class NetworkError(Exception):
    """Illegal network operation (duplicate node, unknown sender...)."""


@dataclass(frozen=True)
class NetworkConfig:
    """Latency and loss parameters."""

    min_latency: float = 0.001
    max_latency: float = 0.010
    loss: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.min_latency <= self.max_latency:
            raise NetworkError(
                f"need 0 <= min <= max latency, got "
                f"[{self.min_latency!r}, {self.max_latency!r}]"
            )
        if not 0.0 <= self.loss < 1.0:
            raise NetworkError(f"loss must be in [0, 1), got {self.loss!r}")


Handler = Callable[[str, Any], None]  # (sender, message) -> None


class Network:
    """Datagram network between named nodes."""

    def __init__(
        self,
        engine: Engine,
        rng: np.random.Generator,
        config: NetworkConfig | None = None,
    ) -> None:
        self.engine = engine
        self.rng = rng
        self.config = config or NetworkConfig()
        self._handlers: dict[str, Handler] = {}
        self._up: dict[str, bool] = {}
        self.sent = 0
        self.delivered = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    def register(self, name: str, handler: Handler) -> None:
        """Attach a node's message handler under ``name``."""
        if name in self._handlers:
            raise NetworkError(f"node {name!r} already registered")
        self._handlers[name] = handler
        self._up[name] = True

    @property
    def nodes(self) -> list[str]:
        return sorted(self._handlers)

    def is_up(self, name: str) -> bool:
        """True when the node receives messages."""
        return self._up.get(name, False)

    def set_down(self, name: str) -> None:
        """Partition/crash a node: it receives nothing until set_up."""
        if name not in self._handlers:
            raise NetworkError(f"unknown node {name!r}")
        self._up[name] = False

    def set_up(self, name: str) -> None:
        """Heal a node after :meth:`set_down`."""
        if name not in self._handlers:
            raise NetworkError(f"unknown node {name!r}")
        self._up[name] = True

    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, message: Any) -> None:
        """Queue a message for delivery (or silent loss)."""
        if src not in self._handlers:
            raise NetworkError(f"unknown sender {src!r}")
        if dst not in self._handlers:
            raise NetworkError(f"unknown destination {dst!r}")
        self.sent += 1
        if self.config.loss > 0 and self.rng.random() < self.config.loss:
            self.dropped += 1
            return
        delay = float(
            self.rng.uniform(self.config.min_latency, self.config.max_latency)
        )
        self.engine.schedule(delay, self._deliver, src, dst, message)

    def broadcast(self, src: str, message: Any, include_self: bool = False) -> None:
        """Send to every registered node (each copy independently delayed
        and dropped)."""
        for dst in self.nodes:
            if dst == src and not include_self:
                continue
            self.send(src, dst, message)

    def _deliver(self, src: str, dst: str, message: Any) -> None:
        if not self._up.get(dst, False):
            self.dropped += 1
            return
        self.delivered += 1
        self._handlers[dst](src, message)
