"""Control-plane protocol (the §4 delegate machinery).

- :class:`~repro.proto.network.Network` — simulated lossy datagram network;
- :class:`~repro.proto.node.ServerNode` — bully election, heartbeats,
  report collection, versioned config distribution;
- :class:`~repro.proto.control.ControlPlane` — full-cluster harness.
"""

from .control import ControlPlane
from .messages import (
    ConfigUpdate,
    Coordinator,
    Election,
    ElectionOk,
    Heartbeat,
    ReportReply,
    ReportRequest,
)
from .network import Network, NetworkConfig, NetworkError
from .node import ProtocolConfig, ServerNode

__all__ = [
    "ControlPlane",
    "Network",
    "NetworkConfig",
    "NetworkError",
    "ServerNode",
    "ProtocolConfig",
    "Heartbeat",
    "ReportRequest",
    "ReportReply",
    "ConfigUpdate",
    "Election",
    "ElectionOk",
    "Coordinator",
]
