"""Control-plane harness: wire nodes, network, and an ANU placement.

:class:`ControlPlane` assembles a full §4 control plane on one simulation
engine: N server nodes with bully election and heartbeats, a lossy
network, per-node latency sources, and (optionally) a shared
:class:`repro.core.anu.ANUPlacement` that every node's applied configs
drive — demonstrating that the replicated state really is just the region
map.

Intended for tests, the protocol example, and the protocol ablation bench;
the queueing figures use the simpler direct-call delegate in
:mod:`repro.cluster` (protocol latencies are microscopic next to 2-minute
tuning intervals, so the figures are unaffected — the interesting protocol
behaviour is fail-over, which is what this harness exercises).
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..core.tuning import ServerReport, TuningConfig
from ..sim.engine import Engine
from ..sim.rng import StreamFactory
from .network import Network, NetworkConfig
from .node import ProtocolConfig, ServerNode


class ControlPlane:
    """N protocol nodes + network + optional shared latency model."""

    def __init__(
        self,
        n_nodes: int,
        seed: int = 0,
        network_config: NetworkConfig | None = None,
        protocol_config: ProtocolConfig | None = None,
        tuning: TuningConfig | None = None,
        latency_model: Callable[[str, float], ServerReport] | None = None,
    ) -> None:
        """``latency_model(name, now)`` supplies each node's report; the
        default reports constant equal latency (nothing to tune)."""
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.engine = Engine()
        factory = StreamFactory(seed)
        self.network = Network(
            self.engine, factory.stream("network"), network_config
        )
        self._latency_model = latency_model or (
            lambda name, now: ServerReport(name, 0.01, 100)
        )
        names = [f"node{i:02d}" for i in range(n_nodes)]
        initial = {name: 1.0 for name in names}
        self.nodes: dict[str, ServerNode] = {}
        self.config_log: list[tuple[float, str, int]] = []
        for i, name in enumerate(names):
            node = ServerNode(
                name=name,
                priority=i,
                engine=self.engine,
                network=self.network,
                report_source=self._make_source(name),
                on_config=self._make_sink(name),
                config=protocol_config,
                tuning=tuning,
                initial_shares=dict(initial),
            )
            self.nodes[name] = node

    def _make_source(self, name: str):
        return lambda: self._latency_model(name, self.engine.now)

    def _make_sink(self, name: str):
        def sink(shares: Mapping[str, float], epoch: int) -> None:
            self.config_log.append((self.engine.now, name, epoch))

        return sink

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every node (they race the bootstrap election)."""
        for node in self.nodes.values():
            node.start()

    def run_until(self, time: float) -> None:
        """Advance the simulation clock to ``time``."""
        self.engine.run(until=time)

    # ------------------------------------------------------------------
    def crash(self, name: str) -> None:
        """Crash the named node."""
        self.nodes[name].crash()

    def recover(self, name: str) -> None:
        """Recover the named node."""
        self.nodes[name].recover()

    # ------------------------------------------------------------------
    @property
    def live_nodes(self) -> list[str]:
        return sorted(n for n, node in self.nodes.items() if node.alive)

    def current_delegate(self) -> str | None:
        """The delegate as seen by a majority of live nodes (None if the
        cluster disagrees)."""
        views: dict[str, int] = {}
        for node in self.nodes.values():
            if node.alive and node.delegate is not None:
                views[node.delegate] = views.get(node.delegate, 0) + 1
        if not views:
            return None
        best, votes = max(views.items(), key=lambda kv: kv[1])
        return best if votes > len(self.live_nodes) // 2 else None

    def agreed_epoch(self) -> int | None:
        """The config epoch if all live nodes agree, else None."""
        epochs = {n.epoch for n in self.nodes.values() if n.alive}
        return epochs.pop() if len(epochs) == 1 else None

    def shares_agree(self, tolerance: float = 1e-9) -> bool:
        """True when every live node holds the same share map."""
        live = [n for n in self.nodes.values() if n.alive]
        if not live:
            return True
        reference = live[0].shares
        for node in live[1:]:
            if set(node.shares) != set(reference):
                return False
            for key, value in reference.items():
                if abs(node.shares[key] - value) > tolerance:
                    return False
        return True
