"""Control-plane harness: wire nodes, network, and an ANU placement.

:class:`ControlPlane` assembles a full §4 control plane on one simulation
engine: N server nodes with bully election and heartbeats, a lossy
network, per-node latency sources, and (optionally) a shared
:class:`repro.core.anu.ANUPlacement` that every node's applied configs
drive — demonstrating that the replicated state really is just the region
map.

Intended for tests, the protocol example, and the protocol ablation bench;
the queueing figures use the simpler direct-call delegate in
:mod:`repro.cluster` (protocol latencies are microscopic next to 2-minute
tuning intervals, so the figures are unaffected — the interesting protocol
behaviour is fail-over, which is what this harness exercises).
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..core.tuning import ServerReport, TuningConfig
from ..membership.director import MembershipDirector
from ..membership.faults import FaultEvent, FaultKind
from ..membership.lifecycle import MembershipRoster
from ..runtime.telemetry import NULL_SINK, TelemetrySink
from ..sim.engine import Engine
from ..sim.rng import StreamFactory
from ..units import Seconds
from .network import Network, NetworkConfig
from .node import ProtocolConfig, ServerNode


class ControlPlane:
    """N protocol nodes + network + optional shared latency model.

    Implements :class:`repro.membership.director.MembershipHost`:
    crashes, recoveries, and commission/decommission churn go through the
    shared :class:`MembershipDirector`, so membership legality (no double
    crash, a delegate crash needs a surviving node) is enforced by the
    same state machine as every other harness.
    """

    def __init__(
        self,
        n_nodes: int,
        seed: int = 0,
        network_config: NetworkConfig | None = None,
        protocol_config: ProtocolConfig | None = None,
        tuning: TuningConfig | None = None,
        latency_model: Callable[[str, float], ServerReport] | None = None,
        telemetry: TelemetrySink | None = None,
    ) -> None:
        """``latency_model(name, now)`` supplies each node's report; the
        default reports constant equal latency (nothing to tune)."""
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.engine = Engine()
        factory = StreamFactory(seed)
        self.network = Network(
            self.engine, factory.stream("network"), network_config
        )
        self._latency_model = latency_model or (
            lambda name, now: ServerReport(name, 0.01, 100)
        )
        self._protocol_config = protocol_config
        self._tuning = tuning
        self.telemetry = telemetry if telemetry is not None else NULL_SINK
        names = [f"node{i:02d}" for i in range(n_nodes)]
        initial = {name: 1.0 for name in names}
        self.nodes: dict[str, ServerNode] = {}
        self.config_log: list[tuple[float, str, int]] = []
        for i, name in enumerate(names):
            self.nodes[name] = self._make_node(name, i, dict(initial))
        self.roster = MembershipRoster(names)
        self.director = MembershipDirector(
            self.roster,
            host=self,
            telemetry=self.telemetry,
            clock=lambda: Seconds(self.engine.now),
        )

    def _make_node(
        self, name: str, priority: int, shares: dict[str, float]
    ) -> ServerNode:
        return ServerNode(
            name=name,
            priority=priority,
            engine=self.engine,
            network=self.network,
            report_source=self._make_source(name),
            on_config=self._make_sink(name),
            config=self._protocol_config,
            tuning=self._tuning,
            initial_shares=shares,
            telemetry=self.telemetry,
        )

    def _make_source(self, name: str):
        return lambda: self._latency_model(name, self.engine.now)

    def _make_sink(self, name: str):
        def sink(shares: Mapping[str, float], epoch: int) -> None:
            self.config_log.append((self.engine.now, name, epoch))

        return sink

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every node (they race the bootstrap election)."""
        for node in self.nodes.values():
            node.start()

    def run_until(self, time: float) -> None:
        """Advance the simulation clock to ``time``."""
        self.engine.run(until=time)

    # ------------------------------------------------------------------
    def crash(self, name: str) -> None:
        """Crash the named node (roster-checked: it must be up)."""
        self.apply_fault(FaultEvent(Seconds(self.engine.now), FaultKind.FAIL, name))

    def recover(self, name: str) -> None:
        """Recover the named node (roster-checked: it must be down)."""
        self.apply_fault(
            FaultEvent(Seconds(self.engine.now), FaultKind.RECOVER, name)
        )

    def commission(self, name: str, speed: float = 1.0) -> None:
        """A brand-new node joins the control plane and races election."""
        self.apply_fault(
            FaultEvent(Seconds(self.engine.now), FaultKind.COMMISSION, name, speed)
        )

    def decommission(self, name: str) -> None:
        """Gracefully retire a node (timers stop; no crash semantics)."""
        self.apply_fault(
            FaultEvent(Seconds(self.engine.now), FaultKind.DECOMMISSION, name)
        )

    def degrade(self, name: str, factor: float) -> None:
        """Gray failure: the node limps at ``factor`` of full speed."""
        self.apply_fault(
            FaultEvent(
                Seconds(self.engine.now), FaultKind.DEGRADE, name,
                factor=factor,
            )
        )

    def restore(self, name: str) -> None:
        """The limp on ``name`` lifts (roster-checked: it must limp)."""
        self.apply_fault(
            FaultEvent(Seconds(self.engine.now), FaultKind.RESTORE, name)
        )

    def apply_fault(self, event: FaultEvent) -> None:
        """Apply one membership event through the shared director."""
        self.director.apply(event, now=Seconds(self.engine.now))

    # ------------------------------------------------------------------
    # MembershipHost protocol (driven by self.director)
    # ------------------------------------------------------------------
    def crash_server(self, server: str, now: Seconds) -> None:
        """The network drops the node's messages until it recovers."""
        self.nodes[server].crash()
        return None

    def drain_server(self, server: str, now: Seconds) -> None:
        """Quiet stop: timer loops observe ``alive == False`` and end."""
        self.nodes[server].shutdown()

    def restart_server(self, server: str, now: Seconds) -> None:
        """Reset volatile protocol state and rejoin the election race."""
        self.nodes[server].recover()

    def install_server(self, server: str, speed: float, now: Seconds) -> None:
        """Create and start a fresh node (priority above all existing)."""
        priority = max(n.priority for n in self.nodes.values()) + 1
        shares = {name: 1.0 for name in sorted(self.nodes)} | {server: 1.0}
        node = self._make_node(server, priority, shares)
        self.nodes[server] = node
        node.start()

    def set_speed(self, server: str, factor: float, now: Seconds) -> None:
        """Gray failure: the node keeps electing, heartbeating, and
        voting at full protocol speed — only its ``speed`` attribute
        moves, for latency models that couple reports to a limp.  The
        protocol deliberately cannot tell a limping node from a healthy
        one; that blindness is the gray-failure premise."""
        self.nodes[server].speed = factor

    def delegate_failover(self, now: Seconds) -> str | None:
        """Kill the agreed delegate node; the bully election heals it.

        Returns the victim's name so the director records the crash in
        the roster (``None`` when no delegate is currently agreed).  The
        majority view can lag a recent crash — nodes keep voting for a
        dead delegate until heartbeats time out — so an already-down
        victim also counts as "no delegate to kill"."""
        victim = self.current_delegate()
        if victim is None or not self.roster.is_live(victim):
            return None
        self.nodes[victim].crash()
        return victim

    def membership_assignment(self) -> None:
        """The control plane manages no file-set placement."""
        return None

    def reset_round_history(self) -> None:
        """Per-node round history dies with its node; nothing shared."""

    def realize_membership(
        self, old: dict[str, str], new: dict[str, str], now: Seconds
    ) -> None:
        """Never called: :meth:`membership_assignment` returns ``None``."""

    def reinject(self, orphans: object, now: Seconds) -> None:
        """Nothing queues outside the nodes; nothing to re-dispatch."""

    # ------------------------------------------------------------------
    @property
    def live_nodes(self) -> list[str]:
        return sorted(n for n, node in self.nodes.items() if node.alive)

    def current_delegate(self) -> str | None:
        """The delegate as seen by a majority of live nodes (None if the
        cluster disagrees)."""
        views: dict[str, int] = {}
        for node in self.nodes.values():
            if node.alive and node.delegate is not None:
                views[node.delegate] = views.get(node.delegate, 0) + 1
        if not views:
            return None
        best, votes = max(views.items(), key=lambda kv: kv[1])
        return best if votes > len(self.live_nodes) // 2 else None

    def agreed_epoch(self) -> int | None:
        """The config epoch if all live nodes agree, else None."""
        epochs = {n.epoch for n in self.nodes.values() if n.alive}
        return epochs.pop() if len(epochs) == 1 else None

    def shares_agree(self, tolerance: float = 1e-9) -> bool:
        """True when every live node holds the same share map."""
        live = [n for n in self.nodes.values() if n.alive]
        if not live:
            return True
        reference = live[0].shares
        for node in live[1:]:
            if set(node.shares) != set(reference):
                return False
            for key, value in reference.items():
                if abs(node.shares[key] - value) > tolerance:
                    return False
        return True
