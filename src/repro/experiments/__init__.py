"""Experiment harness: configs, runner, figure reproductions, reporting,
multi-seed replication, CSV export, and the scale study."""

from .config import FIGURES, ExperimentConfig
from .export import export_experiment, write_series_csv, write_summary_csv
from .planner import (
    Candidate,
    CandidateResult,
    LatencyObjective,
    PlanReport,
    evaluate_candidate,
    plan_capacity,
)
from .replication import (
    MetricSummary,
    ReplicationResult,
    replicate,
    replication_table,
)
from .scale import ScalePoint, measure_scale_point, scale_study, scale_table
from .figures import (
    IntervalDemoResult,
    RepartitionDemoResult,
    figure3_demo,
    figure4_demo,
    figure5_demo,
    run_figure,
)
from .report import comparison_table, interval_bar, render_experiment, series_block, sparkline
from .runner import (
    available_policies,
    generate_trace,
    make_policy,
    run_experiment,
    run_policy,
)

__all__ = [
    "FIGURES",
    "ExperimentConfig",
    "figure3_demo",
    "figure4_demo",
    "figure5_demo",
    "run_figure",
    "IntervalDemoResult",
    "RepartitionDemoResult",
    "available_policies",
    "make_policy",
    "generate_trace",
    "run_experiment",
    "run_policy",
    "comparison_table",
    "interval_bar",
    "render_experiment",
    "series_block",
    "sparkline",
    "export_experiment",
    "write_series_csv",
    "write_summary_csv",
    "replicate",
    "replication_table",
    "ReplicationResult",
    "MetricSummary",
    "scale_study",
    "scale_table",
    "measure_scale_point",
    "ScalePoint",
    "Candidate",
    "CandidateResult",
    "LatencyObjective",
    "PlanReport",
    "evaluate_candidate",
    "plan_capacity",
]
