"""Frozen experiment configurations for every figure in the paper.

Each figure has a ``paper()`` configuration reproducing the published
parameters and a ``quick()`` configuration (same shape, smaller scale) used
by the test suite and CI-sized benchmark runs.

The paper's §7 setup, common to Figures 6–11:

- five servers with processing power 1, 3, 5, 7, 9;
- tuning interval 2 minutes for the dynamic policies;
- file-set moves take 5–10 seconds (flush + initialize, cold cache);
- latency sampled over one-minute windows for the plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..cluster.cluster import ClusterConfig, paper_servers
from ..cluster.mover import MoveCostModel
from ..workloads.dfstrace import DFSTraceLikeConfig
from ..workloads.synthetic import SyntheticConfig


@dataclass(frozen=True)
class ExperimentConfig:
    """One figure's full parameterization."""

    experiment_id: str
    description: str
    cluster: ClusterConfig
    #: Exactly one of these is set.
    dfstrace: DFSTraceLikeConfig | None = None
    synthetic: SyntheticConfig | None = None
    #: Policies compared in the figure (names resolved by the runner).
    policies: tuple[str, ...] = ()

    def workload_config(self) -> DFSTraceLikeConfig | SyntheticConfig:
        """The experiment's workload config (whichever kind is set)."""
        cfg = self.dfstrace if self.dfstrace is not None else self.synthetic
        if cfg is None:
            raise ValueError(f"experiment {self.experiment_id} has no workload")
        return cfg


def _paper_cluster(seed: int = 0) -> ClusterConfig:
    return ClusterConfig(
        servers=paper_servers(),
        tuning_interval=120.0,
        sample_window=60.0,
        move_cost=MoveCostModel(min_delay=5.0, max_delay=10.0,
                                cold_requests=32, cold_multiplier=2.0),
        seed=seed,
    )


# ----------------------------------------------------------------------
# Figure 6/7: DFSTrace workload, four policies.
# ----------------------------------------------------------------------
def figure6(quick: bool = False, seed: int = 0) -> ExperimentConfig:
    """Server latency for DFSTrace workloads (Figure 6; Figure 7 is the
    prescient/ANU closeup of the same runs)."""
    workload = DFSTraceLikeConfig(seed=seed + 7)
    if quick:
        # Shorter run at the SAME arrival rate (~31 req/s): reducing the
        # rate instead would lift the static policies out of overload and
        # change the figure's shape, not just its resolution.
        workload = replace(workload, n_requests=28_000, duration=900.0, epochs=6)
    return ExperimentConfig(
        experiment_id="fig6",
        description="Per-server latency, DFSTrace-like workload, 4 policies",
        cluster=_paper_cluster(seed),
        dfstrace=workload,
        policies=("simple-random", "round-robin", "prescient", "anu"),
    )


def figure7(quick: bool = False, seed: int = 0) -> ExperimentConfig:
    """Dynamic prescient vs ANU closeup (same workload as Figure 6)."""
    base = figure6(quick, seed)
    return replace(
        base,
        experiment_id="fig7",
        description="Prescient vs ANU closeup, DFSTrace-like workload",
        policies=("prescient", "anu"),
    )


# ----------------------------------------------------------------------
# Figure 8/9: synthetic workload, four policies.
# ----------------------------------------------------------------------
def figure8(quick: bool = False, seed: int = 0) -> ExperimentConfig:
    """Server latency for the synthetic workload (Figure 8; Figure 9 is the
    prescient/ANU closeup)."""
    workload = SyntheticConfig(seed=seed + 1)
    if quick:
        workload = replace(
            workload, n_filesets=120, n_requests=20_000, duration=2000.0
        )
    # Stationary workload: the oracle sees the true rates (whole-duration
    # horizon), so prescient "retains the same configuration" as in §7.
    cluster = replace(_paper_cluster(seed), oracle_horizon=workload.duration)
    return ExperimentConfig(
        experiment_id="fig8",
        description="Per-server latency, synthetic workload, 4 policies",
        cluster=cluster,
        synthetic=workload,
        policies=("simple-random", "round-robin", "prescient", "anu"),
    )


def figure9(quick: bool = False, seed: int = 0) -> ExperimentConfig:
    """Prescient vs ANU closeup (same workload as Figure 8)."""
    base = figure8(quick, seed)
    return replace(
        base,
        experiment_id="fig9",
        description="Prescient vs ANU closeup, synthetic workload",
        policies=("prescient", "anu"),
    )


# ----------------------------------------------------------------------
# Figure 10/11: over-tuning and its cures, synthetic workload.
# ----------------------------------------------------------------------
def figure10(quick: bool = False, seed: int = 0) -> ExperimentConfig:
    """Over-tuning before/after: aggressive ANU vs all three heuristics."""
    base = figure8(quick, seed)
    return replace(
        base,
        experiment_id="fig10",
        description="Over-tuning: no heuristics vs all three heuristics",
        policies=("anu-aggressive", "anu"),
    )


def figure11(quick: bool = False, seed: int = 0) -> ExperimentConfig:
    """Decomposition: each over-tuning heuristic alone."""
    base = figure8(quick, seed)
    return replace(
        base,
        experiment_id="fig11",
        description="Over-tuning heuristics decomposed (one at a time)",
        policies=("anu-threshold-only", "anu-top-off-only", "anu-divergent-only"),
    )


#: Registry of figure factories by experiment id.
FIGURES = {
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "fig11": figure11,
}
