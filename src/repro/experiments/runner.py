"""Experiment runner: resolve policy names, run simulations, collect results.

The runner is the glue between :mod:`repro.experiments.config` (what a
figure needs) and :class:`repro.cluster.ClusterSimulation` (how a run
executes).  Policy *names* are resolved to fresh policy instances per run —
policies are stateful, so sharing an instance across runs would leak tuning
state between experiments.
"""

from __future__ import annotations

from typing import Callable

from ..cluster.cluster import ClusterConfig, ClusterSimulation, RunResult
from ..membership.faults import FaultSchedule
from ..core.tuning import (
    AGGRESSIVE,
    ALL_HEURISTICS,
    DIVERGENT_ONLY,
    THRESHOLD_ONLY,
    TOP_OFF_ONLY,
)
from ..placement.anu_policy import ANUPolicy, DecentralizedANUPolicy
from ..placement.base import PlacementPolicy
from ..placement.consistent_hash import ConsistentHashPolicy
from ..placement.prescient import PrescientPolicy
from ..placement.round_robin import RoundRobinPolicy
from ..placement.simple_random import SimpleRandomPolicy
from ..placement.two_choice import TwoChoicePolicy
from ..runtime.telemetry import TelemetrySink
from ..workloads.dfstrace import DFSTraceLikeConfig, generate_dfstrace_like
from ..workloads.synthetic import SyntheticConfig, generate_synthetic
from ..workloads.trace import Trace
from .config import ExperimentConfig

_POLICY_FACTORIES: dict[str, Callable[[], PlacementPolicy]] = {
    "simple-random": SimpleRandomPolicy,
    "round-robin": RoundRobinPolicy,
    "prescient": PrescientPolicy,
    "consistent-hash": ConsistentHashPolicy,
    "anu": lambda: ANUPolicy(ALL_HEURISTICS),
    "anu-aggressive": lambda: ANUPolicy(AGGRESSIVE),
    "anu-threshold-only": lambda: ANUPolicy(THRESHOLD_ONLY),
    "anu-top-off-only": lambda: ANUPolicy(TOP_OFF_ONLY),
    "anu-divergent-only": lambda: ANUPolicy(DIVERGENT_ONLY),
    "anu-decentralized": DecentralizedANUPolicy,
    "two-choice": TwoChoicePolicy,
    "two-choice-weighted": TwoChoicePolicy,
    "consistent-hash-weighted": ConsistentHashPolicy,
}


def available_policies() -> list[str]:
    """Names accepted by :func:`make_policy`."""
    return sorted(_POLICY_FACTORIES)


def make_policy(name: str) -> PlacementPolicy:
    """A fresh policy instance for ``name``."""
    try:
        factory = _POLICY_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {available_policies()}"
        ) from None
    return factory()


def generate_trace(
    workload: DFSTraceLikeConfig | SyntheticConfig,
) -> Trace:
    """Generate the trace for a workload config."""
    if isinstance(workload, DFSTraceLikeConfig):
        return generate_dfstrace_like(workload)
    if isinstance(workload, SyntheticConfig):
        return generate_synthetic(workload)
    raise TypeError(f"unknown workload config {type(workload).__name__}")


def run_policy(
    policy_name: str,
    trace: Trace,
    cluster: ClusterConfig,
    faults: FaultSchedule | None = None,
    telemetry: "TelemetrySink | None" = None,
) -> RunResult:
    """Run one policy against one trace.

    The prescient policy is granted its oracle here: the true server speeds
    and the first tuning interval's per-file-set demand (so it "begins in a
    load-balanced state at time 0" as the paper specifies).
    """
    policy = make_policy(policy_name)
    if isinstance(policy, PrescientPolicy):
        horizon = cluster.oracle_horizon or cluster.tuning_interval
        policy.grant_oracle(
            cluster.speeds,
            trace.demand_by_fileset(0.0, horizon),
        )
    # The "-weighted" variants get static capacity knowledge (server
    # speeds) — they model an administrator configuring weights by hand,
    # which the paper's self-configuring claim argues against needing.
    if policy_name == "two-choice-weighted":
        assert isinstance(policy, TwoChoicePolicy)
        policy.grant_weights(cluster.speeds)
    elif policy_name == "consistent-hash-weighted":
        assert isinstance(policy, ConsistentHashPolicy)
        policy.weights = dict(cluster.speeds)
    sim = ClusterSimulation(cluster, policy, trace, faults, telemetry=telemetry)
    return sim.run()


def run_experiment(
    config: ExperimentConfig,
    faults: FaultSchedule | None = None,
) -> dict[str, RunResult]:
    """Run every policy of an experiment against its workload.

    All policies see the identical trace (same workload seed), matching the
    paper's methodology of comparing policies on one workload.
    """
    trace = generate_trace(config.workload_config())
    return {
        name: run_policy(name, trace, config.cluster, faults)
        for name in config.policies
    }
