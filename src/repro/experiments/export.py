"""CSV export of experiment results.

Downstream users replot the paper's figures with their own tooling; these
helpers write the windowed latency series and the cross-policy summary as
plain CSV.  The CLI's ``--csv DIR`` flag uses them.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping

from ..cluster.cluster import RunResult
from ..metrics.latency import LatencySeries


def write_series_csv(series: LatencySeries, path: str | Path) -> Path:
    """One row per sample window: time plus each server's mean latency
    (seconds) and request count."""
    path = Path(path)
    servers = series.servers
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        header = ["time_s"]
        for s in servers:
            header += [f"{s}_latency_s", f"{s}_requests"]
        writer.writerow(header)
        for i, t in enumerate(series.times):
            row: list[float] = [float(t)]
            for s in servers:
                row.append(float(series.mean_latency[s][i]))
                row.append(float(series.counts[s][i]))
            writer.writerow(row)
    return path


def write_summary_csv(
    results: Mapping[str, RunResult], path: str | Path
) -> Path:
    """One row per policy: the comparison-table numbers."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([
            "policy", "mean_latency_s", "worst_server_mean_s",
            "steady_worst_s", "moves", "tuning_rounds", "preservation",
            "total_requests",
        ])
        for name, res in results.items():
            worst = max(
                (res.series.mean_over_run(s) for s in res.series.servers),
                default=0.0,
            )
            steady = max(
                (res.series.tail_window_mean(s, 10) for s in res.series.servers),
                default=0.0,
            )
            writer.writerow([
                name, res.mean_latency, worst, steady, res.moves_started,
                res.tuning_rounds, res.ledger.preservation,
                res.total_requests,
            ])
    return path


def export_experiment(
    experiment_id: str,
    results: Mapping[str, RunResult],
    directory: str | Path,
) -> list[Path]:
    """Write ``<id>_<policy>.csv`` per policy plus ``<id>_summary.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name, res in results.items():
        safe = name.replace("/", "-")
        written.append(
            write_series_csv(res.series, directory / f"{experiment_id}_{safe}.csv")
        )
    written.append(
        write_summary_csv(results, directory / f"{experiment_id}_summary.csv")
    )
    return written
