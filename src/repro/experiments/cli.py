"""Command-line entry point: regenerate any figure from the paper.

Usage::

    repro-experiments list
    repro-experiments fig3 | fig4 | fig5
    repro-experiments fig6 [--quick] [--seed N] [--csv DIR]
    repro-experiments scale [--quick]
    python -m repro.experiments fig8 --quick
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .config import FIGURES
from .export import export_experiment
from .figures import figure3_demo, figure4_demo, figure5_demo, run_figure
from .report import interval_bar, render_experiment
from .scale import scale_study, scale_table

_DEMOS = ("fig3", "fig4", "fig5")


def _render_demo(experiment_id: str) -> str:
    if experiment_id == "fig3":
        demo = figure3_demo()
        title = "fig3: server heterogeneity (speeds 2,2,1,1; uniform file sets)"
    elif experiment_id == "fig4":
        demo = figure4_demo()
        title = "fig4: workload heterogeneity (uniform servers; skewed file sets)"
    else:
        rep = figure5_demo()
        lines = [
            "fig5: repartitioning when adding a server",
            f"  partitions: {rep.partitions_before} -> {rep.partitions_after}",
            f"  boundaries preserved: {rep.boundaries_preserved}",
            f"  free partitions after add: {rep.free_partitions_after}",
        ]
        return "\n".join(lines)
    lines = [
        title,
        f"  initial shares: "
        + ", ".join(f"{k}={v:.3f}" for k, v in demo.initial_shares.items()),
        f"  final shares:   "
        + ", ".join(f"{k}={v:.3f}" for k, v in demo.final_shares.items()),
        f"  initial counts: {demo.initial_counts}",
        f"  final counts:   {demo.final_counts}",
        f"  iterations: {demo.iterations}, "
        f"latency spread (max/mean): {demo.final_latency_spread:.2f}",
        "",
        interval_bar(demo.placement.interval),
    ]
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce figures from Wu & Burns, SC'03",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (fig3..fig11), 'scale', or 'list'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller-scale run (same shape)"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--csv", metavar="DIR", default=None,
        help="also write per-policy series + summary CSVs to DIR",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("interval demos:", ", ".join(_DEMOS))
        print("simulations:   ", ", ".join(sorted(FIGURES)))
        print("studies:        scale")
        return 0
    if args.experiment in _DEMOS:
        print(_render_demo(args.experiment))
        return 0
    if args.experiment == "scale":
        sizes = (5, 10, 20) if args.quick else (5, 10, 20, 40, 80)
        print("Scale study: balance, addressing, and movement vs cluster size")
        print(scale_table(scale_study(sizes=sizes, seed=args.seed)))
        return 0
    if args.experiment in FIGURES:
        config, results = run_figure(args.experiment, quick=args.quick, seed=args.seed)
        print(render_experiment(config.experiment_id, config.description, results))
        if args.csv:
            written = export_experiment(config.experiment_id, results, args.csv)
            print(f"\nwrote {len(written)} CSV file(s) to {args.csv}")
        return 0
    parser.error(
        f"unknown experiment {args.experiment!r}; try 'list'"
    )
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
