"""Multi-seed replication of the headline comparisons.

A single simulation run can get lucky (e.g. the hottest file set hashing
onto a fast server).  This module reruns an experiment across seeds and
summarizes each policy's metrics with means and confidence intervals, so
the claims in EXPERIMENTS.md rest on distributions, not single draws.
The replication bench asserts the paper's *ordering* — adaptive beats
static — holds in every replicate, which is the strong form of
reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from ..cluster.cluster import RunResult
from .config import ExperimentConfig
from .runner import generate_trace, run_policy


@dataclass(frozen=True)
class MetricSummary:
    """Mean, standard deviation, and 95% CI half-width of one metric."""

    mean: float
    std: float
    ci95: float
    values: tuple[float, ...]

    @classmethod
    def of(cls, values: Sequence[float]) -> "MetricSummary":
        vals = [float(v) for v in values]
        if not vals:
            raise ValueError("no values to summarize")
        n = len(vals)
        mean = sum(vals) / n
        var = sum((v - mean) ** 2 for v in vals) / (n - 1) if n > 1 else 0.0
        std = math.sqrt(var)
        # t-ish multiplier: 1.96 is fine at n >= 30; use 2.78 (t_4) floor
        # for the small replicate counts we actually run.
        mult = 2.78 if n <= 5 else (2.26 if n <= 10 else 1.96)
        ci95 = mult * std / math.sqrt(n) if n > 1 else float("inf")
        return cls(mean=mean, std=std, ci95=ci95, values=tuple(vals))


@dataclass
class ReplicationResult:
    """Per-policy metric summaries over all seeds."""

    seeds: tuple[int, ...]
    #: policy -> metric -> summary
    summaries: dict[str, dict[str, MetricSummary]] = field(default_factory=dict)
    #: policy -> per-seed raw results (optional; heavy)
    raw: dict[str, list[RunResult]] = field(default_factory=dict)

    def metric(self, policy: str, name: str) -> MetricSummary:
        """The summary of one metric for one policy."""
        return self.summaries[policy][name]

    def ordering_holds(
        self, better: str, worse: str, metric: str = "steady_worst"
    ) -> bool:
        """True when `better` beats `worse` on the metric in EVERY seed."""
        b = self.summaries[better][metric].values
        w = self.summaries[worse][metric].values
        return all(bv < wv for bv, wv in zip(b, w))


def _metrics_of(result: RunResult) -> dict[str, float]:
    # Shared scalar schema (repro.metrics.summary) plus the
    # replication-specific steady-state and movement metrics.
    metrics = result.summary()
    metrics["steady_worst"] = max(
        result.series.tail_window_mean(s, 10) for s in result.series.servers
    )
    metrics["preservation"] = result.ledger.preservation
    metrics["p95"] = result.tail_summary()["p95"]
    return metrics


def replicate(
    config_factory: Callable[[int], ExperimentConfig],
    seeds: Sequence[int],
    keep_raw: bool = False,
) -> ReplicationResult:
    """Run ``config_factory(seed)`` for every seed and summarize.

    The factory receives the seed so both the workload and the cluster
    can be re-randomized per replicate (matching how the figure configs
    thread seeds).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    per_policy: dict[str, list[dict[str, float]]] = {}
    raw: dict[str, list[RunResult]] = {}
    for seed in seeds:
        config = config_factory(seed)
        trace = generate_trace(config.workload_config())
        cluster = replace(config.cluster, seed=seed)
        for policy in config.policies:
            result = run_policy(policy, trace, cluster)
            per_policy.setdefault(policy, []).append(_metrics_of(result))
            if keep_raw:
                raw.setdefault(policy, []).append(result)
    summaries = {
        policy: {
            metric: MetricSummary.of([row[metric] for row in rows])
            for metric in rows[0]
        }
        for policy, rows in per_policy.items()
    }
    return ReplicationResult(
        seeds=tuple(seeds), summaries=summaries, raw=raw
    )


def replication_table(result: ReplicationResult, metric: str = "steady_worst",
                      unit_ms: bool = True) -> str:
    """ASCII table of one metric across policies."""
    scale = 1000.0 if unit_ms else 1.0
    unit = "ms" if unit_ms else ""
    lines = [
        f"{'policy':20s} {'mean':>10s} {'±95% CI':>10s} {'min':>10s} {'max':>10s}"
        f"   ({metric}, {unit}, {len(result.seeds)} seeds)"
    ]
    for policy in sorted(result.summaries):
        s = result.summaries[policy][metric]
        lines.append(
            f"{policy:20s} {s.mean * scale:10.2f} {s.ci95 * scale:10.2f} "
            f"{min(s.values) * scale:10.2f} {max(s.values) * scale:10.2f}"
        )
    return "\n".join(lines)
