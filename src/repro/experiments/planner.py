"""Capacity planning: what hardware does a workload need?

A downstream application of the reproduction: an operator has a measured
metadata workload (a :class:`repro.workloads.Trace`) and a catalogue of
candidate cluster configurations; which is the cheapest that meets a
latency objective — given that ANU randomization will be doing the
placement?

The planner simulates each candidate (optionally on a thinned copy of the
trace for speed), evaluates the objective on the *steady state* (skipping
ANU's convergence transient), and reports every candidate with the
cheapest passing one highlighted.  Because ANU is self-configuring, the
answer does not depend on hand-tuned placement per candidate — which is
precisely what makes this kind of planning tractable (§1's provisioning
story).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..cluster.cluster import ClusterConfig, ClusterSimulation
from ..cluster.server import ServerSpec
from ..placement.anu_policy import ANUPolicy
from ..workloads.trace import Trace


@dataclass(frozen=True)
class LatencyObjective:
    """The SLO: a latency bound on the steady-state tail.

    ``percentile`` is evaluated over per-request waits completed in the
    last ``steady_tail_fraction`` of the run (ANU's convergence transient
    is excluded — planning is about sustained operation, not warm-up).
    """

    percentile: float = 95.0
    bound: float = 0.050  # seconds
    steady_tail_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.percentile <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {self.percentile!r}")
        if self.bound <= 0:
            raise ValueError(f"bound must be positive, got {self.bound!r}")
        if not 0 < self.steady_tail_fraction <= 1:
            raise ValueError(
                f"steady_tail_fraction must be in (0, 1], got "
                f"{self.steady_tail_fraction!r}"
            )


@dataclass(frozen=True)
class Candidate:
    """One cluster configuration under consideration."""

    name: str
    speeds: Mapping[str, float]
    #: Relative cost; defaults to the aggregate speed (hardware ~ speed).
    cost: float | None = None

    @property
    def effective_cost(self) -> float:
        return self.cost if self.cost is not None else float(sum(self.speeds.values()))


@dataclass(frozen=True)
class CandidateResult:
    """Outcome of simulating one candidate."""

    candidate: Candidate
    measured: float
    passed: bool
    mean_latency: float
    moves: int


@dataclass
class PlanReport:
    """All candidate outcomes plus the recommendation."""

    objective: LatencyObjective
    results: list[CandidateResult] = field(default_factory=list)

    @property
    def recommended(self) -> CandidateResult | None:
        """Cheapest passing candidate, or None when nothing passes."""
        passing = [r for r in self.results if r.passed]
        if not passing:
            return None
        return min(passing, key=lambda r: (r.candidate.effective_cost,
                                           r.candidate.name))

    def table(self) -> str:
        """ASCII summary for operators and benches."""
        obj = self.objective
        header = (
            f"{'candidate':>16s} {'cost':>6s} "
            f"{'p' + format(obj.percentile, 'g') + '(ms)':>10s} "
            f"{'bound(ms)':>10s} {'verdict':>8s}"
        )
        lines = [header, "-" * len(header)]
        for r in sorted(self.results, key=lambda r: r.candidate.effective_cost):
            verdict = "PASS" if r.passed else "fail"
            lines.append(
                f"{r.candidate.name:>16s} {r.candidate.effective_cost:6.0f} "
                f"{r.measured * 1000:10.2f} {obj.bound * 1000:10.2f} "
                f"{verdict:>8s}"
            )
        rec = self.recommended
        lines.append(
            f"recommended: {rec.candidate.name}" if rec else
            "recommended: none (no candidate meets the objective)"
        )
        return "\n".join(lines)


def evaluate_candidate(
    candidate: Candidate,
    trace: Trace,
    objective: LatencyObjective,
    tuning_interval: float = 120.0,
    seed: int = 0,
) -> CandidateResult:
    """Simulate one candidate under ANU and evaluate the objective."""
    if not candidate.speeds:
        raise ValueError(f"candidate {candidate.name!r} has no servers")
    config = ClusterConfig(
        servers=tuple(
            ServerSpec(name=n, speed=float(s))
            for n, s in sorted(candidate.speeds.items())
        ),
        tuning_interval=tuning_interval,
        sample_window=60.0,
        seed=seed,
    )
    sim = ClusterSimulation(config, ANUPolicy(), trace)
    result = sim.run()
    steady_start = trace.duration * (1.0 - objective.steady_tail_fraction)
    measured = sim.collector.percentile(
        objective.percentile, start=steady_start, end=float("inf")
    )
    return CandidateResult(
        candidate=candidate,
        measured=measured,
        passed=measured <= objective.bound,
        mean_latency=result.mean_latency,
        moves=result.moves_started,
    )


def plan_capacity(
    candidates: Sequence[Candidate],
    trace: Trace,
    objective: LatencyObjective | None = None,
    thin_to: float = 1.0,
    tuning_interval: float = 120.0,
    seed: int = 0,
) -> PlanReport:
    """Evaluate every candidate; returns the full report.

    ``thin_to`` < 1 sub-samples the trace for cheaper what-if runs —
    note that thinning scales the offered load, so use it for *relative*
    comparisons, not absolute SLO checks.
    """
    obj = objective or LatencyObjective()
    work = trace if thin_to >= 1.0 else trace.thin(thin_to, seed=seed)
    report = PlanReport(objective=obj)
    for candidate in candidates:
        report.results.append(
            evaluate_candidate(candidate, work, obj, tuning_interval, seed)
        )
    return report
