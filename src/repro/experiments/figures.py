"""Per-figure reproduction entry points.

Figures 3–5 are algorithm-behaviour illustrations; we reproduce them as
deterministic demonstrations over the interval data structure (no queueing
simulation needed):

- :func:`figure3_demo` — server heterogeneity: two fast + two slow servers
  serving uniform file sets; region scaling converges to speed-proportional
  shares;
- :func:`figure4_demo` — workload heterogeneity: uniform servers serving
  skewed file sets; regions scale inversely to hosted workload;
- :func:`figure5_demo` — adding a server repartitions the interval without
  moving any existing boundary.

Figures 6–11 are simulation experiments; :func:`run_figure` resolves the
figure id to its config and runs every policy against the shared trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.cluster import RunResult
from ..membership.faults import FaultSchedule
from ..core.anu import ANUPlacement
from ..core.interval import MappedInterval
from ..core.tuning import DelegateTuner, ServerReport, TuningConfig
from .config import FIGURES, ExperimentConfig
from .runner import run_experiment


@dataclass
class IntervalDemoResult:
    """Outcome of an analytic tuning demonstration (Figures 3/4)."""

    placement: ANUPlacement
    initial_shares: dict[str, float]
    final_shares: dict[str, float]
    initial_counts: dict[str, int]
    final_counts: dict[str, int]
    iterations: int
    initial_latency_spread: float  # max/mean of the latency proxy at start
    final_latency_spread: float  # max/mean of the latency proxy at end


def _analytic_tune(
    placement: ANUPlacement,
    speeds: dict[str, float],
    weights: dict[str, float],
    iterations: int = 30,
    config: TuningConfig | None = None,
) -> tuple[int, float]:
    """Iterate delegate tuning against an analytic latency proxy.

    The proxy for server latency is (sum of hosted file-set weight) /
    speed — the steady-state utilization-driven latency, which is what the
    real simulator's reports converge to.  Returns (iterations used, final
    max/mean latency spread).
    """
    cfg = config or TuningConfig(
        use_thresholding=True, threshold=0.25, use_top_off=False,
        use_divergent=False, max_step=1.5,
    )
    tuner = DelegateTuner(cfg)
    names = sorted(weights)
    spread = float("inf")
    for i in range(iterations):
        assignment = placement.assignment(names)
        load = {s: 0.0 for s in placement.servers}
        count = {s: 0 for s in placement.servers}
        for fs, server in assignment.items():
            load[server] += weights[fs]
            count[server] += 1
        reports = [
            ServerReport(s, load[s] / speeds[s], count[s])
            for s in placement.servers
        ]
        latencies = [r.mean_latency for r in reports if r.request_count > 0]
        mean = sum(latencies) / len(latencies) if latencies else 0.0
        spread = max(latencies) / mean if mean > 0 else 1.0
        decision = tuner.compute(placement.shares(), reports)
        if not decision.tuned:
            return i, spread
        placement.set_shares(decision.new_shares)
        placement.check_invariants()
    return iterations, spread


def figure3_demo(n_filesets: int = 64) -> IntervalDemoResult:
    """Figure 3: heterogeneous servers, uniform file sets.

    Servers one and two are twice as fast as three and four; after
    reorganization the fast servers' mapped regions (and file-set counts)
    are roughly twice the slow servers'.
    """
    speeds = {"server1": 2.0, "server2": 2.0, "server3": 1.0, "server4": 1.0}
    placement = ANUPlacement(sorted(speeds))
    names = [f"fs{i:03d}" for i in range(n_filesets)]
    weights = {n: 1.0 for n in names}
    return _run_demo(placement, speeds, weights)


def figure4_demo(n_filesets: int = 64) -> IntervalDemoResult:
    """Figure 4: uniform servers, non-uniform file sets.

    A handful of file sets carry most of the workload; servers hosting them
    shrink their regions and the others grow, balancing latency while counts
    diverge.
    """
    speeds = {f"server{i}": 1.0 for i in range(1, 5)}
    placement = ANUPlacement(sorted(speeds))
    names = [f"fs{i:03d}" for i in range(n_filesets)]
    # Zipf-ish weights: a few heavy file sets, many light ones.
    weights = {n: 1.0 / (i + 1) for i, n in enumerate(names)}
    return _run_demo(placement, speeds, weights)


def _latency_spread(
    placement: ANUPlacement,
    speeds: dict[str, float],
    weights: dict[str, float],
) -> float:
    assignment = placement.assignment(sorted(weights))
    load = {s: 0.0 for s in placement.servers}
    for fs, server in assignment.items():
        load[server] += weights[fs]
    latencies = [load[s] / speeds[s] for s in placement.servers if load[s] > 0]
    mean = sum(latencies) / len(latencies) if latencies else 0.0
    return max(latencies) / mean if mean > 0 else 1.0


def _run_demo(
    placement: ANUPlacement,
    speeds: dict[str, float],
    weights: dict[str, float],
) -> IntervalDemoResult:
    names = sorted(weights)
    initial_shares = {
        s: placement.interval.share_fraction(s) for s in placement.servers
    }
    initial_assignment = placement.assignment(names)
    initial_counts = _counts(initial_assignment, placement.servers)
    initial_spread = _latency_spread(placement, speeds, weights)
    iterations, spread = _analytic_tune(placement, speeds, weights)
    final_assignment = placement.assignment(names)
    return IntervalDemoResult(
        placement=placement,
        initial_shares=initial_shares,
        final_shares={
            s: placement.interval.share_fraction(s) for s in placement.servers
        },
        initial_counts=initial_counts,
        final_counts=_counts(final_assignment, placement.servers),
        iterations=iterations,
        initial_latency_spread=initial_spread,
        final_latency_spread=spread,
    )


def _counts(assignment: dict[str, str], servers: list[str]) -> dict[str, int]:
    counts = {s: 0 for s in servers}
    for server in assignment.values():
        counts[server] += 1
    return counts


@dataclass
class RepartitionDemoResult:
    """Outcome of the Figure 5 demonstration."""

    before: dict[str, list[tuple[float, float]]]
    after: dict[str, list[tuple[float, float]]]
    partitions_before: int
    partitions_after: int
    boundaries_preserved: bool
    free_partitions_after: int


def figure5_demo() -> RepartitionDemoResult:
    """Figure 5: adding a fifth server repartitions the unit interval.

    Starts from four servers with a highly skewed share distribution (the
    first server holds most of the mapped half), adds a fifth, and verifies
    that (a) the partition count doubled and (b) no existing region
    boundary moved — the paper's "further partitioning the unit interval
    does not move any existing load".
    """
    interval = MappedInterval(
        ["server1", "server2", "server3", "server4"],
        shares={"server1": 0.85, "server2": 0.05, "server3": 0.05, "server4": 0.05},
    )
    interval.check_invariants()
    before = {
        s: [(seg.start, seg.end) for seg in interval.segments(s)]
        for s in interval.servers
    }
    p_before = interval.partitions
    interval.add_server("server5")
    interval.check_invariants()
    after = {
        s: [(seg.start, seg.end) for seg in interval.segments(s)]
        for s in interval.servers
    }
    # Existing boundaries preserved: every old segment start that survives as
    # owned space still starts a segment of the same server (the newcomer's
    # share is carved by proportional scaling, which trims ends, not starts).
    preserved = all(
        any(abs(n_start - o_start) < 2**-40 for n_start, _ in after[s])
        for s in before
        for o_start, _ in before[s][:1]
    )
    return RepartitionDemoResult(
        before=before,
        after=after,
        partitions_before=p_before,
        partitions_after=interval.partitions,
        boundaries_preserved=preserved,
        free_partitions_after=len(interval.free_partitions()),
    )


def run_figure(
    experiment_id: str,
    quick: bool = False,
    seed: int = 0,
    faults: FaultSchedule | None = None,
) -> tuple[ExperimentConfig, dict[str, RunResult]]:
    """Run one of the simulation figures (fig6..fig11)."""
    try:
        factory = FIGURES[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; known: {sorted(FIGURES)}"
        ) from None
    config = factory(quick=quick, seed=seed)
    results = run_experiment(config, faults)
    return config, results
