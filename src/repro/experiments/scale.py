"""Scale study: ANU randomization as the cluster grows.

The paper's conclusion claims ANU "allows clusters to scale to sizes that
were previously unmanageable".  This study quantifies the scaling story
without the queueing simulator (which would dominate runtime at large n):

- **balance**: capacity-normalized load CoV after analytic tuning, for
  clusters of 5..128 heterogeneous servers;
- **reconfiguration locality**: fraction of file sets moved when one
  server is added to / removed from a tuned cluster;
- **state**: the replicated region map is O(servers) — partitions and
  mapped segments counted explicitly;
- **addressing**: probes per locate (should stay ~2 regardless of n).

All quantities use the analytic latency proxy (load/speed) that the
interval demos use; the queueing figures already validate that the proxy
and the simulator agree in regime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.anu import ANUPlacement
from ..sim.rng import StreamFactory
from ..core.movement import diff_assignment
from ..core.tuning import DelegateTuner, ServerReport, TuningConfig
from ..metrics.balance import coefficient_of_variation


@dataclass(frozen=True)
class ScalePoint:
    """Measurements for one cluster size."""

    n_servers: int
    n_filesets: int
    partitions: int
    segments: int
    balance_cov: float
    mean_probes: float
    add_moved_fraction: float
    remove_moved_fraction: float
    tuning_rounds: int


def _speeds(n: int, rng: np.random.Generator) -> dict[str, float]:
    """Heterogeneous speeds: the paper's 1..9 odd ladder, cycled."""
    ladder = [1.0, 3.0, 5.0, 7.0, 9.0]
    return {f"s{i:03d}": ladder[i % len(ladder)] for i in range(n)}


def _weights(m: int, rng: np.random.Generator) -> dict[str, float]:
    """Skewed file-set weights (x^4 power law, as in the synthetic
    workload)."""
    x = rng.uniform(0.05, 1.0, size=m)
    w = x**4
    return {f"fs{i:05d}": float(w[i]) for i in range(m)}


def _tune(
    placement: ANUPlacement,
    speeds: dict[str, float],
    weights: dict[str, float],
    rounds: int,
) -> int:
    tuner = DelegateTuner(TuningConfig(
        use_thresholding=True, threshold=0.2, use_top_off=False,
        use_divergent=False, max_step=2.0,
    ))
    names = sorted(weights)
    for i in range(rounds):
        assignment = placement.assignment(names)
        load = {s: 0.0 for s in placement.servers}
        count = {s: 0 for s in placement.servers}
        for fs, server in assignment.items():
            load[server] += weights[fs]
            count[server] += 1
        reports = [
            ServerReport(s, load[s] / speeds[s], count[s])
            for s in placement.servers
        ]
        decision = tuner.compute(placement.shares(), reports)
        if not decision.tuned:
            return i
        placement.set_shares(decision.new_shares)
    return rounds


def measure_scale_point(
    n_servers: int,
    filesets_per_server: int = 50,
    tuning_rounds: int = 20,
    seed: int = 0,
) -> ScalePoint:
    """Tune a cluster of ``n_servers`` and measure the scaling metrics."""
    rng = StreamFactory(seed).stream("scale.measure")
    speeds = _speeds(n_servers, rng)
    weights = _weights(n_servers * filesets_per_server, rng)
    placement = ANUPlacement(sorted(speeds))
    rounds = _tune(placement, speeds, weights, tuning_rounds)

    names = sorted(weights)
    assignment = placement.assignment(names)
    load = {s: 0.0 for s in placement.servers}
    for fs, server in assignment.items():
        load[server] += weights[fs]
    cov = coefficient_of_variation(load, speeds)

    probes = [placement.locate_with_rounds(n)[1] for n in names[:2000]]
    segments = sum(
        len(placement.interval.segments(s)) for s in placement.servers
    )

    # Membership-change locality on the tuned cluster.
    placement.add_server("extra")
    after_add = placement.assignment(names)
    add_frac = diff_assignment(assignment, after_add).moved_fraction
    placement.remove_server("extra")
    after_remove = placement.assignment(names)
    remove_frac = diff_assignment(after_add, after_remove).moved_fraction

    return ScalePoint(
        n_servers=n_servers,
        n_filesets=len(weights),
        partitions=placement.interval.partitions,
        segments=segments,
        balance_cov=cov,
        mean_probes=float(np.mean(probes)),
        add_moved_fraction=add_frac,
        remove_moved_fraction=remove_frac,
        tuning_rounds=rounds,
    )


def scale_study(
    sizes: tuple[int, ...] = (5, 10, 20, 40, 80),
    filesets_per_server: int = 50,
    seed: int = 0,
) -> list[ScalePoint]:
    """The full sweep (one point per cluster size)."""
    return [
        measure_scale_point(n, filesets_per_server, seed=seed) for n in sizes
    ]


def scale_table(points: list[ScalePoint]) -> str:
    """ASCII table of the scale-study points."""
    header = (
        f"{'n':>5s} {'filesets':>9s} {'p':>6s} {'segments':>9s} "
        f"{'CoV':>7s} {'probes':>7s} {'add-moved':>10s} {'rm-moved':>9s}"
    )
    lines = [header, "-" * len(header)]
    for pt in points:
        lines.append(
            f"{pt.n_servers:5d} {pt.n_filesets:9d} {pt.partitions:6d} "
            f"{pt.segments:9d} {pt.balance_cov:7.3f} {pt.mean_probes:7.2f} "
            f"{pt.add_moved_fraction:10.3f} {pt.remove_moved_fraction:9.3f}"
        )
    return "\n".join(lines)
