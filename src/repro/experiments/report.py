"""ASCII rendering of experiment results.

The benchmarks "print the same rows/series the paper reports": for each
figure panel (one policy), a per-server block with a sparkline of the
windowed latency series plus summary statistics, and a cross-policy
comparison table.  Everything is plain text so results live in benchmark
logs and EXPERIMENTS.md verbatim.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..cluster.cluster import RunResult
from ..core.interval import MappedInterval
from ..metrics.latency import LatencySeries

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Compress ``values`` into a fixed-width unicode sparkline."""
    arr = np.asarray(list(values), dtype=float)
    if len(arr) == 0:
        return ""
    if len(arr) > width:
        # Average into ``width`` buckets.
        edges = np.linspace(0, len(arr), width + 1).astype(int)
        arr = np.array(
            [arr[a:b].mean() if b > a else 0.0 for a, b in zip(edges[:-1], edges[1:])]
        )
    peak = arr.max()
    if peak <= 0:
        return _SPARK[0] * len(arr)
    idx = np.minimum((arr / peak * (len(_SPARK) - 1)).astype(int), len(_SPARK) - 1)
    return "".join(_SPARK[i] for i in idx)


def series_block(title: str, series: LatencySeries, unit_ms: bool = True) -> str:
    """One figure panel: per-server sparkline + stats."""
    scale = 1000.0 if unit_ms else 1.0
    unit = "ms" if unit_ms else "s"
    lines = [title]
    for server in series.servers:
        lat = series.mean_latency[server] * scale
        lines.append(
            f"  {server:10s} |{sparkline(lat)}| "
            f"mean={series.mean_over_run(server) * scale:8.1f}{unit} "
            f"peak={series.peak(server) * scale:8.1f}{unit}"
        )
    return "\n".join(lines)


def comparison_table(results: Mapping[str, RunResult], unit_ms: bool = True) -> str:
    """Cross-policy summary: the numbers behind the figure comparison."""
    scale = 1000.0 if unit_ms else 1.0
    unit = "ms" if unit_ms else "s"
    header = (
        f"{'policy':20s} {'mean(' + unit + ')':>10s} {'worst-server(' + unit + ')':>18s} "
        f"{'p95(' + unit + ')':>10s} "
        f"{'moves':>6s} {'rounds':>7s} {'preserved':>10s}"
    )
    lines = [header, "-" * len(header)]
    for name, res in results.items():
        worst = max(
            (res.series.mean_over_run(s) for s in res.series.servers), default=0.0
        )
        # Single-pass pooled quantiles via the collector (repro.metrics).
        p95 = res.tail_summary()["p95"]
        lines.append(
            f"{name:20s} {res.mean_latency * scale:10.1f} {worst * scale:18.1f} "
            f"{p95 * scale:10.1f} "
            f"{res.moves_started:6d} {res.tuning_rounds:7d} "
            f"{res.ledger.preservation:10.3f}"
        )
    return "\n".join(lines)


def render_experiment(
    experiment_id: str,
    description: str,
    results: Mapping[str, RunResult],
) -> str:
    """Full text report for one figure: panels + comparison table."""
    parts = [f"== {experiment_id}: {description} =="]
    for name, res in results.items():
        parts.append(series_block(f"[{name}]", res.series))
    parts.append(comparison_table(results))
    return "\n\n".join(parts)


def interval_bar(interval: MappedInterval, width: int = 72) -> str:
    """Render the unit interval's ownership as a labelled ASCII bar.

    Used by the Figure 3–5 demonstrations: each column shows the owner of
    that slice of the interval ('.' = unmapped).
    """
    servers = interval.servers
    labels = {name: str(i % 10) for i, name in enumerate(servers)}
    cols = []
    for c in range(width):
        x = (c + 0.5) / width
        owner = interval.locate_point(x)
        cols.append(labels[owner] if owner is not None else ".")
    legend = "  ".join(
        f"{labels[s]}={s}({interval.share_fraction(s):.3f})" for s in servers
    )
    return f"|{''.join(cols)}|\n {legend}"
