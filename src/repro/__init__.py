"""repro: reproduction of "Handling Heterogeneity in Shared-Disk File
Systems" (Changxun Wu and Randal Burns, SC 2003).

The package implements ANU (adaptive, non-uniform) randomization — a
tunable, hash-based load-placement scheme for the metadata servers of a
shared-disk file system — together with every substrate the paper's
evaluation depends on: a discrete-event simulator, a heterogeneous cluster
model, workload generators, baseline policies, and an experiment harness
that regenerates each figure.

Quick start::

    from repro import ANUPlacement

    placement = ANUPlacement(["a", "b", "c"])
    owner = placement.locate("/projects/alpha")

Subpackages
-----------
``repro.core``
    ANU randomization: unit interval, hash family, delegate tuning,
    over-tuning heuristics, movement accounting.
``repro.placement``
    Policy protocol + baselines (simple random, round-robin, prescient
    LPT, consistent hashing, decentralized ANU).
``repro.sim``
    Discrete-event engine (YACSIM substitute).
``repro.cluster``
    Shared-disk cluster simulation: heterogeneous servers, file-set moves,
    faults.
``repro.workloads``
    Trace container, the paper's synthetic workload, DFSTrace-like
    synthesizer.
``repro.metrics``
    Latency series, balance metrics.
``repro.theory``
    Balls-into-bins bounds behind the paper's §4 load-balance claims.
``repro.experiments``
    Per-figure configurations, runner, CLI, reporting.
``repro.fs``
    Storage Tank-style metadata substrate: namespace trees, locks,
    shared-disk images, clients, semantic workloads.
``repro.proto``
    The §4 control plane as a message protocol: election, heartbeats,
    versioned configuration distribution.
``repro.runtime``
    Shared simulation-harness core: the delegate tuning loop, arrival
    scheduling, the unified :class:`~repro.runtime.result.SimResult`, the
    structured telemetry event stream, and the harness-agnostic
    :class:`~repro.runtime.scenario.Scenario` assembly.
``repro.bench``
    Persistent benchmark-regression harness (the ``repro-bench`` CLI):
    median-of-k timing, schema-versioned reports, baseline gating.
"""

from .core import (
    ANUPlacement,
    DelegateTuner,
    HashFamily,
    MappedInterval,
    ServerReport,
    TuningConfig,
)
from .cluster import (
    ClusterConfig,
    ClusterSimulation,
    FaultSchedule,
    MoveCostModel,
    RunResult,
    ServerSpec,
    paper_servers,
)
from .runtime import (
    JsonlSink,
    MemorySink,
    SimResult,
    TelemetryRecord,
    TelemetrySink,
)
from .workloads import (
    DFSTraceLikeConfig,
    SyntheticConfig,
    Trace,
    generate_dfstrace_like,
    generate_synthetic,
)

__version__ = "1.0.0"

__all__ = [
    "ANUPlacement",
    "MappedInterval",
    "HashFamily",
    "DelegateTuner",
    "TuningConfig",
    "ServerReport",
    "ClusterConfig",
    "ClusterSimulation",
    "RunResult",
    "ServerSpec",
    "paper_servers",
    "FaultSchedule",
    "MoveCostModel",
    "SimResult",
    "TelemetryRecord",
    "TelemetrySink",
    "MemorySink",
    "JsonlSink",
    "Trace",
    "SyntheticConfig",
    "generate_synthetic",
    "DFSTraceLikeConfig",
    "generate_dfstrace_like",
    "__version__",
]
