"""Discovery and execution of the ``benchmarks/bench_*.py`` suites.

The benchmark suites are plain pytest-style modules: functions named
``test_*`` taking a ``benchmark`` fixture (and, for the figure suites, a
``quick`` flag), optionally stacked with ``@pytest.mark.parametrize``.
This module loads those files *without* pytest: it imports each suite by
path, expands parametrize marks into concrete cases, and injects a
:class:`repro.bench.timing.BenchTimer` for the ``benchmark`` parameter —
so the exact same suite files serve both ``pytest benchmarks/`` (rich
interactive output) and ``repro-bench`` (schema-versioned regression
JSON).

Naming convention: suite ``micro_core`` lives in
``benchmarks/bench_micro_core.py`` and emits ``BENCH_micro_core.json``.
"""

from __future__ import annotations

import importlib.util
import inspect
import sys
from dataclasses import dataclass
from pathlib import Path
from types import ModuleType
from typing import Any, Callable, Iterator

from .timing import BenchTimer, TimerConfig

#: Suites run (and gated) by default: the hot-path microbenchmarks.
DEFAULT_SUITES = (
    "micro_core",
    "micro_sim",
    "fs_substrate",
    "runtime",
    "membership",
    "routing",
    "dsan",
    "sweep",
)

#: Fixture names the runner can inject, beyond parametrized arguments.
_INJECTABLE = ("benchmark", "quick")


class DiscoveryError(RuntimeError):
    """Raised when a suite file cannot be found, loaded, or executed."""


@dataclass(frozen=True)
class BenchCase:
    """One concrete benchmark invocation (a function + pinned parameters)."""

    #: Display/report id, e.g. ``test_locate_throughput[n_servers=20]``.
    name: str
    #: The suite function to invoke.
    func: Callable[..., Any]
    #: Parametrized arguments, already bound to concrete values.
    params: dict[str, Any]


@dataclass(frozen=True)
class CaseResult:
    """Timing outcome of one :class:`BenchCase`."""

    name: str
    stats: dict[str, Any]
    extra_info: dict[str, Any]
    params: dict[str, Any]


def find_benchmarks_dir(start: Path | None = None) -> Path:
    """Locate the repository's ``benchmarks/`` directory.

    Walks up from ``start`` (default: the current working directory)
    looking for a ``benchmarks`` directory next to a ``pyproject.toml`` —
    the repo-root signature — so ``repro-bench`` works from any subdir.
    """
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        bench = candidate / "benchmarks"
        if bench.is_dir() and (candidate / "pyproject.toml").is_file():
            return bench
    raise DiscoveryError(
        f"no benchmarks/ directory found walking up from {here}"
    )


def discover_suites(bench_dir: Path) -> dict[str, Path]:
    """Map suite name -> file for every ``bench_*.py`` under ``bench_dir``."""
    suites = {
        path.stem.removeprefix("bench_"): path
        for path in sorted(bench_dir.glob("bench_*.py"))
    }
    if not suites:
        raise DiscoveryError(f"no bench_*.py files under {bench_dir}")
    return suites


def load_suite_module(path: Path) -> ModuleType:
    """Import a suite file by path (its directory joins ``sys.path``).

    The directory insertion lets suites do ``from conftest import
    run_once`` exactly as they do under pytest; ``benchmarks/conftest.py``
    also pins ``REPRO_CONTRACTS`` off for any not-yet-imported modules.
    """
    directory = str(path.parent.resolve())
    if directory not in sys.path:
        sys.path.insert(0, directory)
    module_name = f"_repro_bench_suite_{path.stem}"
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:
        raise DiscoveryError(f"cannot build an import spec for {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        raise DiscoveryError(f"error importing suite {path.name}: {exc}") from exc
    return module


def _parametrize_marks(func: Callable[..., Any]) -> list[tuple[list[str], list[Any]]]:
    """Extract ``@pytest.mark.parametrize`` data without importing pytest.

    Returns ``[(argnames, argvalues), ...]`` in application order (the
    mark written closest to the function first, matching pytest).
    """
    out: list[tuple[list[str], list[Any]]] = []
    for mark in getattr(func, "pytestmark", []):
        if getattr(mark, "name", None) != "parametrize":
            continue
        argnames, argvalues = mark.args[0], list(mark.args[1])
        names = (
            [n.strip() for n in argnames.split(",")]
            if isinstance(argnames, str)
            else list(argnames)
        )
        out.append((names, argvalues))
    return out


def _expand_params(func: Callable[..., Any]) -> Iterator[dict[str, Any]]:
    """Yield one bound-parameter dict per parametrize combination."""
    combos: list[dict[str, Any]] = [{}]
    for names, values in _parametrize_marks(func):
        expanded: list[dict[str, Any]] = []
        for value in values:
            bound = dict(zip(names, value if len(names) > 1 else (value,)))
            expanded.extend({**combo, **bound} for combo in combos)
        combos = expanded
    yield from combos


def _case_name(func_name: str, params: dict[str, Any]) -> str:
    if not params:
        return func_name
    inner = "-".join(f"{k}={v}" for k, v in sorted(params.items()))
    return f"{func_name}[{inner}]"


def collect_cases(module: ModuleType) -> list[BenchCase]:
    """All runnable benchmark cases of a loaded suite, in source order."""
    cases: list[BenchCase] = []
    for name, obj in vars(module).items():
        if not name.startswith("test_") or not inspect.isfunction(obj):
            continue
        for params in _expand_params(obj):
            cases.append(BenchCase(_case_name(name, params), obj, params))
    return cases


def run_case(
    case: BenchCase, config: TimerConfig, quick: bool
) -> CaseResult:
    """Execute one case with an injected timer; returns its statistics."""
    timer = BenchTimer(config)
    kwargs: dict[str, Any] = dict(case.params)
    signature = inspect.signature(case.func)
    for param in signature.parameters.values():
        if param.name in kwargs:
            continue
        if param.name == "benchmark":
            kwargs[param.name] = timer
        elif param.name == "quick":
            kwargs[param.name] = quick
        elif param.default is inspect.Parameter.empty:
            raise DiscoveryError(
                f"{case.name}: cannot inject fixture {param.name!r} "
                f"(supported: {', '.join(_INJECTABLE)})"
            )
    case.func(**kwargs)
    if timer.stats is None:
        raise DiscoveryError(
            f"{case.name}: benchmark fixture never invoked; nothing measured"
        )
    return CaseResult(
        name=case.name,
        stats=timer.stats.as_dict(),
        extra_info=dict(timer.extra_info),
        params=dict(case.params),
    )


def run_suite(
    path: Path, config: TimerConfig, quick: bool = False
) -> list[CaseResult]:
    """Load one suite file and run every case it defines."""
    module = load_suite_module(path)
    return [run_case(case, config, quick) for case in collect_cases(module)]
