"""Schema-versioned benchmark reports and the regression gate.

``repro-bench`` emits one ``BENCH_<suite>.json`` per suite at the repo
root.  The document schema (``SCHEMA_VERSION`` = 1) is::

    {
      "schema_version": 1,
      "suite": "micro_core",
      "git_rev": "9e49477",          # short HEAD, "unknown" outside git
      "seed": 0,                      # pinned workload seed, recorded
      "quick": false,                 # reduced-scale (CI) mode
      "contracts": "off",             # runtime-contract state during the run
      "python": "3.12.3",
      "timer": {"warmup_rounds": 1, "rounds": 5, "min_round_ns": ...},
      "results": [
        {"name": "test_locate_throughput[n_servers=20]",
         "median_ns": ..., "mean_ns": ..., "stddev_ns": ...,
         "min_ns": ..., "max_ns": ..., "rounds": 5, "iterations": 128,
         "params": {"n_servers": 20}, "extra_info": {}}
      ]
    }

The *median* is the comparison statistic; stddev/min/max record
dispersion.  :func:`compare` matches current results to a committed
baseline by case name and flags every case whose median slowed down by
more than the gate threshold (default 25%).  Baselines live in
``benchmarks/baselines/`` and are refreshed with
``repro-bench --update-baseline`` (see CONTRIBUTING.md).
"""

from __future__ import annotations

import json
import platform
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from .discovery import CaseResult
from .timing import TimerConfig

#: Version of the BENCH_*.json document layout.
SCHEMA_VERSION = 1

#: Default regression gate: fail when median_ns grows by more than 25%.
DEFAULT_GATE = 0.25


class ReportError(ValueError):
    """Raised for malformed or incompatible benchmark documents."""


def git_rev(repo_root: Path) -> str:
    """Short HEAD revision of ``repo_root`` ("unknown" outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def build_document(
    suite: str,
    results: list[CaseResult],
    *,
    config: TimerConfig,
    seed: int,
    quick: bool,
    contracts: str,
    rev: str,
) -> dict[str, Any]:
    """Assemble the schema-versioned JSON document for one suite run."""
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "git_rev": rev,
        "seed": seed,
        "quick": quick,
        "contracts": contracts,
        "python": platform.python_version(),
        "timer": {
            "warmup_rounds": config.warmup_rounds,
            "rounds": config.rounds,
            "min_round_ns": config.min_round_ns,
        },
        "results": [
            {"name": r.name, **r.stats, "params": r.params, "extra_info": r.extra_info}
            for r in results
        ],
    }


def write_document(document: dict[str, Any], path: Path) -> None:
    """Write a report document as stable, diff-friendly JSON."""
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_document(path: Path) -> dict[str, Any]:
    """Load and schema-check one BENCH_*.json document."""
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ReportError(f"{path}: not valid JSON: {exc}") from exc
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ReportError(
            f"{path}: schema_version {version!r} != supported {SCHEMA_VERSION}"
        )
    if not isinstance(document.get("results"), list):
        raise ReportError(f"{path}: missing results list")
    return document


@dataclass(frozen=True)
class Comparison:
    """One case's current-vs-baseline outcome."""

    name: str
    baseline_ns: float
    current_ns: float

    @property
    def ratio(self) -> float:
        """current / baseline median (>1 means slower)."""
        return self.current_ns / self.baseline_ns if self.baseline_ns > 0 else 1.0

    def breaches(self, gate: float) -> bool:
        """Whether this case slowed past the gate threshold."""
        return self.ratio > 1.0 + gate


@dataclass(frozen=True)
class GateResult:
    """Suite-level verdict of the regression gate."""

    suite: str
    compared: list[Comparison]
    regressions: list[Comparison]
    only_current: list[str]
    only_baseline: list[str]

    @property
    def passed(self) -> bool:
        """True when no compared case breached the gate."""
        return not self.regressions


def compare(
    current: dict[str, Any],
    baseline: dict[str, Any],
    gate: float = DEFAULT_GATE,
) -> GateResult:
    """Match cases by name and apply the slowdown gate to medians.

    Cases present on only one side are reported (new benchmarks appear,
    retired ones disappear) but never fail the gate by themselves.
    """
    if gate < 0:
        raise ReportError(f"gate threshold must be >= 0, got {gate}")
    cur = {r["name"]: r for r in current["results"]}
    base = {r["name"]: r for r in baseline["results"]}
    compared = [
        Comparison(name, float(base[name]["median_ns"]), float(cur[name]["median_ns"]))
        for name in sorted(set(cur) & set(base))
    ]
    return GateResult(
        suite=str(current.get("suite", "?")),
        compared=compared,
        regressions=[c for c in compared if c.breaches(gate)],
        only_current=sorted(set(cur) - set(base)),
        only_baseline=sorted(set(base) - set(cur)),
    )


def format_gate_result(result: GateResult, gate: float) -> str:
    """Human-readable one-suite gate summary for the CLI."""
    lines = [f"suite {result.suite}: {len(result.compared)} case(s) compared"]
    for c in result.compared:
        verdict = "REGRESSION" if c.breaches(gate) else "ok"
        lines.append(
            f"  {verdict:>10}  {c.name}: {c.baseline_ns:,.0f} -> "
            f"{c.current_ns:,.0f} ns ({c.ratio:.2f}x)"
        )
    for name in result.only_current:
        lines.append(f"  {'new':>10}  {name}: no baseline entry")
    for name in result.only_baseline:
        lines.append(f"  {'missing':>10}  {name}: in baseline only")
    status = "PASS" if result.passed else "FAIL"
    lines.append(
        f"  gate {status} at +{gate * 100:.0f}% "
        f"({len(result.regressions)} regression(s))"
    )
    return "\n".join(lines)
