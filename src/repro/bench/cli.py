"""``repro-bench`` — the persistent benchmark-regression harness.

Runs the hot-path benchmark suites with pinned seeds, warmup, and
median-of-k timing, writes one schema-versioned ``BENCH_<suite>.json``
per suite at the repo root, and compares medians against the committed
baselines under ``benchmarks/baselines/`` with a configurable slowdown
gate (default: fail at >25%).

Usage examples::

    repro-bench                       # run micro_core, micro_sim, fs_substrate
    repro-bench --quick               # CI-sized rounds (and REPRO_BENCH_QUICK=1)
    repro-bench --suites micro_sim    # one suite
    repro-bench --gate 40             # relax the gate to +40%
    repro-bench --update-baseline     # refresh benchmarks/baselines/*.json
    repro-bench --list                # show discoverable suites

Exit status: 0 on success, 1 on a gate breach, 2 on usage or discovery
errors.

Measurements run with the runtime contract layer compiled out
(``REPRO_CONTRACTS=off``), matching ``benchmarks/conftest.py``: the
harness re-executes itself with the environment pinned when the current
process imported ``repro.contracts`` in a different mode, because the
zero-overhead path is frozen at import time.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from .. import contracts
from .discovery import (
    DEFAULT_SUITES,
    DiscoveryError,
    discover_suites,
    find_benchmarks_dir,
    run_suite,
)
from .report import (
    DEFAULT_GATE,
    ReportError,
    build_document,
    compare,
    format_gate_result,
    git_rev,
    load_document,
    write_document,
)
from .timing import TimerConfig

#: Loop guard for the contract-mode re-exec.
_REEXEC_VAR = "REPRO_BENCH_REEXEC"


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="hot-path benchmark runner with a baseline regression gate",
    )
    parser.add_argument(
        "--suites",
        default=",".join(DEFAULT_SUITES),
        help="comma-separated suite names, or 'all' (default: %(default)s)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced-scale CI mode: fewer/shorter rounds, REPRO_BENCH_QUICK=1",
    )
    parser.add_argument(
        "--rounds", type=int, default=None, help="timed rounds per case (median-of-k)"
    )
    parser.add_argument(
        "--warmup", type=int, default=None, help="untimed warmup rounds per case"
    )
    parser.add_argument(
        "--min-round-ms",
        type=float,
        default=None,
        help="minimum duration of one timed round, in milliseconds",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed recorded in the report"
    )
    parser.add_argument(
        "--gate",
        type=float,
        default=DEFAULT_GATE * 100,
        help="max tolerated median slowdown, percent (default: %(default)s)",
    )
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="measure and write reports but skip the baseline comparison",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write this run's reports to the baseline directory and exit 0",
    )
    parser.add_argument(
        "--benchmarks-dir",
        type=Path,
        default=None,
        help="suite directory (default: auto-detected benchmarks/)",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="where BENCH_<suite>.json land (default: the repo root)",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=None,
        help="committed baselines (default: benchmarks/baselines/)",
    )
    parser.add_argument(
        "--contracts",
        choices=("on", "off"),
        default="off",
        help="runtime-contract mode for the measured code (default: off)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list discoverable suites and exit"
    )
    return parser


def _ensure_contract_mode(desired: str, argv: list[str]) -> None:
    """Re-exec with ``REPRO_CONTRACTS`` pinned when the mode is frozen wrong.

    The contract layer is compiled in or out when ``repro.contracts`` is
    first imported, which for a console script happens before ``main``
    runs; flipping modes therefore requires restarting the interpreter.
    """
    actual = "off" if contracts.COMPILED_OUT else "on"
    if actual == desired:
        return
    if os.environ.get(_REEXEC_VAR) == "1":
        raise DiscoveryError(
            f"cannot pin REPRO_CONTRACTS={desired}: already re-executed once"
        )
    env = dict(os.environ)
    env["REPRO_CONTRACTS"] = desired
    env[_REEXEC_VAR] = "1"
    os.execve(
        sys.executable, [sys.executable, "-m", "repro.bench", *argv], env
    )


def _timer_config(args: argparse.Namespace) -> TimerConfig:
    """Resolve timing knobs: explicit flags beat the quick/full defaults."""
    if args.quick:
        rounds, warmup, min_round_ns = 3, 1, 5_000_000
    else:
        rounds, warmup, min_round_ns = 5, 1, 20_000_000
    if args.rounds is not None:
        rounds = args.rounds
    if args.warmup is not None:
        warmup = args.warmup
    if args.min_round_ms is not None:
        min_round_ns = int(args.min_round_ms * 1_000_000)
    return TimerConfig(
        warmup_rounds=warmup, rounds=rounds, min_round_ns=min_round_ns
    )


def _select_suites(
    requested: str, available: dict[str, Path]
) -> dict[str, Path]:
    if requested.strip().lower() == "all":
        return dict(available)
    names = [s.strip() for s in requested.split(",") if s.strip()]
    missing = [s for s in names if s not in available]
    if missing:
        raise DiscoveryError(
            f"unknown suite(s) {missing}; available: {sorted(available)}"
        )
    return {name: available[name] for name in names}


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-bench`` / ``python -m repro.bench``."""
    raw_argv = list(sys.argv[1:] if argv is None else argv)
    args = _parser().parse_args(raw_argv)
    try:
        bench_dir = args.benchmarks_dir or find_benchmarks_dir()
        bench_dir = bench_dir.resolve()
        available = discover_suites(bench_dir)
        if args.list:
            for name, path in sorted(available.items()):
                marker = "*" if name in DEFAULT_SUITES else " "
                print(f" {marker} {name:32s} {path.name}")
            print(" (* = run by default)")
            return 0
        _ensure_contract_mode(args.contracts, raw_argv)
        selected = _select_suites(args.suites, available)
    except (DiscoveryError, ReportError) as exc:
        print(f"repro-bench: {exc}", file=sys.stderr)
        return 2

    repo_root = bench_dir.parent
    output_dir = (args.output_dir or repo_root).resolve()
    baseline_dir = (args.baseline_dir or bench_dir / "baselines").resolve()
    config = _timer_config(args)
    gate = args.gate / 100.0
    if args.quick:
        os.environ["REPRO_BENCH_QUICK"] = "1"

    failures = 0
    for name, path in selected.items():
        print(f"== suite {name} ({path.name}) ==")
        try:
            results = run_suite(path, config, quick=args.quick)
        except DiscoveryError as exc:
            print(f"repro-bench: {exc}", file=sys.stderr)
            return 2
        document = build_document(
            name,
            results,
            config=config,
            seed=args.seed,
            quick=args.quick,
            contracts=args.contracts,
            rev=git_rev(repo_root),
        )
        for result in results:
            print(
                f"   {result.name}: median {result.stats['median_ns']:,.0f} ns "
                f"(k={result.stats['rounds']}, iters={result.stats['iterations']})"
            )
        out_path = output_dir / f"BENCH_{name}.json"
        write_document(document, out_path)
        print(f"   wrote {out_path}")
        baseline_path = baseline_dir / f"BENCH_{name}.json"
        if args.update_baseline:
            baseline_dir.mkdir(parents=True, exist_ok=True)
            write_document(document, baseline_path)
            print(f"   baseline refreshed: {baseline_path}")
            continue
        if args.no_gate:
            continue
        if not baseline_path.is_file():
            print(f"   no baseline at {baseline_path}; gate skipped")
            continue
        try:
            verdict = compare(document, load_document(baseline_path), gate)
        except ReportError as exc:
            print(f"repro-bench: {exc}", file=sys.stderr)
            return 2
        print(format_gate_result(verdict, gate))
        if not verdict.passed:
            failures += 1
    return 1 if failures else 0
