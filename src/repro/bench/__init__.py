"""Persistent benchmark-regression harness (``repro-bench``).

Discovers the pytest-style suites under ``benchmarks/``, runs them with
pinned seeds, warmup, and median-of-k timing, emits schema-versioned
``BENCH_<suite>.json`` documents at the repo root, and gates against the
committed baselines in ``benchmarks/baselines/`` — see
:mod:`repro.bench.cli` for the command-line surface and
:mod:`repro.bench.report` for the document schema.
"""

from .discovery import (
    BenchCase,
    CaseResult,
    DEFAULT_SUITES,
    DiscoveryError,
    collect_cases,
    discover_suites,
    find_benchmarks_dir,
    run_suite,
)
from .report import (
    DEFAULT_GATE,
    SCHEMA_VERSION,
    Comparison,
    GateResult,
    ReportError,
    build_document,
    compare,
    load_document,
    write_document,
)
from .timing import BenchTimer, TimerConfig, TimingStats

__all__ = [
    "BenchCase",
    "BenchTimer",
    "CaseResult",
    "Comparison",
    "DEFAULT_GATE",
    "DEFAULT_SUITES",
    "DiscoveryError",
    "GateResult",
    "ReportError",
    "SCHEMA_VERSION",
    "TimerConfig",
    "TimingStats",
    "build_document",
    "collect_cases",
    "compare",
    "discover_suites",
    "find_benchmarks_dir",
    "load_document",
    "run_suite",
    "write_document",
]
