"""Warmup + calibration + median-of-k timing for benchmark callables.

:class:`BenchTimer` is the object injected into a benchmark function's
``benchmark`` parameter.  It is call-compatible with the pytest-benchmark
fixture the suites under ``benchmarks/`` were written against — it supports
``benchmark(fn, *args)``, ``benchmark.pedantic(...)``, and
``benchmark.extra_info`` — but implements a much simpler, fully
deterministic protocol:

1. **calibration** — the target is invoked once and timed; if a single call
   is shorter than ``min_round_ns`` the per-round iteration count is scaled
   up so each timed round runs long enough to be resolvable;
2. **warmup** — ``warmup_rounds`` whole rounds run untimed, populating
   caches (bytecode, allocator arenas, memoized state) exactly like the
   measured rounds will;
3. **median-of-k** — ``rounds`` rounds are timed with
   ``time.perf_counter_ns`` and the *median* per-operation time is the
   headline statistic (robust to scheduler noise); min/mean/stddev/max are
   recorded as dispersion.

Timing uses the monotonic performance counter, never the wall clock, so
the repository's determinism rules (RPL001) are untouched: the measured
*workloads* remain pure functions of their seeds; only the measurement
durations vary run to run.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping


@dataclass(frozen=True)
class TimerConfig:
    """Knobs for one timing session (one benchmark case)."""

    #: Untimed rounds executed before measurement starts.
    warmup_rounds: int = 1
    #: Timed rounds; the headline statistic is their median.
    rounds: int = 5
    #: Minimum duration of one timed round, in nanoseconds.  Fast targets
    #: are looped ``iterations`` times per round to reach this floor.
    min_round_ns: int = 20_000_000
    #: Upper bound on the calibrated per-round iteration count.
    max_iterations: int = 1_000_000

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical knob values."""
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.warmup_rounds < 0:
            raise ValueError(f"warmup_rounds must be >= 0, got {self.warmup_rounds}")
        if self.min_round_ns < 0:
            raise ValueError(f"min_round_ns must be >= 0, got {self.min_round_ns}")
        if self.max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {self.max_iterations}")


@dataclass(frozen=True)
class TimingStats:
    """Per-operation timing statistics for one benchmark case (nanoseconds)."""

    median_ns: float
    mean_ns: float
    stddev_ns: float
    min_ns: float
    max_ns: float
    rounds: int
    iterations: int

    @classmethod
    def from_round_times(cls, round_ns: list[int], iterations: int) -> "TimingStats":
        """Reduce raw per-round durations to per-operation statistics."""
        if not round_ns:
            raise ValueError("no timed rounds recorded")
        per_op = [t / iterations for t in round_ns]
        return cls(
            median_ns=statistics.median(per_op),
            mean_ns=statistics.fmean(per_op),
            stddev_ns=statistics.pstdev(per_op) if len(per_op) > 1 else 0.0,
            min_ns=min(per_op),
            max_ns=max(per_op),
            rounds=len(per_op),
            iterations=iterations,
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (keys match the BENCH_*.json schema)."""
        return {
            "median_ns": self.median_ns,
            "mean_ns": self.mean_ns,
            "stddev_ns": self.stddev_ns,
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
            "rounds": self.rounds,
            "iterations": self.iterations,
        }


class BenchTimer:
    """The ``benchmark`` fixture stand-in injected into suite functions.

    One instance times exactly one benchmark case; :attr:`stats` is None
    until the target has been measured.  ``extra_info`` mirrors
    pytest-benchmark's free-form metadata dict and is copied verbatim into
    the emitted JSON.
    """

    def __init__(self, config: TimerConfig | None = None) -> None:
        self.config = config or TimerConfig()
        self.config.validate()
        self.extra_info: dict[str, Any] = {}
        self.stats: TimingStats | None = None

    # -- pytest-benchmark compatible surface ---------------------------
    def __call__(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Calibrate, warm up, and time ``fn(*args, **kwargs)``.

        Returns the result of the last (timed) invocation, like the
        pytest-benchmark fixture does.
        """
        result, single_ns = self._timed_call(fn, args, kwargs)
        iterations = self._calibrate(single_ns)
        for _ in range(self.config.warmup_rounds):
            result = self._run_round(fn, args, kwargs, iterations)[0]
        round_ns: list[int] = []
        for _ in range(self.config.rounds):
            result, elapsed = self._run_round(fn, args, kwargs, iterations)
            round_ns.append(elapsed)
        self.stats = TimingStats.from_round_times(round_ns, iterations)
        return result

    def pedantic(
        self,
        fn: Callable[..., Any],
        args: tuple[Any, ...] = (),
        kwargs: Mapping[str, Any] | None = None,
        rounds: int = 1,
        iterations: int = 1,
        warmup_rounds: int = 0,
    ) -> Any:
        """Time ``fn`` with explicitly pinned rounds/iterations.

        Mirrors ``benchmark.pedantic`` — used by the figure suites (via
        ``benchmarks/conftest.run_once``) to run expensive experiments
        exactly once, with no calibration loop.
        """
        kw = dict(kwargs or {})
        result: Any = None
        for _ in range(warmup_rounds):
            result = self._run_round(fn, args, kw, iterations)[0]
        round_ns: list[int] = []
        for _ in range(max(rounds, 1)):
            result, elapsed = self._run_round(fn, args, kw, iterations)
            round_ns.append(elapsed)
        self.stats = TimingStats.from_round_times(round_ns, max(iterations, 1))
        return result

    # -- internals ------------------------------------------------------
    def _calibrate(self, single_ns: int) -> int:
        """Iterations per round so a round lasts at least ``min_round_ns``."""
        floor = self.config.min_round_ns
        if single_ns >= floor:
            return 1
        need = math.ceil(floor / max(single_ns, 1))
        return min(need, self.config.max_iterations)

    @staticmethod
    def _timed_call(
        fn: Callable[..., Any], args: tuple[Any, ...], kwargs: Mapping[str, Any]
    ) -> tuple[Any, int]:
        """One invocation and its duration (serves as the first warmup)."""
        start = time.perf_counter_ns()
        result = fn(*args, **kwargs)
        return result, max(time.perf_counter_ns() - start, 1)

    @staticmethod
    def _run_round(
        fn: Callable[..., Any],
        args: tuple[Any, ...],
        kwargs: Mapping[str, Any],
        iterations: int,
    ) -> tuple[Any, int]:
        """Run ``iterations`` back-to-back calls; return (result, elapsed ns)."""
        result: Any = None
        start = time.perf_counter_ns()
        for _ in range(iterations):
            result = fn(*args, **kwargs)
        return result, max(time.perf_counter_ns() - start, 1)
