"""Deterministic keyed hash family for file-set placement.

ANU randomization needs "an agreed upon family of hash functions" (§4): the
probe sequence ``h_0(name), h_1(name), ...`` maps a file-set name to points
in the unit interval; file sets whose probe lands in unmapped space are
re-hashed with the next family member; after ``max_rounds`` probes the name
is hashed *directly to a server* instead, bounding the probe count (the miss
probability per round is exactly the unmapped fraction, 1/2 under the
half-occupancy invariant, so the fallback triggers with probability
``2**-max_rounds``).

The family must be:

- deterministic across processes and Python versions (so every server in a
  cluster computes the same placement) — we therefore use BLAKE2b with a
  per-round salt rather than Python's randomized ``hash()``;
- well-mixed — each round is an independent-looking uniform draw on [0, 1).
"""

from __future__ import annotations

import hashlib
import math
from typing import Sequence

_TWO_64 = float(2**64)

#: Largest double below 1.0 — the clamp ceiling for unit-interval points.
_MAX_UNIT = math.nextafter(1.0, 0.0)


def hash64(name: str, round_: int, namespace: str = "anu") -> int:
    """A 64-bit keyed hash of ``name`` for probe round ``round_``."""
    if round_ < 0:
        raise ValueError(f"round must be >= 0, got {round_!r}")
    key = f"{namespace}|{round_}".encode("utf-8")[:16]
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8, key=key).digest()
    return int.from_bytes(digest, "little")


def hash_to_unit(name: str, round_: int, namespace: str = "anu") -> float:
    """Map ``name`` to a point in [0, 1) for probe round ``round_``.

    The raw ``hash64 / 2**64`` quotient is *not* guaranteed to stay below
    1.0: doubles have 53 significant bits, so every digest in the top
    ``2**10`` values of the 64-bit range (within half an ULP of ``2**64``)
    rounds up and divides to exactly 1.0 — roughly one name per ``2**54``
    probes.  :meth:`repro.core.interval.MappedInterval.locate_point`
    requires points in the half-open ``[0, 1)``, so the quotient is
    clamped to the largest double below 1.0.  The clamp only moves those
    astronomically rare top-of-range digests (by one ULP), leaving every
    other probe value bit-identical.
    """
    point = hash64(name, round_, namespace) / _TWO_64
    return point if point < 1.0 else _MAX_UNIT


def hash_to_choice(name: str, round_: int, n: int, namespace: str = "anu") -> int:
    """Map ``name`` to an index in [0, n) (the direct-to-server fallback)."""
    if n <= 0:
        raise ValueError(f"need at least one choice, got n={n!r}")
    return hash64(name, round_, namespace) % n


def hash_to_distinct_choices(
    name: str, k: int, n: int, namespace: str = "anu", start_round: int = 0
) -> tuple[int, ...]:
    """``k`` *distinct* indices in [0, n), deterministically from ``name``.

    Successive ``hash_to_choice(name, round, n)`` draws are independent
    uniform picks, so two rounds can collide on the same index — a d=2
    candidate pair silently collapses to d=1 with probability 1/n.  This
    samples *without replacement*: each round's hash indexes the still-
    unchosen positions, so the draw is always fresh and exactly
    ``min(k, n)`` indices come back (in draw order, first draw first).
    """
    if n <= 0:
        raise ValueError(f"need at least one choice, got n={n!r}")
    if k < 0:
        raise ValueError(f"need a non-negative draw count, got k={k!r}")
    remaining = list(range(n))
    chosen: list[int] = []
    for round_ in range(start_round, start_round + min(k, n)):
        idx = hash64(name, round_, namespace) % len(remaining)
        chosen.append(remaining.pop(idx))
    return tuple(chosen)


class HashFamily:
    """A bounded probe sequence over the unit interval with server fallback.

    ``probes(name)`` yields the first ``max_rounds`` unit-interval points of
    the family for ``name``; :meth:`fallback_choice` deterministically picks
    among the live servers when every probe missed.
    """

    def __init__(self, max_rounds: int = 8, namespace: str = "anu") -> None:
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds!r}")
        self.max_rounds = max_rounds
        self.namespace = namespace

    def probe(self, name: str, round_: int) -> float:
        """The ``round_``-th probe point for ``name``."""
        if round_ >= self.max_rounds:
            raise ValueError(
                f"round {round_} >= max_rounds {self.max_rounds}; use fallback_choice"
            )
        return hash_to_unit(name, round_, self.namespace)

    def probes(self, name: str) -> list[float]:
        """All probe points for ``name``, in order."""
        return [hash_to_unit(name, r, self.namespace) for r in range(self.max_rounds)]

    def fallback_choice(self, name: str, candidates: Sequence[str]) -> str:
        """Deterministic direct-to-server choice among ``candidates``.

        Candidates are sorted first so the choice does not depend on the
        caller's ordering (every cluster node must agree).
        """
        ordered = sorted(candidates)
        if not ordered:
            raise ValueError("no candidate servers for fallback")
        idx = hash_to_choice(name, self.max_rounds, len(ordered), self.namespace)
        return ordered[idx]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashFamily(max_rounds={self.max_rounds}, namespace={self.namespace!r})"
