"""ANU (adaptive, non-uniform) randomized placement.

:class:`ANUPlacement` combines the partitioned unit interval
(:class:`repro.core.interval.MappedInterval`) with the probe-sequence hash
family (:class:`repro.core.hashing.HashFamily`) into the placement function
the paper describes in §4:

1. hash the file-set name to a point in the unit interval;
2. if the point is unmapped, re-hash with the next family member;
3. after ``max_rounds`` misses (probability ``2**-max_rounds`` under the
   half-occupancy invariant) hash directly to a server.

Placement is a **pure function** of the current interval state: any node can
locate any file set by hashing alone, with no per-file-set directory state —
the scalability property of §5 ("shared state scales with the number of
servers, rather than the number of file sets").  Consequently, when mapped
regions are rescaled, the new assignment of every file set is recomputed by
re-probing; the minimal-movement property is inherited from the interval's
minimal-movement region updates and is verified empirically by the movement
benchmarks.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..contracts import checks_invariants
from .hashing import HashFamily
from .interval import MappedInterval


class ANUPlacement:
    """Placement and lookup of file sets onto servers via ANU randomization."""

    def __init__(
        self,
        servers: Iterable[str],
        hash_family: HashFamily | None = None,
        shares: Mapping[str, float] | None = None,
    ) -> None:
        self.interval = MappedInterval(servers, shares)
        self.hashes = hash_family or HashFamily()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def locate(self, name: str) -> str:
        """The server currently responsible for file set ``name``."""
        server, _rounds = self.locate_with_rounds(name)
        return server

    def locate_with_rounds(self, name: str) -> tuple[str, int]:
        """Locate ``name`` and report how many hash probes were used.

        A fallback (direct-to-server) assignment reports
        ``max_rounds + 1`` probes.
        """
        for round_ in range(self.hashes.max_rounds):
            point = self.hashes.probe(name, round_)
            owner = self.interval.locate_point(point)
            if owner is not None:
                return owner, round_ + 1
        server = self.hashes.fallback_choice(name, self.interval.servers)
        return server, self.hashes.max_rounds + 1

    def assignment(self, names: Iterable[str]) -> dict[str, str]:
        """Assignment of every name in ``names`` under the current state."""
        return {name: self.locate(name) for name in names}

    def locate_owner_set(self, name: str, r: int) -> tuple[str, ...]:
        """The first ``r`` distinct servers along ``name``'s probe path.

        The probe-native replicated-ownership view: slot 0 is exactly
        :meth:`locate` (the first mapped probe, or the direct-to-server
        fallback when every probe misses), and later slots are the next
        *different* servers the probe sequence hits.  When the bounded
        probe walk yields fewer than ``r`` distinct owners, the rest are
        filled by the deterministic fallback choice over the not-yet-
        chosen servers — so ``r`` owners always come back while the fleet
        has that many.
        """
        if r < 1:
            raise ValueError(f"need at least one owner, got r={r!r}")
        owners = self.interval.locate_distinct(
            (self.hashes.probe(name, round_)
             for round_ in range(self.hashes.max_rounds)),
            r,
        )
        chosen = set(owners)
        while len(owners) < r:
            remaining = [s for s in self.interval.servers if s not in chosen]
            if not remaining:
                break
            pick = self.hashes.fallback_choice(name, remaining)
            chosen.add(pick)
            owners.append(pick)
        return tuple(owners)

    # ------------------------------------------------------------------
    # Reconfiguration (delegates to the interval)
    # ------------------------------------------------------------------
    @property
    def servers(self) -> list[str]:
        return self.interval.servers

    def shares(self) -> dict[str, int]:
        """Current mapped-region sizes in interval ticks."""
        return self.interval.shares()

    @checks_invariants
    def set_shares(self, shares: Mapping[str, float]) -> None:
        """Rescale mapped regions (minimal movement); see the interval docs."""
        self.interval.set_shares(shares)

    @checks_invariants
    def add_server(self, name: str, share_fraction: float | None = None) -> None:
        """Commission or recover a server."""
        self.interval.add_server(name, share_fraction)

    @checks_invariants
    def remove_server(self, name: str) -> None:
        """Fail or decommission a server."""
        self.interval.remove_server(name)

    def check_invariants(self) -> None:
        """Assert the interval's structural invariants."""
        self.interval.check_invariants()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ANUPlacement({self.interval!r})"
