"""ANU randomization: the paper's primary contribution.

Public surface:

- :class:`~repro.core.anu.ANUPlacement` — place/locate file sets;
- :class:`~repro.core.interval.MappedInterval` — the partitioned unit
  interval with the half-occupancy invariant;
- :class:`~repro.core.hashing.HashFamily` — the probe-sequence hash family;
- :class:`~repro.core.tuning.DelegateTuner` — latency-driven share rescaling
  with the three over-tuning heuristics;
- :class:`~repro.core.decentralized.PairwiseTuner` — the §5 future-work
  decentralized variant;
- :mod:`~repro.core.movement` — movement/cache-preservation accounting.
"""

from .anu import ANUPlacement
from .decentralized import Exchange, PairwiseConfig, PairwiseTuner
from .hashing import HashFamily, hash64, hash_to_choice, hash_to_unit
from .interval import (
    HALF,
    RESOLUTION,
    RESOLUTION_BITS,
    IntervalError,
    MappedInterval,
    Segment,
    fractions_to_ticks,
    min_partitions,
)
from .movement import Move, MovementLedger, ReconfigDiff, diff_assignment
from .tuning import (
    AGGRESSIVE,
    ALL_HEURISTICS,
    DIVERGENT_ONLY,
    THRESHOLD_ONLY,
    TOP_OFF_ONLY,
    DelegateTuner,
    ServerReport,
    TuningConfig,
    TuningDecision,
    system_average,
)

__all__ = [
    "ANUPlacement",
    "HashFamily",
    "hash64",
    "hash_to_choice",
    "hash_to_unit",
    "MappedInterval",
    "Segment",
    "IntervalError",
    "fractions_to_ticks",
    "min_partitions",
    "HALF",
    "RESOLUTION",
    "RESOLUTION_BITS",
    "DelegateTuner",
    "ServerReport",
    "TuningConfig",
    "TuningDecision",
    "system_average",
    "AGGRESSIVE",
    "ALL_HEURISTICS",
    "THRESHOLD_ONLY",
    "TOP_OFF_ONLY",
    "DIVERGENT_ONLY",
    "PairwiseTuner",
    "PairwiseConfig",
    "Exchange",
    "Move",
    "ReconfigDiff",
    "MovementLedger",
    "diff_assignment",
]
