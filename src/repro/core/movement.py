"""Movement accounting: which file sets a reconfiguration moves.

A key claim of the paper is *cache preservation*: reconfigurations move the
minimum amount of workload, so server caches survive tuning, failure and
recovery.  This module diffs two file-set assignments, classifies the moves,
and accumulates statistics across a run so the claim can be measured (and
compared against bin-packing baselines, which may permute arbitrarily).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class Move:
    """One file set changing owner (in one replica slot).

    ``slot`` is the owner-set position that changed: 0 is the primary —
    the only slot that exists under classic single ownership, so every
    pre-replication caller sees unchanged semantics — and slots >= 1 are
    replica owners, whose reassignment is routing-plane bookkeeping (a
    shared-disk replica reads the same image; no flush travels).
    """

    fileset: str
    source: str | None  # None when newly placed
    destination: str
    slot: int = 0


@dataclass(frozen=True)
class ReconfigDiff:
    """The difference between two assignments."""

    moves: tuple[Move, ...]
    stayed: int

    @property
    def moved(self) -> int:
        return len(self.moves)

    @property
    def total(self) -> int:
        return self.moved + self.stayed

    @property
    def moved_fraction(self) -> float:
        """Fraction of file sets that changed owner (0 when no file sets)."""
        return self.moved / self.total if self.total else 0.0


def diff_assignment(
    old: Mapping[str, str], new: Mapping[str, str]
) -> ReconfigDiff:
    """Diff two assignments over the union of their file sets.

    A file set present only in ``new`` counts as a move from ``None`` (a
    fresh placement); file sets present only in ``old`` (deleted) are
    ignored.
    """
    moves: list[Move] = []
    stayed = 0
    for name in sorted(new):
        dst = new[name]
        src = old.get(name)
        if src == dst:
            stayed += 1
        else:
            moves.append(Move(fileset=name, source=src, destination=dst))
    return ReconfigDiff(moves=tuple(moves), stayed=stayed)


def diff_owner_sets(
    old: "Mapping[str, str | tuple[str, ...]]",
    new: "Mapping[str, str | tuple[str, ...]]",
) -> ReconfigDiff:
    """Slot-wise diff of two owner-set mappings.

    Values may be plain owner strings (treated as 1-tuples) or owner
    tuples; for two ``str``-valued mappings the result is identical to
    :func:`diff_assignment`, so single-ownership callers can switch to
    this without behavior change.  Each (file set, slot) pair counts
    once: a slot whose owner changed yields a :class:`Move` carrying the
    slot index, an unchanged slot counts toward ``stayed``.  A slot
    present only in ``new`` (replication grew, or a fresh placement) is
    a move from ``None``; slots present only in ``old`` are ignored,
    mirroring the deleted-file-set rule above.
    """
    moves: list[Move] = []
    stayed = 0
    for name in sorted(new):
        dst_owners = new[name]
        if isinstance(dst_owners, str):
            dst_owners = (dst_owners,)
        src_owners = old.get(name)
        if src_owners is None:
            src_owners = ()
        elif isinstance(src_owners, str):
            src_owners = (src_owners,)
        for slot, dst in enumerate(dst_owners):
            src = src_owners[slot] if slot < len(src_owners) else None
            if src == dst:
                stayed += 1
            else:
                moves.append(
                    Move(fileset=name, source=src, destination=dst, slot=slot)
                )
    return ReconfigDiff(moves=tuple(moves), stayed=stayed)


@dataclass
class MovementLedger:
    """Cumulative movement statistics across a simulation run."""

    reconfigurations: int = 0
    total_moves: int = 0
    total_stayed: int = 0
    moves_per_reconfig: list[int] = field(default_factory=list)

    def record(self, diff: ReconfigDiff) -> None:
        """Accumulate one reconfiguration diff."""
        self.reconfigurations += 1
        self.total_moves += diff.moved
        self.total_stayed += diff.stayed
        self.moves_per_reconfig.append(diff.moved)

    @property
    def mean_moves(self) -> float:
        if not self.reconfigurations:
            return 0.0
        return self.total_moves / self.reconfigurations

    @property
    def preservation(self) -> float:
        """Fraction of (file set, reconfiguration) pairs that stayed put."""
        total = self.total_moves + self.total_stayed
        return self.total_stayed / total if total else 1.0

    def summary(self) -> dict[str, float]:
        """Scalar movement metrics for report tables."""
        return {
            "reconfigurations": float(self.reconfigurations),
            "total_moves": float(self.total_moves),
            "mean_moves": self.mean_moves,
            "preservation": self.preservation,
        }
