"""The partitioned unit interval and server mapped regions.

This is the data structure at the heart of ANU randomization (§4 of the
paper).  The unit interval is divided into ``p`` equal *partitions*, where
``p`` is the smallest power of two with ``p >= 2*(n+1)`` for ``n`` servers.
Each server owns a *mapped region*: a set of whole partitions plus at most
one *prefix* of a partition (the "partial" partition).  A partition is owned
by at most one server.  The sum of all mapped-region lengths is exactly 1/2
— the paper's *half-occupancy invariant* — which guarantees both that every
probe hits a mapped region with probability 1/2 and that a wholly-free
partition always exists for a recovered or newly added server:

    occupied partitions <= (1/2)/psize + n = p/2 + n  <  p   (since p >= 2n+2)

Arithmetic is exact: the interval is ``2**RESOLUTION_BITS`` integer *ticks*,
and because ``p`` is a power of two the partition size in ticks is an exact
integer.  Shares are therefore integers that sum to exactly half the
resolution, and every invariant below is checked without tolerance.

Repartitioning (needed when servers are added) splits every partition in
half.  Splitting never moves an existing region boundary, reproducing the
paper's claim that "further partitioning the unit interval does not move any
existing load".
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..contracts import checks_invariants, preserves
from ..sweep.api import register_process_cache
from ..units import Ticks

RESOLUTION_BITS = 48
#: Total ticks in the unit interval.
RESOLUTION = 1 << RESOLUTION_BITS
#: Ticks that must be mapped (the half-occupancy invariant).
HALF = RESOLUTION >> 1


class IntervalError(ValueError):
    """Raised on operations that would violate interval invariants."""


#: Live intervals whose memoized segment maps must be dropped at a
#: process boundary.  The segments() cache is keyed by a *per-process*
#: mutation counter; a forked child inheriting a parent's warm cache
#: alongside a reset-or-matching generation counter could serve stale
#: segment lists, so worker initializers wipe every live instance.
_LIVE_INTERVALS: "weakref.WeakSet[MappedInterval]" = weakref.WeakSet()


@register_process_cache
def clear_interval_caches() -> None:
    """Drop every live interval's memoized segment map (worker-start hook)."""
    for interval in list(_LIVE_INTERVALS):
        interval._segments_cache.clear()
        interval._segments_gen = -1


def min_partitions(n_servers: int) -> int:
    """Smallest power of two >= 2*(n+1): the paper's partition-count rule."""
    if n_servers < 1:
        raise IntervalError(f"need at least one server, got {n_servers}")
    need = 2 * (n_servers + 1)
    p = 1
    while p < need:
        p <<= 1
    return p


def fractions_to_ticks(
    shares: Mapping[str, float], total: int = HALF
) -> dict[str, Ticks]:
    """Round non-negative float shares to integer ticks summing exactly to ``total``.

    Uses largest-remainder rounding; shares are first normalized.  A share of
    exactly 0 stays 0 (idle servers under top-off tuning own nothing).
    """
    names = sorted(shares)
    vals = [float(shares[k]) for k in names]
    if any(v < 0 for v in vals):
        raise IntervalError(f"negative share in {shares!r}")
    s = sum(vals)
    if s <= 0:
        raise IntervalError("all shares are zero; at least one server must own load")
    quotas = [v / s * total for v in vals]
    floors = [int(q) for q in quotas]
    shortfall = total - sum(floors)
    # Give the leftover ticks to the largest fractional remainders, but never
    # to an exactly-zero share (ties broken by name for determinism).
    order = sorted(
        range(len(names)),
        key=lambda i: (-(quotas[i] - floors[i]), names[i]),
    )
    for i in order:
        if shortfall == 0:
            break
        if vals[i] > 0:
            floors[i] += 1
            shortfall -= 1
    if shortfall != 0:  # every positive share already got a tick; spill anyway
        for i in order:
            if shortfall == 0:
                break
            floors[i] += 1
            shortfall -= 1
    return dict(zip(names, floors))


@dataclass(frozen=True)
class Segment:
    """A half-open sub-interval [start, end) of the unit interval (floats)."""

    start: float
    end: float

    @property
    def length(self) -> float:
        return self.end - self.start


class MappedInterval:
    """Partitioned unit interval with per-server mapped regions.

    Parameters
    ----------
    servers:
        Initial server names.  Shares default to equal fractions of the
        mapped half.
    shares:
        Optional initial share fractions (relative weights; normalized).
    """

    def __init__(
        self,
        servers: Iterable[str],
        shares: Mapping[str, float] | None = None,
    ) -> None:
        names = list(servers)
        if len(set(names)) != len(names):
            raise IntervalError(f"duplicate server names in {names!r}")
        if not names:
            raise IntervalError("need at least one server")
        self._p = min_partitions(len(names))
        # Partition state: owner name (or None) and owned prefix in ticks.
        self._owner: list[str | None] = [None] * self._p
        self._prefix: list[int] = [0] * self._p
        # Per-server state.
        self._full: dict[str, set[int]] = {name: set() for name in names}
        self._partial: dict[str, tuple[int, int] | None] = {name: None for name in names}
        self._shares: dict[str, int] = {name: 0 for name in names}
        # Mutation epoch for the segments() cache: every operation that can
        # move a region boundary bumps it, so cached segment lists are
        # reused only while the mapping is provably unchanged.  Invariant
        # checks (the @preserves capture on repartition, monitoring reads)
        # therefore stop rebuilding the full segment map on every call.
        self._generation = 0
        self._segments_cache: dict[str, list[Segment]] = {}
        self._segments_gen = -1
        _LIVE_INTERVALS.add(self)
        if shares is None:
            shares = {name: 1.0 for name in names}
        self.set_shares(shares)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def partitions(self) -> int:
        """Current number of partitions ``p``."""
        return self._p

    @property
    def partition_ticks(self) -> Ticks:
        """Exact partition size in ticks."""
        return Ticks(RESOLUTION // self._p)

    @property
    def servers(self) -> list[str]:
        """Registered server names, sorted."""
        return sorted(self._shares)

    @property
    def n_servers(self) -> int:
        return len(self._shares)

    def share_ticks(self, name: str) -> Ticks:
        """Mapped-region size of ``name`` in ticks."""
        return Ticks(self._shares[name])

    def share_fraction(self, name: str) -> float:
        """Mapped-region size of ``name`` as a fraction of the unit interval."""
        return self._shares[name] / RESOLUTION

    def shares(self) -> dict[str, Ticks]:
        """All share sizes in ticks (copy)."""
        return dict(self._shares)

    def free_partitions(self) -> list[int]:
        """Indices of wholly-free partitions."""
        return [i for i in range(self._p) if self._owner[i] is None]

    def segments(self, name: str) -> list[Segment]:
        """The mapped region of ``name`` as merged float segments.

        Cached per mutation generation: repeated reads between mutations
        (invariant captures, monitors, figure rendering) reuse the built
        list instead of re-merging the partition map.  The returned list
        is a fresh copy; callers may do with it as they please.
        """
        if self._segments_gen != self._generation:
            self._segments_cache.clear()
            self._segments_gen = self._generation
        cached = self._segments_cache.get(name)
        if cached is None:
            cached = self._build_segments(name)
            self._segments_cache[name] = cached
        return list(cached)

    def _build_segments(self, name: str) -> list[Segment]:
        """Merge ``name``'s partitions into float segments (uncached)."""
        psize = self.partition_ticks
        raw: list[tuple[int, int]] = []
        for idx in self._full[name]:
            raw.append((idx * psize, (idx + 1) * psize))
        partial = self._partial[name]
        if partial is not None:
            idx, ticks = partial
            raw.append((idx * psize, idx * psize + ticks))
        raw.sort()
        merged: list[list[int]] = []
        for start, end in raw:
            if merged and merged[-1][1] == start:
                merged[-1][1] = end
            else:
                merged.append([start, end])
        return [Segment(s / RESOLUTION, e / RESOLUTION) for s, e in merged]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def locate_point(self, x: float) -> str | None:
        """The server whose mapped region contains point ``x``, else None.

        The domain is the half-open ``[0, 1)``; ``x == 1.0`` is rejected.
        Hash-derived probe points satisfy this by construction —
        :func:`repro.core.hashing.hash_to_unit` clamps its quotient below
        1.0 (see its docstring for why the raw division can round up) —
        and for any ``x <= 1 - 2**-53`` the tick product ``x * RESOLUTION``
        is exact (both factors are powers-of-two scalings of <=53-bit
        integers), so the computed tick always stays below ``RESOLUTION``.
        """
        if not 0.0 <= x < 1.0:
            raise IntervalError(f"point {x!r} outside [0, 1)")
        tick = int(x * RESOLUTION)
        psize = self.partition_ticks
        idx = tick // psize
        owner = self._owner[idx]
        if owner is None:
            return None
        offset = tick - idx * psize
        return owner if offset < self._prefix[idx] else None

    def locate_distinct(self, points: Iterable[float], k: int) -> list[str]:
        """Up to ``k`` *distinct* owners along a probe-point sequence.

        The replicated-ownership view: walking a hash family's probe
        sequence through this method yields the first ``k`` different
        servers the probes land on, in probe order — slot 0 is exactly
        what :meth:`locate_point` returns for the first mapped probe, so
        the primary owner of an owner set built this way coincides with
        the classic single-owner placement.  Unmapped probes and repeat
        hits are skipped; fewer than ``k`` owners come back when the
        sequence runs out first.
        """
        if k < 0:
            raise IntervalError(f"need a non-negative owner count, got {k!r}")
        owners: list[str] = []
        seen: set[str] = set()
        for point in points:
            if len(owners) >= k:
                break
            owner = self.locate_point(point)
            if owner is not None and owner not in seen:
                seen.add(owner)
                owners.append(owner)
        return owners

    # ------------------------------------------------------------------
    # Share updates (minimal movement)
    # ------------------------------------------------------------------
    @checks_invariants
    def set_shares(self, shares: Mapping[str, float]) -> None:
        """Rescale mapped regions to the given relative shares.

        The update is *minimal-movement*: a server's existing partitions are
        kept wherever possible; shrinking trims its partial prefix first,
        then releases whole partitions; growing extends the partial prefix,
        then claims free partitions.  All shrinks happen before all grows so
        free space always suffices.
        """
        if set(shares) != set(self._shares):
            raise IntervalError(
                f"shares for {sorted(shares)} do not match servers {self.servers}"
            )
        targets = fractions_to_ticks(shares, HALF)
        # Phase 1: shrink.
        for name in sorted(targets):
            delta = self._shares[name] - targets[name]
            if delta > 0:
                self._shrink(name, delta)
        # Phase 2: grow.
        for name in sorted(targets):
            delta = targets[name] - self._shares[name]
            if delta > 0:
                self._grow(name, delta)

    def _mutated(self) -> None:
        """Invalidate cached derived state (the segments cache)."""
        self._generation += 1

    def _release_partition(self, name: str, idx: int) -> None:
        self._mutated()
        self._owner[idx] = None
        self._prefix[idx] = 0
        self._full[name].discard(idx)

    def _shrink(self, name: str, delta: int) -> None:
        self._mutated()
        psize = self.partition_ticks
        partial = self._partial[name]
        if partial is not None:
            idx, ticks = partial
            if ticks > delta:
                self._partial[name] = (idx, ticks - delta)
                self._prefix[idx] = ticks - delta
                self._shares[name] -= delta
                return
            # Release the whole partial.
            delta -= ticks
            self._shares[name] -= ticks
            self._partial[name] = None
            self._release_partition(name, idx)
        # Release whole full partitions (highest index first: keeps low,
        # long-lived partitions stable, which preserves more placements).
        for idx in sorted(self._full[name], reverse=True):
            if delta < psize:
                break
            self._release_partition(name, idx)
            self._shares[name] -= psize
            delta -= psize
        if delta > 0:
            # Convert one full partition into a partial with the remainder.
            if not self._full[name]:
                raise IntervalError(
                    f"internal: cannot shrink {name!r} by {delta} ticks further"
                )
            idx = max(self._full[name])
            self._full[name].remove(idx)
            ticks = psize - delta
            self._partial[name] = (idx, ticks)
            self._prefix[idx] = ticks
            self._shares[name] -= delta

    def _grow(self, name: str, delta: int) -> None:
        self._mutated()
        psize = self.partition_ticks
        partial = self._partial[name]
        if partial is not None:
            idx, ticks = partial
            room = psize - ticks
            take = min(room, delta)
            ticks += take
            delta -= take
            self._shares[name] += take
            if ticks == psize:
                self._partial[name] = None
                self._full[name].add(idx)
            else:
                self._partial[name] = (idx, ticks)
            self._prefix[idx] = ticks
        if delta == 0:
            return
        free = sorted(i for i in range(self._p) if self._owner[i] is None)
        for idx in free:
            if delta == 0:
                break
            take = min(psize, delta)
            self._owner[idx] = name
            self._prefix[idx] = take
            self._shares[name] += take
            delta -= take
            if take == psize:
                self._full[name].add(idx)
            else:
                self._partial[name] = (idx, take)
        if delta > 0:
            raise IntervalError(
                f"internal: no free space left growing {name!r} ({delta} ticks short)"
            )

    # ------------------------------------------------------------------
    # Membership changes
    # ------------------------------------------------------------------
    @checks_invariants
    def add_server(self, name: str, share_fraction: float | None = None) -> None:
        """Add (commission or recover) a server.

        The newcomer receives ``share_fraction`` of the mapped half
        (default: an equal ``1/n_new`` portion); all other servers are
        scaled back proportionally, as the paper prescribes.  The interval
        is repartitioned first if ``p < 2*(n_new+1)``.
        """
        if name in self._shares:
            raise IntervalError(f"server {name!r} already present")
        n_new = self.n_servers + 1
        if share_fraction is None:
            share_fraction = 1.0 / n_new
        if not 0.0 < share_fraction < 1.0:
            raise IntervalError(f"share_fraction {share_fraction!r} outside (0, 1)")
        # All argument checks passed: only now may the interval change.
        # Repartitioning before validating would leave p doubled (state
        # torn) when a bad share_fraction raises (RPL106).
        self._mutated()
        while self._p < 2 * (n_new + 1):
            self.repartition()
        old = {s: self._shares[s] for s in self._shares}
        self._full[name] = set()
        self._partial[name] = None
        self._shares[name] = 0
        scale = 1.0 - share_fraction
        new_shares = {s: v * scale for s, v in old.items()}
        new_shares[name] = share_fraction * HALF
        self.set_shares(new_shares)

    @checks_invariants
    def remove_server(self, name: str) -> None:
        """Remove (fail or decommission) a server.

        Its region is freed and all survivors are scaled up proportionally
        to restore the half-occupancy invariant.
        """
        if name not in self._shares:
            raise IntervalError(f"unknown server {name!r}")
        if self.n_servers == 1:
            raise IntervalError("cannot remove the last server")
        self._mutated()
        for idx in list(self._full[name]):
            self._release_partition(name, idx)
        partial = self._partial[name]
        if partial is not None:
            self._release_partition(name, partial[0])
        del self._full[name]
        del self._partial[name]
        del self._shares[name]
        survivors = {s: max(v, 1) for s, v in self._shares.items()}
        self.set_shares(survivors)

    @checks_invariants
    @preserves(
        lambda self: {s: self.segments(s) for s in self.servers},
        message="repartition moved a mapped-region boundary",
    )
    def repartition(self) -> None:
        """Split every partition in half (p doubles); moves no boundary."""
        self._mutated()
        old_p = self._p
        psize_new = RESOLUTION // (old_p * 2)
        owner_new: list[str | None] = [None] * (old_p * 2)
        prefix_new: list[int] = [0] * (old_p * 2)
        full_new: dict[str, set[int]] = {s: set() for s in self._shares}
        partial_new: dict[str, tuple[int, int] | None] = {s: None for s in self._shares}
        for idx in range(old_p):
            owner = self._owner[idx]
            if owner is None:
                continue
            ticks = self._prefix[idx]
            lo, hi = 2 * idx, 2 * idx + 1
            if ticks >= psize_new:
                owner_new[lo] = owner
                prefix_new[lo] = psize_new
                full_new[owner].add(lo)
                rest = ticks - psize_new
                if rest > 0:
                    owner_new[hi] = owner
                    prefix_new[hi] = rest
                    if rest == psize_new:
                        full_new[owner].add(hi)
                    else:
                        partial_new[owner] = (hi, rest)
            else:
                owner_new[lo] = owner
                prefix_new[lo] = ticks
                partial_new[owner] = (lo, ticks)
        self._p = old_p * 2
        self._owner = owner_new
        self._prefix = prefix_new
        self._full = full_new
        self._partial = partial_new

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert every structural invariant; raises IntervalError on breach."""
        psize = self.partition_ticks
        if psize * self._p != RESOLUTION:
            raise IntervalError("partition size does not divide the interval")
        if self._p < 2 * (self.n_servers + 1):
            raise IntervalError(
                f"p={self._p} < 2*(n+1)={2 * (self.n_servers + 1)}"
            )
        # Per-partition consistency.
        seen_shares = {s: 0 for s in self._shares}
        for idx in range(self._p):
            owner = self._owner[idx]
            ticks = self._prefix[idx]
            if owner is None:
                if ticks != 0:
                    raise IntervalError(f"free partition {idx} has prefix {ticks}")
                continue
            if not 0 < ticks <= psize:
                raise IntervalError(f"partition {idx} prefix {ticks} out of range")
            seen_shares[owner] += ticks
            if ticks == psize:
                if idx not in self._full[owner]:
                    raise IntervalError(f"full partition {idx} missing from {owner!r}")
            else:
                if self._partial[owner] != (idx, ticks):
                    raise IntervalError(
                        f"partial partition {idx} not recorded for {owner!r}"
                    )
        # Per-server consistency.
        partial_count: dict[str, int] = {}
        for name in self._shares:
            if seen_shares[name] != self._shares[name]:
                raise IntervalError(
                    f"{name!r}: share {self._shares[name]} != observed {seen_shares[name]}"
                )
            partial = self._partial[name]
            partial_count[name] = 0 if partial is None else 1
            if partial is not None and partial[0] in self._full[name]:
                raise IntervalError(f"{name!r}: partition both full and partial")
        if any(c > 1 for c in partial_count.values()):
            raise IntervalError("server with more than one partial partition")
        # Half occupancy, exactly.
        total = sum(self._shares.values())
        if total != HALF:
            raise IntervalError(f"total mapped ticks {total} != HALF {HALF}")
        # A wholly-free partition must always exist.
        if not any(o is None for o in self._owner):
            raise IntervalError("no wholly-free partition available")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{s}={self.share_fraction(s):.4f}" for s in self.servers
        )
        return f"MappedInterval(p={self._p}, {parts})"
