"""Pair-wise decentralized tuning — the paper's §5 future-work direction.

The published algorithm collects latencies at a single elected delegate.
Section 5 sketches a fully decentralized variant: "replacing centralized
re-scaling of server mapped regions with pair-wise interactions in which
servers scale their mapped regions in peer-to-peer exchanges."

This module implements that sketch.  Each round, servers are matched into
random disjoint pairs; within a pair, share moves from the higher-latency
server to the lower-latency server by a step proportional to the relative
latency gap.  Because each exchange conserves the pair's combined share, the
half-occupancy invariant is preserved globally without any central
renormalization — exactly the property the decentralization needs.

The same thresholding gate as the central tuner applies within a pair (no
exchange when the two latencies are within ``(1 ± t)`` of their mean), which
prevents pair-wise over-tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .tuning import ServerReport


@dataclass(frozen=True)
class PairwiseConfig:
    """Knobs for pair-wise tuning.

    Defaults are deliberately damped: exchanges act on one noisy interval's
    latencies with no global view, so aggressive transfers re-create the
    paper's over-tuning cycle pair-locally.  The decentralization ablation
    (``bench_abl_decentralized``) compares against the central delegate.
    """

    threshold: float = 1.0
    max_transfer_fraction: float = 0.15  # of the pair's combined share
    gain: float = 0.3  # how aggressively the latency gap is closed

    def __post_init__(self) -> None:
        if not 0 <= self.max_transfer_fraction < 1:
            raise ValueError(
                f"max_transfer_fraction must be in [0, 1), got "
                f"{self.max_transfer_fraction!r}"
            )
        if self.gain <= 0:
            raise ValueError(f"gain must be positive, got {self.gain!r}")


@dataclass(frozen=True)
class Exchange:
    """One pair-wise share transfer (for logging and tests)."""

    donor: str
    recipient: str
    amount: float


class PairwiseTuner:
    """Decentralized tuner: random pairing + conservative share exchange."""

    def __init__(self, config: PairwiseConfig | None = None) -> None:
        self.config = config or PairwiseConfig()

    def pair(self, names: Sequence[str], rng: np.random.Generator) -> list[tuple[str, str]]:
        """Random disjoint pairing; with odd counts one server sits out."""
        order = list(names)
        rng.shuffle(order)
        return [(order[i], order[i + 1]) for i in range(0, len(order) - 1, 2)]

    def compute(
        self,
        current_shares: Mapping[str, float],
        reports: Sequence[ServerReport],
        rng: np.random.Generator,
    ) -> tuple[dict[str, float], list[Exchange]]:
        """One decentralized round: returns (new shares, exchanges made).

        The sum of the returned shares equals the sum of ``current_shares``
        exactly (up to float addition), preserving half-occupancy without a
        central renormalization step.
        """
        cfg = self.config
        by_name = {r.name: r for r in reports}
        if set(by_name) != set(current_shares):
            raise ValueError("reports do not match shares")
        shares = {k: float(v) for k, v in current_shares.items()}
        exchanges: list[Exchange] = []
        for a, b in self.pair(sorted(shares), rng):
            ra, rb = by_name[a], by_name[b]
            if ra.request_count == 0 and rb.request_count == 0:
                continue
            la, lb = ra.mean_latency, rb.mean_latency
            mean = (la + lb) / 2.0
            if mean <= 0:
                continue
            # Thresholding within the pair.
            if abs(la - lb) <= cfg.threshold * mean:
                continue
            donor, recipient = (a, b) if la > lb else (b, a)
            gap = abs(la - lb) / (max(la, lb) or 1.0)
            combined = shares[a] + shares[b]
            amount = min(
                cfg.gain * gap * shares[donor],
                cfg.max_transfer_fraction * combined,
                shares[donor],
            )
            if amount <= 0:
                continue
            shares[donor] -= amount
            shares[recipient] += amount
            exchanges.append(Exchange(donor=donor, recipient=recipient, amount=amount))
        return shares, exchanges
