"""Delegate tuning: turning observed latencies into new mapped-region shares.

Each tuning interval, every server reports its mean request latency to an
elected delegate.  The delegate computes a system "average" latency and
rescales mapped regions: servers above the average shrink, servers below it
grow (§4).  Three heuristics gate which servers are tuned, eliminating the
*over-tuning* cycles of §6:

thresholding
    only tune servers whose latency lies outside ``[A*(1-t), A*(1+t)]``;
top-off
    only ever *shrink* overloaded servers; underloaded servers gain load
    implicitly through the half-occupancy renormalization;
divergent
    only tune servers moving *away* from the average (above-average and
    rising, or below-average and falling).  Requires the previous interval's
    reports; when they are unavailable (delegate fail-over) the gate is
    skipped — the stateless degradation the paper describes.

The tuner is deliberately pure: :meth:`DelegateTuner.compute_shares` maps
``(current shares, reports, previous reports)`` to new relative shares and
keeps no other state, so a crashed delegate can be replaced mid-run.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..contracts import ensure
from ..units import Seconds


@dataclass(frozen=True)
class ServerReport:
    """One server's performance report for a tuning interval."""

    name: str
    mean_latency: Seconds
    request_count: int

    def __post_init__(self) -> None:
        if self.mean_latency < 0:
            raise ValueError(f"negative latency {self.mean_latency!r}")
        if self.request_count < 0:
            raise ValueError(f"negative request count {self.request_count!r}")


@dataclass(frozen=True)
class TuningConfig:
    """Knobs for the delegate tuner.

    ``threshold`` is the paper's ``t``; "fairly large values are necessary
    to cope with workload heterogeneity" — 1.0 by default (the ablation
    bench sweeps it).  ``max_step``
    clamps the per-interval multiplicative change of any one share.
    ``grow_seed_fraction`` is the share (as a fraction of the fair share
    ``1/n``) granted to a zero-share server that the tuner decides to grow —
    without it an idled server could never re-acquire load, which is
    precisely the instrument needed to reproduce the over-tuning figures.
    """

    use_thresholding: bool = True
    use_top_off: bool = True
    use_divergent: bool = True
    threshold: float = 1.0
    average: str = "weighted_mean"  # or "median"
    max_step: float = 4.0
    grow_seed_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {self.threshold!r}")
        if self.max_step <= 1:
            raise ValueError(f"max_step must be > 1, got {self.max_step!r}")
        if self.average not in ("weighted_mean", "mean", "median"):
            raise ValueError(f"unknown average {self.average!r}")


#: The paper's early, aggressive variant (Figure 10a): no heuristics.
AGGRESSIVE = TuningConfig(
    use_thresholding=False, use_top_off=False, use_divergent=False
)
#: All three heuristics (Figure 10b) — the paper's final algorithm.
ALL_HEURISTICS = TuningConfig()
#: Single-heuristic variants for the Figure 11 decomposition.  The
#: threshold-only variant uses t < 1: at t >= 1 the lower band edge
#: ``A*(1-t)`` collapses to zero and thresholding degenerates into top-off
#: (nothing is ever explicitly grown).
THRESHOLD_ONLY = TuningConfig(use_top_off=False, use_divergent=False, threshold=0.5)
TOP_OFF_ONLY = TuningConfig(use_thresholding=False, use_divergent=False)
DIVERGENT_ONLY = TuningConfig(use_thresholding=False, use_top_off=False)


@dataclass(frozen=True)
class TuningDecision:
    """The outcome of one delegate round (for logging and tests)."""

    average: float
    new_shares: dict[str, float]
    tuned: dict[str, float] = field(default_factory=dict)  # name -> factor


def system_average(
    reports: Sequence[ServerReport], method: str = "weighted_mean"
) -> Seconds:
    """The delegate's "average" latency across active servers.

    Idle servers (zero requests) are excluded: their latency carries no
    information.  ``weighted_mean`` weights by request count, approximating
    the system-wide mean request latency; ``median`` is the alternative the
    paper reports trying.
    """
    active = [r for r in reports if r.request_count > 0]
    if not active:
        return Seconds(0.0)
    if method == "median":
        return Seconds(
            float(statistics.median(r.mean_latency for r in active))
        )
    if method == "mean":
        return Seconds(
            float(statistics.fmean(r.mean_latency for r in active))
        )
    total = sum(r.request_count for r in active)
    return Seconds(
        sum(r.mean_latency * r.request_count for r in active) / total
    )


def comparison_average(
    reports: Sequence[ServerReport], server: str, method: str = "weighted_mean"
) -> Seconds:
    """The average that ``server`` is compared against: everyone *else*.

    A count-weighted average over all servers has a pathology the delegate
    must avoid: when one overloaded server also serves most of the
    requests, it dominates the average, sits inside its own threshold band
    forever, and is never tuned.  Comparing each server against the
    leave-one-out average removes the self-domination while coinciding
    with the global average in a balanced system (where the paper notes
    mean, median, and mode agree anyway).
    """
    others = [r for r in reports if r.name != server]
    return system_average(others, method)


class DelegateTuner:
    """Stateless mapping from latency reports to new relative shares."""

    def __init__(self, config: TuningConfig | None = None) -> None:
        self.config = config or ALL_HEURISTICS

    # ------------------------------------------------------------------
    def compute(
        self,
        current_shares: Mapping[str, float],
        reports: Sequence[ServerReport],
        previous: Sequence[ServerReport] | None = None,
    ) -> TuningDecision:
        """Compute new relative shares from this interval's reports.

        ``current_shares`` are the existing mapped-region sizes (any unit);
        the returned shares are relative weights for
        :meth:`repro.core.interval.MappedInterval.set_shares`.
        """
        cfg = self.config
        by_name = {r.name: r for r in reports}
        if set(by_name) != set(current_shares):
            raise ValueError(
                f"reports for {sorted(by_name)} do not match shares for "
                f"{sorted(current_shares)}"
            )
        # An all-idle window carries no latency information at all: make
        # the round an explicit no-op rather than falling through to
        # compare every latency against a zero-width [0, 0] band.
        if all(r.request_count == 0 for r in reports):
            return TuningDecision(
                average=Seconds(0.0), new_shares=dict(current_shares)
            )
        avg = system_average(reports, cfg.average)
        total = float(sum(current_shares.values()))
        n = len(current_shares)
        if avg <= 0.0 or total <= 0.0 or n == 0:
            return TuningDecision(average=avg, new_shares=dict(current_shares))

        prev_latency = (
            {r.name: r.mean_latency for r in previous} if previous is not None else None
        )
        new_shares: dict[str, float] = {}
        tuned: dict[str, float] = {}
        fair = total / n
        for name in sorted(current_shares):
            share = float(current_shares[name])
            report = by_name[name]
            latency = report.mean_latency
            # Each server is gated against the leave-one-out average so an
            # overloaded server that dominates the request count cannot
            # hide inside its own band (see comparison_average).
            ref = comparison_average(reports, name, cfg.average)
            if ref <= 0.0:
                new_shares[name] = share
                continue
            lo, hi = ref * (1.0 - cfg.threshold), ref * (1.0 + cfg.threshold)
            direction = self._direction(latency, ref, lo, hi, report, prev_latency)
            if direction == 0:
                new_shares[name] = share
                continue
            factor = self._factor(latency, ref, report.request_count)
            if direction > 0:  # grow
                base = max(share, fair * cfg.grow_seed_fraction)
                new_shares[name] = base * factor
            else:  # shrink
                new_shares[name] = share * factor
            tuned[name] = factor
        if sum(new_shares.values()) <= 0.0:
            new_shares = dict(current_shares)
            tuned = {}
        ensure(
            set(new_shares) == set(current_shares),
            "tuner changed the server set: {} -> {}",
            sorted(current_shares), sorted(new_shares),
        )
        ensure(
            all(v >= 0.0 for v in new_shares.values()),
            "tuner produced a negative share in {}", new_shares,
        )
        ensure(
            sum(new_shares.values()) > 0.0,
            "tuner zeroed every share",
        )
        ensure(
            all(
                1.0 / cfg.max_step <= f <= cfg.max_step
                for f in tuned.values()
            ),
            "tuning factor escaped the max_step clamp: {}", tuned,
        )
        return TuningDecision(average=avg, new_shares=new_shares, tuned=tuned)

    # ------------------------------------------------------------------
    def _direction(
        self,
        latency: float,
        avg: float,
        lo: float,
        hi: float,
        report: ServerReport,
        prev_latency: Mapping[str, float] | None,
    ) -> int:
        """-1 shrink, +1 grow, 0 leave alone, after applying all gates."""
        cfg = self.config
        if cfg.use_thresholding or cfg.use_top_off:
            if latency > hi:
                direction = -1
            elif latency < lo and not cfg.use_top_off:
                direction = 1
            else:
                return 0
        else:
            if latency > avg:
                direction = -1
            elif latency < avg:
                direction = 1
            else:
                return 0
        if cfg.use_top_off and direction > 0:
            return 0  # top-off: never explicitly grow
        if cfg.use_divergent and prev_latency is not None:
            prev = prev_latency.get(report.name)
            if prev is not None:
                rising = latency > prev
                falling = latency < prev
                diverging = (latency > avg and rising) or (latency < avg and falling)
                if not diverging:
                    return 0
        return direction

    def _factor(
        self, latency: float, avg: float, request_count: int
    ) -> float:
        """Multiplicative share change, clamped to [1/max_step, max_step].

        A zero latency earns the max boost only when it was *observed* —
        backed by at least one served request.  A server that reports
        zero latency because it served nothing (a degraded server whose
        share the tuner already shrank to idle, for example) gets a
        neutral factor; rewarding it with ``max_step`` would yo-yo a
        limping server straight back into the rotation.
        """
        cfg = self.config
        if latency <= 0.0:
            return cfg.max_step if request_count > 0 else 1.0
        raw = avg / latency
        return min(max(raw, 1.0 / cfg.max_step), cfg.max_step)
