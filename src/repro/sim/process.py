"""Coroutine-style process layer on top of the event engine.

YACSIM is a *process-oriented* simulation library: model code is written as
sequential routines that ``hold`` (consume simulated time) and interact with
facilities.  This module provides the same style on top of
:class:`repro.sim.engine.Engine` using Python generators.

A process body is a generator function that yields *commands*:

``hold(dt)``
    suspend for ``dt`` simulated seconds;
``waitfor(condition)``
    suspend until another process calls ``condition.signal()``;
``request(facility, service_time)``
    enqueue at a FIFO :class:`repro.sim.resources.Facility` and resume when
    service completes (queueing delay + service time).

Example::

    def body(proc):
        yield proc.hold(1.0)
        yield proc.request(cpu, 0.5)

    Process(engine, body).start()
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable

from .events import PRIORITY_NORMAL, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Engine
    from .resources import Facility


class Condition:
    """A signalable condition that processes can wait for."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list[Process] = []
        self._fired = False

    def signal(self, value: Any = None) -> None:
        """Wake all waiting processes (in wait order)."""
        self._fired = True
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._resume(value)

    @property
    def fired(self) -> bool:
        return self._fired

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)


class _Command:
    """Base class for commands a process body may yield."""

    def apply(self, proc: "Process") -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class _Hold(_Command):
    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"hold with negative delay {delay!r}")
        self.delay = delay

    def apply(self, proc: "Process") -> None:
        proc.engine.schedule(self.delay, proc._resume, None)


class _WaitFor(_Command):
    def __init__(self, condition: Condition) -> None:
        self.condition = condition

    def apply(self, proc: "Process") -> None:
        if self.condition.fired:
            proc.engine.schedule(0.0, proc._resume, None)
        else:
            self.condition._add_waiter(proc)


class _Request(_Command):
    def __init__(self, facility: "Facility", service_time: float) -> None:
        self.facility = facility
        self.service_time = service_time

    def apply(self, proc: "Process") -> None:
        self.facility.request(self.service_time, lambda: proc._resume(None))


class Process:
    """A sequential simulated activity driven by a generator body.

    The body receives the process itself and yields commands created by
    :meth:`hold`, :meth:`waitfor` and :meth:`request`.
    """

    def __init__(
        self,
        engine: "Engine",
        body: Callable[["Process"], Generator[_Command, Any, None]],
        name: str = "",
    ) -> None:
        self.engine = engine
        self.name = name or getattr(body, "__name__", "process")
        self._body = body
        self._gen: Generator[_Command, Any, None] | None = None
        self.done = False
        self.terminated = Condition(f"{self.name}.terminated")

    # -- command constructors (sugar so bodies read like YACSIM code) ----
    def hold(self, delay: float) -> _Command:
        """Consume ``delay`` simulated seconds."""
        return _Hold(delay)

    def waitfor(self, condition: Condition) -> _Command:
        """Block until ``condition.signal()``."""
        return _WaitFor(condition)

    def request(self, facility: "Facility", service_time: float) -> _Command:
        """Queue for FIFO service at ``facility``."""
        return _Request(facility, service_time)

    # -- lifecycle --------------------------------------------------------
    def start(self, delay: float = 0.0) -> "Process":
        """Activate the process ``delay`` seconds from now."""
        if self._gen is not None:
            raise SimulationError(f"process {self.name!r} already started")
        self._gen = self._body(self)
        self.engine.schedule(delay, self._resume, None)
        return self

    def _resume(self, value: Any) -> None:
        if self.done:
            return
        assert self._gen is not None, "process resumed before start()"
        try:
            command = self._gen.send(value) if value is not None else next(self._gen)
        except StopIteration:
            self.done = True
            self.terminated.signal()
            return
        if not isinstance(command, _Command):
            raise SimulationError(
                f"process {self.name!r} yielded {command!r}; expected a command"
            )
        command.apply(self)


def all_of(engine: "Engine", processes: Iterable[Process]) -> Condition:
    """A condition that fires once every process in ``processes`` terminates."""
    procs = list(processes)
    done = Condition("all_of")
    remaining = len(procs)
    if remaining == 0:
        engine.schedule(0.0, done.signal, priority=PRIORITY_NORMAL)
        return done

    def _one_done(_value: Any = None) -> None:
        nonlocal remaining
        remaining -= 1
        if remaining == 0:
            done.signal()

    for proc in procs:
        if proc.done:
            _one_done()
        else:
            proc.terminated._waiters.append(
                _Waiter(_one_done)  # type: ignore[arg-type]
            )
    return done


class _Waiter:
    """Adapter so plain callables can sit in a Condition waiter list."""

    def __init__(self, fn: Callable[[Any], None]) -> None:
        self._fn = fn

    def _resume(self, value: Any) -> None:
        self._fn(value)
