"""Deterministic random-number streams for simulations.

Every stochastic component of a simulation (each file set's arrival process,
the movement-delay sampler, the workload generator, ...) draws from its own
named stream derived from a single root seed.  Streams are independent and
stable: adding a new component does not perturb the draws of existing ones,
which keeps experiments comparable across code versions — the standard
practice for reproducible parallel/HPC simulation.

Implementation: :class:`numpy.random.Generator` seeded through
``numpy.random.SeedSequence.spawn``-style key derivation, with the child key
derived from a hash of the stream name so the mapping is order-independent.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _name_to_key(name: str) -> list[int]:
    """Derive a stable 4-word entropy key from a stream name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]


class StreamFactory:
    """Creates independent, named random streams from one root seed."""

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int) or seed < 0:
            raise ValueError(f"seed must be a non-negative int, got {seed!r}")
        self.seed = seed

    def stream(self, name: str) -> np.random.Generator:
        """A generator unique to ``(seed, name)``; order-independent."""
        seq = np.random.SeedSequence(entropy=self.seed, spawn_key=tuple(_name_to_key(name)))
        return np.random.Generator(np.random.PCG64(seq))

    def spawn(self, name: str) -> "StreamFactory":
        """A child factory namespaced under ``name`` (for subcomponents)."""
        child_seed = int.from_bytes(
            hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()[:8],
            "little",
        )
        return StreamFactory(child_seed)


def exponential(rng: np.random.Generator, mean: float) -> float:
    """One exponential draw with the given mean (rejects non-positive mean)."""
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean!r}")
    return float(rng.exponential(mean))


def uniform(rng: np.random.Generator, low: float, high: float) -> float:
    """One uniform draw on [low, high)."""
    if high < low:
        raise ValueError(f"empty interval [{low!r}, {high!r})")
    return float(rng.uniform(low, high))
