"""Discrete-event simulation engine (YACSIM substitute).

The paper evaluated ANU randomization with a simulator written on YACSIM, a
C discrete-event toolkit.  This subpackage is a from-scratch Python
equivalent providing the pieces the paper's simulator needs:

- :class:`~repro.sim.engine.Engine` — clock + event calendar;
- :class:`~repro.sim.process.Process` — YACSIM-style sequential processes;
- :class:`~repro.sim.resources.Facility` — FIFO single-server queue with
  statistics (:class:`~repro.sim.resources.Monitor`);
- :class:`~repro.sim.rng.StreamFactory` — named, independent random streams.
"""

from .engine import Engine
from .events import (
    PRIORITY_EARLY,
    PRIORITY_LATE,
    PRIORITY_NORMAL,
    Event,
    SimulationError,
)
from .process import Condition, Process, all_of
from .resources import Facility, Monitor
from .rng import StreamFactory, exponential, uniform

__all__ = [
    "Engine",
    "Event",
    "SimulationError",
    "PRIORITY_EARLY",
    "PRIORITY_LATE",
    "PRIORITY_NORMAL",
    "Condition",
    "Process",
    "all_of",
    "Facility",
    "Monitor",
    "StreamFactory",
    "exponential",
    "uniform",
]
