"""Event primitives for the discrete-event simulation engine.

The engine (:mod:`repro.sim.engine`) schedules :class:`Event` objects on a
calendar (a binary heap).  Events carry a callback and arbitrary positional
arguments; ties in simulated time are broken first by an integer ``priority``
(lower fires first) and then by insertion order, so the simulation is fully
deterministic for a fixed seed.

This module is the bottom layer of our YACSIM substitute (see DESIGN.md §2):
YACSIM's "event" and "activity" notions map to :class:`Event` plus the
process layer in :mod:`repro.sim.process`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from ..units import Seconds


#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for bookkeeping events that must observe a time step before
#: ordinary events fire (e.g. statistics snapshots).
PRIORITY_EARLY = -10
#: Priority for events that must run after all ordinary events at a time step
#: (e.g. reconfiguration decisions that should see completed arrivals).
PRIORITY_LATE = 10


_EVENT_COUNTER = itertools.count()


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, priority, seq)``; ``seq`` is a global
    monotone counter assigned at construction, making the ordering total and
    deterministic.
    """

    time: Seconds
    priority: int
    seq: int = field(init=False)
    action: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    #: Back-reference to the owning engine (set at scheduling time, cleared
    #: when the event leaves the calendar) so cancellation is accounted for
    #: in O(1) without scanning the heap.  Duck-typed to avoid a circular
    #: import; anything with a ``_note_cancelled()`` method works.
    engine: Any = field(compare=False, default=None, repr=False)

    def __post_init__(self) -> None:
        self.seq = next(_EVENT_COUNTER)

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine skips it when popped.

        Idempotent.  While the event is still on a calendar, the owning
        engine is notified so its live-event count (and the compaction
        heuristic) stay exact; cancelling an event that already fired or
        was drained is a harmless no-op.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self.engine is not None:
            self.engine._note_cancelled()

    def fire(self) -> None:
        """Invoke the callback (engine-internal)."""
        self.action(*self.args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.action, "__qualname__", repr(self.action))
        return f"Event(t={self.time:.6g}, prio={self.priority}, {name})"


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""
