"""Queueing resources: YACSIM-style facilities and utilization monitors.

The paper's simulator models each metadata server as a FIFO queueing station
("servers use a first-in-first-out queuing discipline", §7).  A
:class:`Facility` is exactly that: a single server with an unbounded FIFO
queue.  Jobs are submitted with :meth:`Facility.request`; the completion
callback fires after queueing delay plus service time.

:class:`Monitor` accumulates time-weighted statistics (mean queue length,
utilization) and per-job statistics (waiting time, sojourn time) so tests can
assert standard queueing identities (e.g. Little's law) against it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from .engine import Engine
from .events import SimulationError


@dataclass
class Monitor:
    """Accumulates job- and time-weighted statistics for a facility."""

    jobs_completed: int = 0
    total_wait: float = 0.0
    total_service: float = 0.0
    total_sojourn: float = 0.0
    busy_time: float = 0.0
    _area_queue: float = 0.0
    _last_change: float = 0.0
    _last_qlen: int = 0

    def record_queue_change(self, now: float, qlen: int) -> None:
        """Account time-weighted queue length up to ``now``."""
        self._area_queue += self._last_qlen * (now - self._last_change)
        self._last_change = now
        self._last_qlen = qlen

    def mean_queue_length(self, now: float) -> float:
        """Time-average number in system up to ``now``."""
        if now <= 0:
            return 0.0
        area = self._area_queue + self._last_qlen * (now - self._last_change)
        return area / now

    @property
    def mean_wait(self) -> float:
        return self.total_wait / self.jobs_completed if self.jobs_completed else 0.0

    @property
    def mean_sojourn(self) -> float:
        return self.total_sojourn / self.jobs_completed if self.jobs_completed else 0.0

    def utilization(self, now: float) -> float:
        """Busy time over wall time up to ``now``."""
        return self.busy_time / now if now > 0 else 0.0


@dataclass(slots=True)
class _Job:
    arrival: float
    service_time: float
    on_complete: Callable[[], None] | None = None


class Facility:
    """A single-server FIFO queueing station.

    ``request(service_time, on_complete)`` enqueues a job.  When the job
    finishes service, ``on_complete()`` is invoked.  Service is
    non-preemptive.  The facility can be drained/paused for modelling
    failures via :meth:`pause` / :meth:`resume_service`.
    """

    def __init__(self, engine: Engine, name: str = "facility") -> None:
        self.engine = engine
        self.name = name
        self.monitor = Monitor()
        self._queue: deque[_Job] = deque()
        self._in_service: _Job | None = None
        self._service_event = None
        self._paused = False

    # ------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Jobs in system (waiting + in service)."""
        return len(self._queue) + (1 if self._in_service is not None else 0)

    @property
    def busy(self) -> bool:
        return self._in_service is not None

    # ------------------------------------------------------------------
    def request(
        self, service_time: float, on_complete: Callable[[], None] | None = None
    ) -> None:
        """Enqueue a job requiring ``service_time`` seconds of service."""
        if service_time < 0:
            raise SimulationError(f"negative service time {service_time!r}")
        job = _Job(arrival=self.engine.now, service_time=service_time,
                   on_complete=on_complete)
        self._queue.append(job)
        self.monitor.record_queue_change(self.engine.now, self.queue_length)
        self._try_start()

    def pause(self) -> None:
        """Stop starting new jobs (the job in service, if any, completes)."""
        self._paused = True

    def resume_service(self) -> None:
        """Resume starting jobs after :meth:`pause` or :meth:`fail`."""
        self._paused = False
        self._try_start()

    def fail(self) -> int:
        """Crash the facility: abort the job in service, drop all waiting
        jobs, and pause.  Returns the number of jobs evicted (no completion
        callbacks fire for them).  Models a server crash — callers that
        track outstanding work re-dispatch it elsewhere.
        """
        evicted = 0
        if self._in_service is not None:
            if self._service_event is not None:
                self._service_event.cancel()
                self._service_event = None
            self._in_service = None
            evicted += 1
        evicted += len(self._queue)
        self._queue.clear()
        self._paused = True
        self.monitor.record_queue_change(self.engine.now, 0)
        return evicted

    # ------------------------------------------------------------------
    def _try_start(self) -> None:
        if self._paused or self._in_service is not None or not self._queue:
            return
        job = self._queue.popleft()
        self._in_service = job
        wait = self.engine.now - job.arrival
        self.monitor.total_wait += wait
        self._service_event = self.engine.schedule(job.service_time, self._finish, job)

    def _finish(self, job: _Job) -> None:
        assert self._in_service is job
        self._in_service = None
        self._service_event = None
        mon = self.monitor
        mon.jobs_completed += 1
        mon.total_service += job.service_time
        mon.busy_time += job.service_time
        mon.total_sojourn += self.engine.now - job.arrival
        mon.record_queue_change(self.engine.now, self.queue_length)
        if job.on_complete is not None:
            job.on_complete()
        self._try_start()
