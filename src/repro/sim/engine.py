"""Discrete-event simulation engine.

A minimal, deterministic replacement for the YACSIM toolkit the paper used
(Jump, Rice University, 1993).  The engine owns a simulation clock and an
event calendar (binary heap).  Model code schedules callbacks with
:meth:`Engine.schedule` / :meth:`Engine.schedule_at` and runs the simulation
with :meth:`Engine.run`.

Determinism: events at equal time fire in (priority, insertion order); all
randomness in models must come from seeded generators (:mod:`repro.sim.rng`),
so a simulation is a pure function of its configuration and seed.

Cancellation is lazy (a cancelled event stays heaped until popped) but
*accounted*: the engine tracks the number of cancelled entries still on
the calendar, so :attr:`Engine.pending` reports live events exactly, and
the calendar is compacted — cancelled corpses dropped, heap rebuilt —
whenever they outnumber the live entries.  Timeout-guard workloads that
schedule and immediately cancel far-future events therefore keep the
heap (and every ``heappush`` after them) small.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from ..units import Seconds
from .events import PRIORITY_NORMAL, Event, SimulationError


class Engine:
    """The simulation clock and event calendar."""

    __slots__ = ("_now", "_calendar", "_running", "_events_fired", "_cancelled")

    #: Calendars smaller than this are never compacted (rebuild churn guard).
    _COMPACT_MIN = 64

    def __init__(self, start_time: Seconds = Seconds(0.0)) -> None:
        self._now = Seconds(float(start_time))
        self._calendar: list[Event] = []
        self._running = False
        self._events_fired = 0
        #: Cancelled events still sitting on the calendar.
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> Seconds:
        """Current simulated time (seconds, by convention)."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of *live* (non-cancelled) events still on the calendar."""
        return len(self._calendar) - self._cancelled

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: Seconds,
        action: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``action(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, action, *args, priority=priority)

    def schedule_at(
        self,
        time: Seconds,
        action: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``action(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} before now={self._now!r}"
            )
        event = Event(
            time=time, priority=priority, action=action, args=args, engine=self
        )
        heapq.heappush(self._calendar, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next non-cancelled event.  Returns False when empty."""
        while self._calendar:
            event = heapq.heappop(self._calendar)
            if event.cancelled:
                self._cancelled -= 1
                continue
            # Detach before firing: a late cancel() on an already-fired
            # event must not perturb the live count.
            event.engine = None
            self._now = event.time
            self._events_fired += 1
            event.fire()
            return True
        return False

    def run(
        self, until: Seconds | None = None, max_events: int | None = None
    ) -> Seconds:
        """Run until the calendar drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the final clock value.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, mirroring YACSIM's
        ``simulate(t)``.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._calendar:
                if max_events is not None and fired >= max_events:
                    break
                nxt = self._peek()
                if nxt is None:
                    break
                if until is not None and nxt.time > until:
                    break
                if self.step():
                    fired += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def _peek(self) -> Event | None:
        """Next live event without popping it (drops cancelled heads)."""
        while self._calendar:
            head = self._calendar[0]
            if head.cancelled:
                heapq.heappop(self._calendar)
                self._cancelled -= 1
                continue
            return head
        return None

    def drain(self) -> None:
        """Discard all pending events (used by tests and teardown)."""
        for event in self._calendar:
            event.engine = None
        self._calendar.clear()
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Cancellation accounting (called by Event.cancel)
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Record one cancellation; compact when corpses dominate the heap."""
        self._cancelled += 1
        size = len(self._calendar)
        if size >= self._COMPACT_MIN and self._cancelled * 2 > size:
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify the survivors.

        O(live) — amortized constant per cancellation, since a compaction
        at least halves the calendar and resets the cancelled count.
        Safe at any point outside :func:`heapq` calls: events carry a
        total order, so ``heapify`` restores the exact pop sequence.
        """
        self._calendar = [e for e in self._calendar if not e.cancelled]
        heapq.heapify(self._calendar)
        self._cancelled = 0
