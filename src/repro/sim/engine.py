"""Discrete-event simulation engine.

A minimal, deterministic replacement for the YACSIM toolkit the paper used
(Jump, Rice University, 1993).  The engine owns a simulation clock and an
event calendar (binary heap).  Model code schedules callbacks with
:meth:`Engine.schedule` / :meth:`Engine.schedule_at` and runs the simulation
with :meth:`Engine.run`.

Determinism: events at equal time fire in (priority, insertion order); all
randomness in models must come from seeded generators (:mod:`repro.sim.rng`),
so a simulation is a pure function of its configuration and seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from ..units import Seconds
from .events import PRIORITY_NORMAL, Event, SimulationError


class Engine:
    """The simulation clock and event calendar."""

    def __init__(self, start_time: Seconds = Seconds(0.0)) -> None:
        self._now = Seconds(float(start_time))
        self._calendar: list[Event] = []
        self._running = False
        self._events_fired = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> Seconds:
        """Current simulated time (seconds, by convention)."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of events still on the calendar (including cancelled)."""
        return len(self._calendar)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: Seconds,
        action: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``action(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, action, *args, priority=priority)

    def schedule_at(
        self,
        time: Seconds,
        action: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``action(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} before now={self._now!r}"
            )
        event = Event(time=time, priority=priority, action=action, args=args)
        heapq.heappush(self._calendar, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next non-cancelled event.  Returns False when empty."""
        while self._calendar:
            event = heapq.heappop(self._calendar)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_fired += 1
            event.fire()
            return True
        return False

    def run(
        self, until: Seconds | None = None, max_events: int | None = None
    ) -> Seconds:
        """Run until the calendar drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the final clock value.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, mirroring YACSIM's
        ``simulate(t)``.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._calendar:
                if max_events is not None and fired >= max_events:
                    break
                nxt = self._peek()
                if nxt is None:
                    break
                if until is not None and nxt.time > until:
                    break
                if self.step():
                    fired += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def _peek(self) -> Event | None:
        """Next live event without popping it (drops cancelled heads)."""
        while self._calendar:
            head = self._calendar[0]
            if head.cancelled:
                heapq.heappop(self._calendar)
                continue
            return head
        return None

    def drain(self) -> None:
        """Discard all pending events (used by tests and teardown)."""
        self._calendar.clear()
