"""Runtime invariant contracts for the paper's stated properties.

The paper makes exact structural claims — half occupancy (mapped length is
exactly 1/2), the partition-count rule ``p >= 2*(n+1)``, unique ownership,
and boundary preservation under repartitioning — that the reproduction's
figures silently depend on.  This module turns those claims into *runtime
contracts*: lightweight decorators that re-validate an object's invariants
after every mutating operation, and pre/post-condition helpers for pure
functions.

Contracts are **on by default** (so every pytest run exercises them) and
disabled for performance work by setting ``REPRO_CONTRACTS=off`` in the
environment *before the package is imported*.  When disabled at import
time the decorators return the undecorated function, so the hot path pays
zero overhead — not even a flag check.  When enabled, tests may still
toggle checking dynamically with :func:`set_contracts` (used to measure
overhead and to test the toggle itself).

Usage::

    class Thing:
        @checks_invariants
        def mutate(self) -> None: ...
        def check_invariants(self) -> None: ...   # raises on breach

    @checks_invariants
    def grow(...): ...

    def compute(...):
        require(x >= 0, "negative input {}", x)
        ...
        ensure(total == HALF, "half-occupancy broken: {} != {}", total, HALF)

A breached contract raises :class:`ContractViolation` (a subclass of
``AssertionError``) chaining the underlying validator error, so test
failures show both the operation that broke the invariant and the exact
breach.
"""

from __future__ import annotations

import functools
import os
from typing import Any, Callable, TypeVar

_F = TypeVar("_F", bound=Callable[..., Any])

#: Environment variable controlling the contract layer.
ENV_VAR = "REPRO_CONTRACTS"


class ContractViolation(AssertionError):
    """An operation violated one of the paper's stated invariants."""


def _env_disabled() -> bool:
    """True when ``REPRO_CONTRACTS`` requests the zero-overhead mode."""
    return os.environ.get(ENV_VAR, "on").strip().lower() in (
        "off", "0", "false", "no", "disabled",
    )


#: Frozen at import: when True, decorators are identity functions.
COMPILED_OUT = _env_disabled()

_enabled = not COMPILED_OUT


def contracts_enabled() -> bool:
    """Whether contracts are currently being checked."""
    return _enabled and not COMPILED_OUT


def set_contracts(enabled: bool) -> bool:
    """Dynamically enable/disable checking; returns the previous state.

    Has no effect when contracts were compiled out at import time
    (``REPRO_CONTRACTS=off``): the wrappers no longer exist, so there is
    nothing to re-enable.  Tests use this to exercise both sides of the
    toggle without re-importing the package.
    """
    # The toggle *is* process-global by design: it models the environment
    # switch, and COMPILED_OUT keeps the zero-overhead path honest.
    global _enabled  # repro-lint: disable=RPL009
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def require(condition: bool, message: str, *args: Any) -> None:
    """Precondition helper: raise :class:`ContractViolation` unless true."""
    if _enabled and not condition:
        raise ContractViolation("precondition failed: " + message.format(*args))


def ensure(condition: bool, message: str, *args: Any) -> None:
    """Postcondition helper: raise :class:`ContractViolation` unless true."""
    if _enabled and not condition:
        raise ContractViolation("postcondition failed: " + message.format(*args))


def checks_invariants(method: _F) -> _F:
    """After ``method`` returns, call ``self.check_invariants()``.

    The decorated method's class must expose a ``check_invariants()`` (or
    ``check_consistency()``) validator that raises on breach.  Exceptions
    from the validator are re-raised as :class:`ContractViolation` naming
    the mutating operation, with the original error chained.
    """
    if COMPILED_OUT:
        return method

    @functools.wraps(method)
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        result = method(self, *args, **kwargs)
        if _enabled:
            # Single attribute probe on the hot path; validators may lean
            # on generation-counter caches of derived state (e.g. the
            # interval's segments cache) to keep re-validation cheap.
            validate = getattr(self, "check_invariants", None) or self.check_consistency
            try:
                validate()
            except ContractViolation:
                raise
            except Exception as exc:
                raise ContractViolation(
                    f"{type(self).__name__}.{method.__name__} broke an "
                    f"invariant: {exc}"
                ) from exc
        return result

    return wrapper  # type: ignore[return-value]


def preserves(
    capture: Callable[[Any], Any],
    message: str = "state not preserved",
) -> Callable[[_F], _F]:
    """Decorator factory: assert ``capture(self)`` is unchanged by the call.

    ``capture`` snapshots whatever must survive the operation (for
    :meth:`repro.core.interval.MappedInterval.repartition` that is every
    server's mapped segments — the paper's "further partitioning ... does
    not move any existing load").  The snapshots are compared with ``==``.
    """
    def decorate(method: _F) -> _F:
        if COMPILED_OUT:
            return method

        @functools.wraps(method)
        def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
            if not _enabled:
                return method(self, *args, **kwargs)
            before = capture(self)
            result = method(self, *args, **kwargs)
            after = capture(self)
            if before != after:
                raise ContractViolation(
                    f"{type(self).__name__}.{method.__name__}: {message} "
                    f"(before={before!r}, after={after!r})"
                )
            return result

        return wrapper  # type: ignore[return-value]

    return decorate


def invariant(
    predicate: Callable[[Any], bool],
    message: str,
) -> Callable[[_F], _F]:
    """Decorator factory: assert ``predicate(self)`` after the method.

    For invariants that are not part of an object's own
    ``check_invariants`` — e.g. the cluster simulation's "every file set
    is owned by exactly one registered server".
    """
    def decorate(method: _F) -> _F:
        if COMPILED_OUT:
            return method

        @functools.wraps(method)
        def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
            result = method(self, *args, **kwargs)
            if _enabled and not predicate(self):
                raise ContractViolation(
                    f"{type(self).__name__}.{method.__name__}: {message}"
                )
            return result

        return wrapper  # type: ignore[return-value]

    return decorate
