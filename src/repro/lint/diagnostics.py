"""Diagnostics and suppression handling for ``repro-lint``.

A :class:`Diagnostic` is one finding: a rule ID, a location, a message,
and the rule's autofix hint.  Suppressions are source comments:

``# repro-lint: disable=RPL004``
    silences the listed rule IDs (comma-separated, or ``all``) on that
    line — place it on the offending line, with a justification;
``# repro-lint: disable-file=RPL004``
    silences the listed rule IDs for the whole file.

Every suppression should carry a justification in the surrounding code;
`CONTRIBUTING.md` documents the policy.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_DISABLE_LINE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")
_DISABLE_FILE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One static-analysis finding."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    hint: str = ""

    def render(self) -> str:
        """The finding as one ``path:line:col: ID message`` console line."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if self.hint:
            text += f"  [fix: {self.hint}]"
        return text


def _parse_ids(blob: str) -> set[str]:
    return {part.strip().upper() for part in blob.split(",") if part.strip()}


class SuppressionIndex:
    """Per-file index of ``repro-lint: disable`` comments."""

    def __init__(self, lines: list[str]) -> None:
        """Scan ``lines`` (the file's source lines) for suppressions."""
        self.by_line: dict[int, set[str]] = {}
        self.file_wide: set[str] = set()
        for lineno, text in enumerate(lines, start=1):
            match = _DISABLE_FILE.search(text)
            if match:
                self.file_wide |= _parse_ids(match.group(1))
                continue
            match = _DISABLE_LINE.search(text)
            if match:
                self.by_line[lineno] = _parse_ids(match.group(1))

    def suppresses(self, diagnostic: Diagnostic) -> bool:
        """Whether ``diagnostic`` is silenced by a comment."""
        for ids in (self.file_wide, self.by_line.get(diagnostic.line, set())):
            if "ALL" in ids or diagnostic.rule_id in ids:
                return True
        return False
