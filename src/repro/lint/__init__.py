"""``repro-lint``: codebase-aware static analysis for the reproduction.

Generic linters cannot know that this repository's correctness rests on
bit-for-bit deterministic simulation and exact integer tick arithmetic.
This package encodes those repository-specific invariants as AST rules
(``RPL0xx``) with a console entry point::

    repro-lint src tests benchmarks examples
    repro-lint --list-rules
    repro-lint --explain RPL002

See :mod:`repro.lint.rules` for the catalogue and
:mod:`repro.contracts` for the runtime half of the same invariants.
"""

from .diagnostics import Diagnostic, SuppressionIndex
from .engine import lint_file, lint_paths, lint_project, lint_source
from .rules import REGISTRY, FlowRule, Rule, all_flow_rules, all_rules

__all__ = [
    "Diagnostic",
    "SuppressionIndex",
    "Rule",
    "FlowRule",
    "REGISTRY",
    "all_rules",
    "all_flow_rules",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
]
