"""Exact-arithmetic rules: interval/tick math stays in integers.

``repro.core.interval`` holds the half-occupancy invariant *exactly*:
shares are integer ticks summing to exactly ``HALF`` and every check is
tolerance-free.  That only works while tick arithmetic never passes
through floats.  These rules flag the three ways float contamination has
crept into similar codebases: exact ``==`` on computed floats, flooring
a true division with ``int(...)`` (wrong for values a ULP below an
integer), and casting tick quantities to float.
"""

from __future__ import annotations

import ast

from . import Rule, dotted_name, register

#: Float literals exempt from RPL004: exact sentinels used for "unset",
#: "whole", and sign flips, which are representable and intentional.
_EXACT_SENTINELS = (0.0, 1.0, -1.0)


def _is_float_literal(node: ast.expr) -> bool:
    """A non-sentinel float constant (including ``-0.5`` style negations)."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value not in _EXACT_SENTINELS
    )


def _contains_true_division(node: ast.expr) -> bool:
    """Whether the expression tree contains a ``/`` (true division)."""
    return any(
        isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div)
        for sub in ast.walk(node)
    )


def _is_float_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    )


@register
class FloatEquality(Rule):
    """RPL004: no exact ``==``/``!=`` against computed float values.

    Applies to ``src/repro/``.  An exact comparison against a float
    literal (other than the 0.0/±1.0 sentinels), a ``float(...)`` cast,
    or a true-division result is almost always a latent tick-boundary
    bug: the comparison silently flips when an upstream computation
    changes by one ULP.  Compare integers (ticks), use inequalities, or
    ``math.isclose`` with an explicit tolerance.
    """

    id = "RPL004"
    title = "exact float equality on a computed value"
    hint = "compare integer ticks, use an inequality, or math.isclose(...)"

    @classmethod
    def applies_to(cls, ctx) -> bool:
        """Everywhere; the tree policy exempts tests (exact floats on purpose)."""
        return True

    def visit_Compare(self, node: ast.Compare) -> None:
        """Flag Eq/NotEq comparisons with float-typed operand forms."""
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if (
                    _is_float_literal(side)
                    or _is_float_call(side)
                    or _contains_true_division(side)
                ):
                    self.report(
                        node,
                        "exact equality on a float value is one ULP away "
                        "from flipping",
                    )
                    break
        self.generic_visit(node)


@register
class IntOfTrueDivision(Rule):
    """RPL005: ``int(a / b)`` must be ``a // b``.

    ``int(a / b)`` rounds through a float: for large tick values the
    quotient ``a / b`` can land one ULP below (or above) the exact
    integer and the cast truncates to the wrong partition index.  Floor
    division stays exact for arbitrary-precision ints.
    """

    id = "RPL005"
    title = "int() applied to a true division"
    hint = "replace int(a / b) with a // b (exact for integers)"

    def visit_Call(self, node: ast.Call) -> None:
        """Flag ``int(<expr / expr>)``."""
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "int"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.BinOp)
            and isinstance(node.args[0].op, ast.Div)
        ):
            self.report(node, "int(a / b) rounds through a float")
        self.generic_visit(node)


#: Identifier fragments that denote integer tick quantities in repro.core.
_TICK_NAME_FRAGMENTS = ("tick", "psize", "prefix")
_TICK_CONSTANTS = ("RESOLUTION", "HALF")


def _names_ticks(node: ast.expr) -> str | None:
    """The offending identifier when ``node`` names a tick quantity."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    if name in _TICK_CONSTANTS:
        return name
    lowered = name.lower()
    if any(fragment in lowered for fragment in _TICK_NAME_FRAGMENTS):
        return name
    return None


@register
class FloatCastOnTicks(Rule):
    """RPL006: no ``float(...)`` cast of tick quantities in ``repro.core``.

    Tick counts are exact integers up to ``2**48``; a float cast is only
    lossless below ``2**53`` and any arithmetic after the cast leaves
    the exact domain the interval invariants are checked in.  Convert at
    the edge (``share_fraction``) and keep core math integral.
    """

    id = "RPL006"
    title = "float() cast of a tick quantity in repro.core"
    hint = "keep tick math integral; convert to fractions only at the API edge"

    @classmethod
    def applies_to(cls, ctx) -> bool:
        """Exact-arithmetic land only: ``src/repro/core/``."""
        return ctx.in_core

    def visit_Call(self, node: ast.Call) -> None:
        """Flag ``float(<tick-named expression>)``."""
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "float"
            and len(node.args) == 1
        ):
            name = _names_ticks(node.args[0])
            if name is not None:
                self.report(node, f"float() cast of tick quantity {name!r}")
        self.generic_visit(node)
