"""Simulation-hygiene rules: state stays where the simulator can replay it.

A discrete-event simulation is only replayable when all mutable state
lives in objects created per-run.  Mutable default arguments and
module-level ``global`` mutation leak state *across* runs (the second
simulation in a process starts from the first one's leftovers), and bare
``except:`` silently swallows the very invariant violations the contract
layer exists to surface.
"""

from __future__ import annotations

import ast

from . import Rule, register

_MUTABLE_CALLS = ("list", "dict", "set", "defaultdict", "deque", "Counter")


def _is_mutable_literal(node: ast.expr) -> bool:
    """Whether a default-argument expression is a shared mutable object."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


@register
class MutableDefaultArgument(Rule):
    """RPL007: no mutable default arguments.

    A ``def f(buffer=[])`` default is created once at import and shared
    by every call — state from one simulated run leaks into the next,
    which is unreproducible *and* order-dependent across tests.  Default
    to ``None`` and create the container inside the function.
    """

    id = "RPL007"
    title = "mutable default argument"
    hint = "default to None and create the container in the body"

    def _check_args(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                self.report(
                    default,
                    f"mutable default in {node.name}() is shared across calls",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Check positional and keyword-only defaults."""
        self._check_args(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Check async defs the same way."""
        self._check_args(node)
        self.generic_visit(node)


@register
class BareExcept(Rule):
    """RPL008: no bare ``except:`` handlers.

    A bare ``except:`` catches ``SystemExit``, ``KeyboardInterrupt``,
    and — fatally for this repo — :class:`repro.contracts.ContractViolation`,
    turning an invariant breach into silent corruption of the figures.
    Catch the narrowest exception that the handler can actually handle.
    """

    id = "RPL008"
    title = "bare except handler"
    hint = "catch a specific exception type (never ContractViolation)"

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        """Flag handlers with no exception type."""
        if node.type is None:
            self.report(node, "bare except: swallows contract violations")
        self.generic_visit(node)


@register
class GlobalMutation(Rule):
    """RPL009: no ``global`` statements in production code.

    Module-level state mutated from function bodies survives across
    simulation runs in the same process; two back-to-back runs with the
    same seed then disagree, violating the determinism contract.  Hold
    run state on the simulation object (or thread it explicitly).
    """

    id = "RPL009"
    title = "global statement in production code"
    hint = "move the state onto the owning object or pass it explicitly"

    @classmethod
    def applies_to(cls, ctx) -> bool:
        """Everywhere; the tree policy relaxes this for test fixtures."""
        return True

    def visit_Global(self, node: ast.Global) -> None:
        """Flag every ``global`` statement."""
        self.report(
            node,
            f"global mutation of {', '.join(node.names)} leaks state across runs",
        )
        self.generic_visit(node)
