"""Determinism rules: all randomness flows from named, seeded streams.

The simulation's claim to be "a pure function of (config, seed)" — and
with it every figure in EXPERIMENTS.md — dies the moment any production
code reads the wall clock, the process RNG, or an unordered container's
iteration order.  These rules mechanically enforce the repository policy
that every random draw comes from :class:`repro.sim.rng.StreamFactory`
and every iteration that can reach the event calendar is ordered.
"""

from __future__ import annotations

import ast

from . import Rule, dotted_name, register

#: Callable suffixes that read wall-clock time or ambient entropy.
_BANNED_CALL_SUFFIXES: dict[tuple[str, ...], str] = {
    ("time", "time"): "wall-clock read",
    ("time", "time_ns"): "wall-clock read",
    ("datetime", "now"): "wall-clock read",
    ("datetime", "utcnow"): "wall-clock read",
    ("datetime", "today"): "wall-clock read",
    ("date", "today"): "wall-clock read",
    ("os", "urandom"): "ambient entropy",
    ("uuid", "uuid1"): "ambient entropy",
    ("uuid", "uuid4"): "ambient entropy",
}

#: Modules whose import alone signals nondeterminism in production code.
_BANNED_MODULES = {"random", "secrets"}


@register
class NoWallClockOrGlobalRandom(Rule):
    """RPL001: no ``random``/``secrets`` imports or wall-clock/entropy calls.

    Applies to ``src/repro/`` outside ``sim/rng.py``.  A single
    ``random.random()`` or ``time.time()`` in model code silently breaks
    bit-for-bit replay: two runs with the same seed diverge, and the
    mean-field predictions the reproduction is checked against no longer
    describe the simulated dynamics.
    """

    id = "RPL001"
    title = "wall-clock or global-RNG use in production code"
    hint = "draw from a repro.sim.rng.StreamFactory stream threaded from the config seed"

    @classmethod
    def applies_to(cls, ctx) -> bool:
        """Everywhere the tree policy allows; sim/rng.py itself is exempt."""
        return not ctx.is_rng_module

    def visit_Import(self, node: ast.Import) -> None:
        """Flag ``import random`` / ``import secrets``."""
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in _BANNED_MODULES:
                self.report(node, f"import of nondeterministic module {root!r}")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Flag ``from random import ...`` / ``from secrets import ...``."""
        root = (node.module or "").split(".")[0]
        if root in _BANNED_MODULES and node.level == 0:
            self.report(node, f"import from nondeterministic module {root!r}")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        """Flag wall-clock and ambient-entropy calls."""
        chain = dotted_name(node.func)
        if len(chain) >= 2:
            label = _BANNED_CALL_SUFFIXES.get(chain[-2:])
            if label is not None:
                self.report(
                    node,
                    f"{label} via {'.'.join(chain)}() makes the run "
                    "irreproducible",
                )
        self.generic_visit(node)


@register
class RngOutsideStreamFactory(Rule):
    """RPL002: every ``np.random`` generator must come from ``StreamFactory``.

    Applies to ``src/repro/`` outside ``sim/rng.py``.  Ad-hoc
    ``np.random.default_rng(seed)`` calls fracture the seed space: two
    components seeded 0 draw identical sequences (hidden correlation),
    and adding a component shifts every later draw (run-to-run drift).
    Named streams derived from one root seed have neither problem.
    """

    id = "RPL002"
    title = "np.random generator created outside repro.sim.rng"
    hint = "use StreamFactory(seed).stream('component-name') from repro.sim.rng"

    @classmethod
    def applies_to(cls, ctx) -> bool:
        """Everywhere the tree policy allows; sim/rng.py itself is exempt."""
        return not ctx.is_rng_module

    def visit_Call(self, node: ast.Call) -> None:
        """Flag any ``np.random.*()`` / ``numpy.random.*()`` call."""
        chain = dotted_name(node.func)
        if len(chain) >= 3 and chain[0] in ("np", "numpy") and chain[1] == "random":
            self.report(
                node,
                f"{'.'.join(chain)}() bypasses the named-stream discipline",
            )
        self.generic_visit(node)


def _is_set_expression(node: ast.expr) -> bool:
    """Whether ``node`` evaluates to a set (statically recognizable forms)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union", "intersection", "difference", "symmetric_difference"
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # ``a | b`` etc. is only a set when the operands are; recurse.
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


@register
class UnorderedIteration(Rule):
    """RPL003: no iteration over unordered set expressions.

    Set iteration order depends on the process hash seed
    (``PYTHONHASHSEED``) for strings, so a loop over ``set(...)`` that
    schedules events, assigns file sets, or builds output sequences
    produces different results on different runs even with a fixed
    simulation seed.  Wrap the expression in ``sorted(...)``.
    """

    id = "RPL003"
    title = "iteration over an unordered set expression"
    hint = "wrap the set in sorted(...) to fix the traversal order"

    def _check_iterable(self, node: ast.expr) -> None:
        if _is_set_expression(node):
            self.report(
                node,
                "iterating an unordered set: order varies with PYTHONHASHSEED",
            )

    def visit_For(self, node: ast.For) -> None:
        """Flag ``for x in <set-expr>``."""
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        """Flag set expressions driving comprehensions."""
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        """Flag ``list(set(...))`` / ``tuple(set(...))`` / ``enumerate(set(...))``."""
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "enumerate")
            and node.args
        ):
            self._check_iterable(node.args[0])
        self.generic_visit(node)
