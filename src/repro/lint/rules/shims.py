"""RPL011 — imports of documented compatibility-shim modules.

When a module moves (``cluster/faults.py`` → ``membership/faults.py``),
the old path stays behind as a one-line re-export shim so external
callers keep working.  In-repo code, however, must import the canonical
home: every shim import is a dependency edge pointing at the *old*
layering, and the shims can never be retired while the repo itself still
feeds them.  This rule pins the migration — new code that reaches for a
shim path is caught at lint time rather than in review.

The shim table below is the single source of truth; retiring a shim
means deleting its file *and* its row here.
"""

from __future__ import annotations

import ast

from . import Rule, register

#: Documented re-export shims: old import path -> canonical module.
SHIM_MODULES = {
    "repro.cluster.faults": "repro.membership.faults",
}


@register
class ShimImport(Rule):
    """RPL011: in-repo code must not import through re-export shims.

    A shim exists for *external* compatibility only.  Importing it from
    inside the repo re-creates the dependency the move was meant to
    dissolve and keeps the shim permanently load-bearing.  Import the
    canonical module named in the diagnostic instead.
    """

    id = "RPL011"
    title = "import through a compatibility shim module"
    hint = "import the canonical module the shim re-exports"

    def _flag(self, node: ast.stmt, shim: str) -> None:
        self.report(
            node,
            f"{shim} is a compatibility shim — import "
            f"{SHIM_MODULES[shim]} instead",
        )

    def _relative_base(self, level: int) -> list[str] | None:
        """Package parts a ``from .`` import resolves against, or None."""
        module_path = getattr(self.ctx, "module_path", None)
        if not module_path:
            return None
        # A plain module resolves relative to its package; an
        # __init__.py relative to itself — both drop the last segment
        # ("mod" or the literal "__init__").
        parts = ["repro", *module_path[: -len(".py")].split("/")][:-1]
        drop = level - 1
        if drop > len(parts):
            return None
        return parts[: len(parts) - drop] if drop else parts

    def visit_Import(self, node: ast.Import) -> None:
        """Flag ``import repro.cluster.faults``-style shim imports."""
        for alias in node.names:
            if alias.name in SHIM_MODULES:
                self._flag(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Flag ``from <shim> import ...`` in absolute or relative form."""
        if node.level == 0:
            base = node.module.split(".") if node.module else []
        else:
            parts = self._relative_base(node.level)
            if parts is None:
                self.generic_visit(node)
                return
            base = [*parts, *(node.module.split(".") if node.module else [])]
        target = ".".join(base)
        if target in SHIM_MODULES:
            self._flag(node, target)
        else:
            # ``from repro.cluster import faults`` imports the shim too.
            for alias in node.names:
                candidate = f"{target}.{alias.name}" if target else alias.name
                if candidate in SHIM_MODULES:
                    self._flag(node, candidate)
        self.generic_visit(node)
