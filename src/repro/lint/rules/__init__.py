"""The ``repro-lint`` rule registry.

Each rule is a small :class:`ast.NodeVisitor` subclass with a stable ID
(``RPL0xx``), a one-line title, a docstring explaining the invariant it
protects and why, and an autofix ``hint``.  Rules register themselves via
:func:`register`; :func:`all_rules` returns them in ID order.

Rule catalogue
--------------
- ``RPL001`` — wall-clock/global-RNG calls in production code
- ``RPL002`` — ``np.random`` used outside ``repro.sim.rng``
- ``RPL003`` — iteration over unordered set expressions
- ``RPL004`` — exact float equality on computed values
- ``RPL005`` — ``int(a / b)`` instead of floor division
- ``RPL006`` — ``float()`` cast on tick quantities in ``repro.core``
- ``RPL007`` — mutable default argument
- ``RPL008`` — bare ``except:``
- ``RPL009`` — ``global`` statement in production code
- ``RPL011`` — import through a compatibility shim module

Interprocedural (flow) rules — see :mod:`repro.lint.flow`:

- ``RPL101`` — RNG-stream provenance across function/class boundaries
- ``RPL102`` — ticks/seconds unit consistency across calls and returns
- ``RPL103`` — mutation of contract-protected state outside mutators
- ``RPL104`` — ambient state read reachable from a seeded entry point
- ``RPL105`` — telemetry pair split by an exception path
- ``RPL106`` — protected state written before a reachable raise

Concurrency-safety (flow) rules — the csan layer guarding
:mod:`repro.sweep` and every future parallel subsystem:

- ``RPL107`` — fork-divergent state reachable from a worker entry
- ``RPL108`` — unpicklable value crossing a process boundary
- ``RPL109`` — completion-order-dependent reduce over worker results
- ``RPL110`` — worker randomness not derived from the per-cell seed
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic

#: ID -> rule class (per-file ``Rule`` and whole-program ``FlowRule``),
#: populated by :func:`register`.
REGISTRY: dict[str, type] = {}


def register(rule_cls):
    """Class decorator: add ``rule_cls`` to the registry (IDs unique)."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> list[type["Rule"]]:
    """Every registered per-file rule class, sorted by ID."""
    return [
        REGISTRY[rule_id]
        for rule_id in sorted(REGISTRY)
        if issubclass(REGISTRY[rule_id], Rule)
    ]


def all_flow_rules() -> list[type["FlowRule"]]:
    """Every registered whole-program rule class, sorted by ID."""
    return [
        REGISTRY[rule_id]
        for rule_id in sorted(REGISTRY)
        if issubclass(REGISTRY[rule_id], FlowRule)
    ]


class Rule(ast.NodeVisitor):
    """Base class for lint rules: a visitor that accumulates diagnostics."""

    #: Stable rule identifier, e.g. ``"RPL001"``.
    id: str = ""
    #: One-line summary shown by ``repro-lint --list-rules``.
    title: str = ""
    #: Autofix hint appended to every diagnostic.
    hint: str = ""

    def __init__(self, ctx) -> None:
        """``ctx`` is the :class:`~repro.lint.engine.FileContext` under lint."""
        self.ctx = ctx
        self.diagnostics: list[Diagnostic] = []

    @classmethod
    def applies_to(cls, ctx) -> bool:
        """Whether this rule runs on ``ctx`` (path-based layer scoping)."""
        return True

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding anchored at ``node``."""
        self.diagnostics.append(
            Diagnostic(
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule_id=self.id,
                message=message,
                hint=self.hint,
            )
        )


class FlowRule:
    """Base class for whole-program (interprocedural) lint rules.

    A flow rule receives a :class:`~repro.lint.flow.symbols.Project`
    (every package file of the run, with symbol tables) and returns its
    findings from :meth:`run`.  Unlike per-file rules there is no
    visitor protocol: each analysis drives the shared data-flow engine
    in :mod:`repro.lint.flow.dataflow` however it needs to.
    """

    #: Stable rule identifier, e.g. ``"RPL101"``.
    id: str = ""
    #: One-line summary shown by ``repro-lint --list-rules``.
    title: str = ""
    #: Autofix hint appended to every diagnostic.
    hint: str = ""

    def __init__(self, project) -> None:
        """``project`` is a :class:`~repro.lint.flow.symbols.Project`."""
        self.project = project
        self.diagnostics: list[Diagnostic] = []

    def run(self) -> list[Diagnostic]:
        """Analyze the project; returns (and stores) the findings."""
        raise NotImplementedError

    def report(self, path: str, line: int, col: int, message: str) -> None:
        """Record a finding at an explicit location."""
        self.diagnostics.append(
            Diagnostic(
                path=path,
                line=line,
                col=col,
                rule_id=self.id,
                message=message,
                hint=self.hint,
            )
        )


def dotted_name(node: ast.AST) -> tuple[str, ...]:
    """The dotted chain of an attribute/name expression, outermost first.

    ``np.random.default_rng`` -> ``("np", "random", "default_rng")``;
    returns ``()`` for anything that is not a pure Name/Attribute chain.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


# Import rule modules for their registration side effects.  The flow
# modules import back into this package (FlowRule, dotted_name), which is
# safe because everything they need is defined above this line.
from . import arithmetic, determinism, hygiene, shims  # noqa: E402,F401
from ..flow import (  # noqa: E402,F401
    fork_state,
    mutation,
    pickle_safety,
    purity,
    reduce_order,
    rng_provenance,
    rng_split,
    telemetry_gap,
    torn_state,
    units,
)
