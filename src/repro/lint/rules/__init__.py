"""The ``repro-lint`` rule registry.

Each rule is a small :class:`ast.NodeVisitor` subclass with a stable ID
(``RPL0xx``), a one-line title, a docstring explaining the invariant it
protects and why, and an autofix ``hint``.  Rules register themselves via
:func:`register`; :func:`all_rules` returns them in ID order.

Rule catalogue
--------------
- ``RPL001`` — wall-clock/global-RNG calls in production code
- ``RPL002`` — ``np.random`` used outside ``repro.sim.rng``
- ``RPL003`` — iteration over unordered set expressions
- ``RPL004`` — exact float equality on computed values
- ``RPL005`` — ``int(a / b)`` instead of floor division
- ``RPL006`` — ``float()`` cast on tick quantities in ``repro.core``
- ``RPL007`` — mutable default argument
- ``RPL008`` — bare ``except:``
- ``RPL009`` — ``global`` statement in production code
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic

#: ID -> rule class, populated by :func:`register`.
REGISTRY: dict[str, type["Rule"]] = {}


def register(rule_cls: type["Rule"]) -> type["Rule"]:
    """Class decorator: add ``rule_cls`` to the registry (IDs unique)."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> list[type["Rule"]]:
    """Every registered rule class, sorted by ID."""
    return [REGISTRY[rule_id] for rule_id in sorted(REGISTRY)]


class Rule(ast.NodeVisitor):
    """Base class for lint rules: a visitor that accumulates diagnostics."""

    #: Stable rule identifier, e.g. ``"RPL001"``.
    id: str = ""
    #: One-line summary shown by ``repro-lint --list-rules``.
    title: str = ""
    #: Autofix hint appended to every diagnostic.
    hint: str = ""

    def __init__(self, ctx) -> None:
        """``ctx`` is the :class:`~repro.lint.engine.FileContext` under lint."""
        self.ctx = ctx
        self.diagnostics: list[Diagnostic] = []

    @classmethod
    def applies_to(cls, ctx) -> bool:
        """Whether this rule runs on ``ctx`` (path-based layer scoping)."""
        return True

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding anchored at ``node``."""
        self.diagnostics.append(
            Diagnostic(
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule_id=self.id,
                message=message,
                hint=self.hint,
            )
        )


def dotted_name(node: ast.AST) -> tuple[str, ...]:
    """The dotted chain of an attribute/name expression, outermost first.

    ``np.random.default_rng`` -> ``("np", "random", "default_rng")``;
    returns ``()`` for anything that is not a pure Name/Attribute chain.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


# Import rule modules for their registration side effects.
from . import arithmetic, determinism, hygiene  # noqa: E402,F401
