"""Per-directory lint policy: which rules run in which tree.

Rules carry their *semantic* scope themselves (``applies_to`` — e.g.
RPL006 only makes sense in ``repro.core``, and ``sim/rng.py`` is exempt
from the RNG rules by design).  This module holds the *organizational*
scope: which repository trees opt out of which rules, in one documented
table instead of scattered conditionals.

Exclusion rationale
-------------------
``src``
    Production code gets every rule.
``examples``
    Examples are documentation that executes — they model the determinism
    discipline (RPL001/RPL002 apply) and get the full rule set.
``tests`` / ``benchmarks``
    - RPL001/RPL002: test harnesses and benchmarks legitimately use the
      wall clock (timing) and ad-hoc RNGs (fixture noise).
    - RPL004: tests assert exact floats on purpose (determinism checks).
    - RPL009: fixtures occasionally use module-level state.
``other``
    Anything outside the known trees (scratch files, tooling) is held to
    the same relaxed bar as tests.

Flow rules (RPL1xx) are unaffected: they analyze only files that map
into the ``repro`` package, which are all in ``src``.
"""

from __future__ import annotations

from pathlib import PurePosixPath

#: Rules that presume production-code discipline.
_PRODUCTION_ONLY = frozenset({"RPL001", "RPL002", "RPL004", "RPL009"})

#: tree name -> rule IDs excluded in that tree.  Keep the docstring's
#: rationale section in sync when editing.
EXCLUSIONS: dict[str, frozenset] = {
    "src": frozenset(),
    "examples": frozenset(),
    "tests": _PRODUCTION_ONLY,
    "benchmarks": _PRODUCTION_ONLY,
    "other": _PRODUCTION_ONLY,
}

_KNOWN_TREES = frozenset(EXCLUSIONS) - {"other"}


def tree_of(path: str) -> str:
    """The policy tree a path belongs to (``"other"`` when unknown)."""
    parts = PurePosixPath(str(path).replace("\\", "/")).parts
    for part in parts:
        if part in _KNOWN_TREES:
            return part
    return "other"


def excluded_rules(path: str) -> frozenset:
    """Rule IDs the policy disables for ``path``."""
    return EXCLUSIONS[tree_of(path)]
