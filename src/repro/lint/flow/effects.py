"""Interprocedural effect-and-purity summaries over the call graph.

The determinism story of this repository rests on every seeded run being
a pure function of ``(scenario, seed)``.  The per-file rules catch the
obvious impurities (RPL001 wall clock, RPL002 ad-hoc RNGs, RPL003 set
iteration), but cross-function effects — a helper three calls below
``Scenario.run_cluster`` quietly reading ``os.environ``, a mutator that
tears contract state on its exception path, a fault driver that emits
half of a paired telemetry protocol before raising — need a *summary* of
what each function does that composes across the call graph.

This module computes one :class:`EffectSummary` per function:

- **ambient reads** — ``os.environ``, wall-clock calls, global-RNG
  draws, and reads of module-level globals that some function mutates
  (``global`` statement); each with its source location;
- **self writes** — attributes the function stores on ``self``
  (including subscript stores, augmented assigns, and ``del``);
- **emissions** — ``sink.emit(Record(...))`` sites whose argument
  resolves to a :class:`~repro.runtime.telemetry.TelemetryRecord`
  subclass, in source order;
- **head raise** — whether the function validates-then-raises before
  performing any effect (the shape of a guard like
  ``MembershipRoster.commission``);
- **unordered iterations** — loops over expressions that are statically
  sets, whose iteration order escapes into whatever the loop does.

Summaries are then propagated over :class:`~repro.lint.flow.callgraph.
CallGraph` edges to a fixpoint: ``all_reads`` closes ambient reads over
every resolvable callee, and ``all_self_writes`` closes self-attribute
writes over *intra-class* calls (``self.repartition()`` inside
``add_server`` writes whatever ``repartition`` writes).  The three
consuming rules are :mod:`~repro.lint.flow.purity` (RPL104),
:mod:`~repro.lint.flow.telemetry_gap` (RPL105), and
:mod:`~repro.lint.flow.torn_state` (RPL106); one analysis instance is
shared per project so the linter builds the graph once.

Everything here is positive evidence only: a call that cannot be
resolved, a receiver whose class is unknown, or a record argument that
is not a literal constructor contributes *nothing*, never a guess.
"""

from __future__ import annotations

import ast
import weakref
from dataclasses import dataclass, field

from ..rules import dotted_name
from .callgraph import CallGraph, FunctionNode
from .symbols import ClassInfo, Module, Project

#: Fully qualified callables that read the wall clock.
WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Module prefixes whose draws use interpreter-global RNG state.
GLOBAL_RNG_PREFIXES = ("random.", "numpy.random.")


@dataclass(frozen=True, order=True)
class AmbientRead:
    """One read of process-ambient state inside a function body."""

    kind: str    #: ``environ`` / ``wall-clock`` / ``global-rng`` / ``mutable-global``
    detail: str  #: what was read, e.g. ``os.environ`` or ``repro.x._cache``
    path: str
    line: int
    col: int


@dataclass(frozen=True)
class EmissionSite:
    """One ``<sink>.emit(Record(...))`` call with a resolved record type."""

    record: str  #: terminal class name, e.g. ``FaultInjected``
    line: int
    col: int


@dataclass
class EffectSummary:
    """What one function does to the world, directly and transitively."""

    qualname: str
    #: Direct ambient reads, in source order.
    reads: tuple[AmbientRead, ...] = ()
    #: Attributes this function writes on ``self`` (direct stores only).
    self_writes: frozenset = frozenset()
    #: Resolved telemetry emissions, in source order.
    emissions: tuple[EmissionSite, ...] = ()
    #: ``for``/comprehension loops over statically-set expressions.
    unordered_iters: tuple[tuple[int, int], ...] = ()
    #: The function raises (a non-``AssertionError``) before any effect —
    #: the validate-at-head shape of a guard method.
    head_raise: bool = False
    #: Fixpoint: ambient reads of this function and every resolvable callee.
    all_reads: frozenset = field(default_factory=frozenset)
    #: Fixpoint: self writes closed over intra-class ``self.m()`` calls.
    all_self_writes: frozenset = field(default_factory=frozenset)


# ----------------------------------------------------------------------
# Shared AST helpers (also used by the consuming rules)
# ----------------------------------------------------------------------
def written_self_attr(target: ast.expr) -> str | None:
    """The ``self`` attribute a store target writes, peeling subscripts.

    ``self._owner[idx]`` and ``self._shares`` both resolve to their
    attribute name; anything not rooted at ``self`` returns None.
    """
    while isinstance(target, ast.Subscript):
        target = target.value
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None


def raise_escapes(stmt: ast.Raise) -> bool:
    """Whether a ``raise`` signals a real error to the caller.

    ``raise AssertionError(...)`` marks a branch the author believes
    unreachable (closed enums, internal sanity) and ``raise
    NotImplementedError`` marks an abstract stub a subclass overrides —
    neither is an input-validation path, so the paired-telemetry and
    torn-state rules exempt both.  Everything else (including a bare
    re-raise) escapes.
    """
    exc = stmt.exc
    if exc is None:
        return True
    if isinstance(exc, ast.Call):
        exc = exc.func
    chain = dotted_name(exc)
    return not (
        chain and chain[-1] in ("AssertionError", "NotImplementedError")
    )


def record_class(project: Project, module: Module, call: ast.Call) -> str | None:
    """Terminal class name if ``call`` constructs a telemetry record."""
    chain = dotted_name(call.func)
    if not chain:
        return None
    symbol = project.resolve_dotted(module, chain)
    if symbol is None or symbol.kind != "class":
        return None
    info = project.class_info(symbol.qualname)
    if info is not None and _is_record_class(project, info):
        return symbol.qualname.rsplit(".", 1)[-1]
    return None


def _is_record_class(project: Project, info: ClassInfo, _depth: int = 0) -> bool:
    """Whether ``info`` subclasses (or is) ``TelemetryRecord``."""
    if _depth > 8:
        return False
    if info.name == "TelemetryRecord":
        return True
    module = project.modules.get(info.module)
    if module is None:
        return False
    for base in info.base_exprs:
        chain = dotted_name(base)
        if not chain:
            continue
        if chain[-1] == "TelemetryRecord":
            return True
        symbol = project.resolve_dotted(module, chain)
        if symbol is None or symbol.kind != "class":
            continue
        base_info = project.class_info(symbol.qualname)
        if base_info is not None and _is_record_class(
            project, base_info, _depth + 1
        ):
            return True
    return False


def iter_emissions(project: Project, module: Module, node: ast.AST):
    """Yield ``(record_name, call)`` for each resolved emission in ``node``.

    An emission is ``<anything>.emit(Record(...))`` with exactly one
    positional argument that is a constructor of a project class derived
    from ``TelemetryRecord``.  Nested function bodies are not entered —
    their emissions belong to their own summary.
    """
    stack = list(ast.iter_child_nodes(node)) if not isinstance(
        node, ast.Call
    ) else [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if (
            isinstance(current, ast.Call)
            and isinstance(current.func, ast.Attribute)
            and current.func.attr == "emit"
            and len(current.args) == 1
            and not current.keywords
            and isinstance(current.args[0], ast.Call)
        ):
            record = record_class(project, module, current.args[0])
            if record is not None:
                yield record, current
        stack.extend(ast.iter_child_nodes(current))


def is_set_expression(node: ast.expr) -> bool:
    """Whether an expression is statically an unordered ``set``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        return is_set_expression(node.left) or is_set_expression(node.right)
    return False


def iter_own_statements(stmts):
    """Pre-order walk over statements, not descending into nested defs."""
    for stmt in stmts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield stmt
        for block in _child_blocks(stmt):
            yield from iter_own_statements(block)


def _child_blocks(stmt: ast.stmt):
    """Statement lists nested directly inside one compound statement."""
    for name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, name, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            yield block
    for handler in getattr(stmt, "handlers", ()):
        yield handler.body


# ----------------------------------------------------------------------
# The analysis
# ----------------------------------------------------------------------
class EffectAnalysis:
    """Per-function effect summaries plus their call-graph fixpoint."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.graph = CallGraph(project)
        #: ``module.name`` -> True for module-level globals some function
        #: mutates (via a ``global`` statement).
        self.mutated_globals = self._collect_mutated_globals()
        self.summaries: dict[str, EffectSummary] = {}
        for qualname, fn in self.graph.functions.items():
            self.summaries[qualname] = self._summarize(fn)
        self._propagate()

    # ------------------------------------------------------------------
    def _collect_mutated_globals(self) -> frozenset:
        mutated: set[str] = set()
        for fn in self.graph.functions.values():
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Global):
                    for name in node.names:
                        mutated.add(f"{fn.module}.{name}")
        return frozenset(mutated)

    # ------------------------------------------------------------------
    def _summarize(self, fn: FunctionNode) -> EffectSummary:
        module = self.project.modules[fn.module]
        scanner = _FunctionScanner(self, module, fn)
        scanner.scan()
        return EffectSummary(
            qualname=fn.qualname,
            reads=tuple(sorted(set(scanner.reads))),
            self_writes=frozenset(scanner.self_writes),
            emissions=tuple(
                sorted(scanner.emissions, key=lambda e: (e.line, e.col))
            ),
            unordered_iters=tuple(sorted(set(scanner.unordered_iters))),
            head_raise=self._head_raise(fn),
        )

    def _head_raise(self, fn: FunctionNode) -> bool:
        """Raise-before-any-effect: the validate-at-head guard shape.

        Effects that end the head are ``self`` stores and bare call
        statements (a call's own effects are unknown, so a raise after
        one is no longer pure validation).
        """
        for stmt in iter_own_statements(fn.node.body):
            if isinstance(stmt, ast.Raise):
                return raise_escapes(stmt)
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                if any(written_self_attr(t) is not None for t in targets):
                    return False
            elif isinstance(stmt, ast.Delete):
                if any(written_self_attr(t) is not None for t in stmt.targets):
                    return False
            elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                return False
        return False

    # ------------------------------------------------------------------
    def _propagate(self) -> None:
        """Close summaries over call edges, to a fixpoint.

        ``all_reads`` flows along every resolved edge; ``all_self_writes``
        only along intra-class edges (a cross-class call mutates a
        different object's state, not this receiver's).
        """
        reads = {q: set(s.reads) for q, s in self.summaries.items()}
        writes = {q: set(s.self_writes) for q, s in self.summaries.items()}
        changed = True
        while changed:
            changed = False
            for caller, callees in self.graph.edges.items():
                if caller not in reads:
                    continue
                for callee in callees:
                    if callee not in reads:
                        continue
                    if not reads[caller] >= reads[callee]:
                        reads[caller] |= reads[callee]
                        changed = True
                    if self._intra_class(caller, callee) and not (
                        writes[caller] >= writes[callee]
                    ):
                        writes[caller] |= writes[callee]
                        changed = True
        for qualname, summary in self.summaries.items():
            summary.all_reads = frozenset(reads[qualname])
            summary.all_self_writes = frozenset(writes[qualname])

    def _intra_class(self, caller: str, callee: str) -> bool:
        a = self.graph.functions[caller].owner
        b = self.graph.functions[callee].owner
        return a is not None and a is b


class _FunctionScanner(ast.NodeVisitor):
    """Collects one function's direct effects (nested defs excluded)."""

    def __init__(
        self, analysis: EffectAnalysis, module: Module, fn: FunctionNode
    ) -> None:
        self.analysis = analysis
        self.project = analysis.project
        self.module = module
        self.fn = fn
        self.reads: list[AmbientRead] = []
        self.self_writes: list[str] = []
        self.emissions: list[EmissionSite] = []
        self.unordered_iters: list[tuple[int, int]] = []

    def scan(self) -> None:
        for stmt in self.fn.node.body:
            self.visit(stmt)

    # -- scoping -------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Nested defs are separate graph nodes; do not descend."""

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- ambient reads -------------------------------------------------
    def _read(self, kind: str, detail: str, node: ast.AST) -> None:
        self.reads.append(
            AmbientRead(
                kind=kind,
                detail=detail,
                path=self.module.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
            )
        )

    def _ambient_chain(self, chain: tuple[str, ...], node: ast.AST) -> bool:
        """Classify a dotted load; True when it was consumed as a read."""
        qualified = self.project.qualify_chain(self.module, chain)
        if qualified is None:
            return False
        if qualified == "os.environ" or qualified.startswith("os.environ."):
            self._read("environ", "os.environ", node)
            return True
        symbol = self.project.resolve_dotted(self.module, chain)
        if (
            symbol is not None
            and symbol.kind == "value"
            and symbol.qualname in self.analysis.mutated_globals
        ):
            self._read("mutable-global", symbol.qualname, node)
            return True
        return False

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_name(node.func)
        if chain:
            qualified = self.project.qualify_chain(self.module, chain)
            if qualified in WALL_CLOCK:
                self._read("wall-clock", qualified, node)
            elif qualified == "os.getenv":
                self._read("environ", "os.getenv", node)
            elif qualified is not None and qualified.startswith(
                GLOBAL_RNG_PREFIXES
            ):
                self._read("global-rng", qualified, node)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
            and len(node.args) == 1
            and not node.keywords
            and isinstance(node.args[0], ast.Call)
        ):
            record = record_class(self.project, self.module, node.args[0])
            if record is not None:
                self.emissions.append(
                    EmissionSite(
                        record=record, line=node.lineno, col=node.col_offset
                    )
                )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = dotted_name(node)
        if chain and self._ambient_chain(chain, node):
            return  # consumed the whole chain; don't re-visit its parts
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._ambient_chain((node.id,), node)

    # -- self writes ---------------------------------------------------
    def _note_writes(self, targets) -> None:
        for target in targets:
            attr = written_self_attr(target)
            if attr is not None:
                self.self_writes.append(attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._note_writes(node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note_writes([node.target])
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._note_writes([node.target])
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._note_writes(node.targets)
        self.generic_visit(node)

    # -- unordered iteration -------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if is_set_expression(node.iter):
            self.unordered_iters.append((node.lineno, node.col_offset))
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        if is_set_expression(node.iter):
            self.unordered_iters.append(
                (node.iter.lineno, node.iter.col_offset)
            )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# One analysis per project (the three consuming rules share it)
# ----------------------------------------------------------------------
_ANALYSES: "weakref.WeakKeyDictionary[Project, EffectAnalysis]" = (
    weakref.WeakKeyDictionary()
)


def effect_analysis(project: Project) -> EffectAnalysis:
    """The (memoized) effect analysis for ``project``."""
    analysis = _ANALYSES.get(project)
    if analysis is None:
        analysis = EffectAnalysis(project)
        _ANALYSES[project] = analysis
    return analysis
