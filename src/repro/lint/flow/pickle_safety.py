"""RPL108 — unpicklable values crossing a process boundary.

Everything handed to a process pool is pickled: the callable, its
arguments, and whatever the worker returns.  Values that cannot be
pickled fail at submission time at best; at worst they *appear* to work
under fork (the child inherits the object) and break only when the
start method changes — so the rule bans them statically.

Positive evidence, gathered at the submission sites and worker entries
the :mod:`~repro.lint.flow.workers` index discovered:

- a **lambda** or **locally defined function** submitted to a pool
  (pickle serializes functions by qualified name; neither has an
  importable one);
- a **submission argument** whose inferred type is unpicklable: a live
  simulation object (:class:`~repro.sim.engine.Engine`,
  :class:`~repro.sim.events.Event`, :class:`~repro.sim.resources.
  Facility` — all carrying engine back-references), a telemetry sink
  (live handles, parent-side buffers), or a local bound by ``open(...)``;
- a worker entry whose **parameter annotations** or **returned locals**
  are of those same types — the return value crosses the boundary just
  like the arguments did.

Receivers the type inference cannot pin contribute nothing.  Workers
exchange plain dicts of scalars by convention (see
:mod:`repro.sweep.worker`); this rule is what keeps that convention
honest as the codebase grows.
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic
from ..rules import FlowRule, dotted_name, register
from .callgraph import infer_local_types
from .effects import iter_own_statements
from .symbols import ClassInfo, Module, Project
from .workers import worker_index

#: Project classes that must never cross a process boundary.
UNPICKLABLE_CLASSES = frozenset({
    "repro.sim.engine.Engine",
    "repro.sim.events.Event",
    "repro.sim.resources.Facility",
})

#: Base classes whose whole subtree is boundary-banned.
UNPICKLABLE_BASES = ("TelemetrySink",)


def _unpicklable_reason(project: Project, class_qual: str) -> str | None:
    """Why ``class_qual`` must not be pickled, or None if it may be."""
    if class_qual in UNPICKLABLE_CLASSES:
        return f"{class_qual} carries live simulation state"
    info = project.class_info(class_qual)
    if info is not None and _derives_from(project, info, UNPICKLABLE_BASES):
        return f"{class_qual} is a live telemetry sink"
    return None


def _derives_from(
    project: Project, info: ClassInfo, names: tuple, _depth: int = 0
) -> bool:
    if _depth > 8:
        return False
    if info.name in names:
        return True
    module = project.modules.get(info.module)
    if module is None:
        return False
    for base in info.base_exprs:
        chain = dotted_name(base)
        if not chain:
            continue
        if chain[-1] in names:
            return True
        symbol = project.resolve_dotted(module, chain)
        if symbol is None or symbol.kind != "class":
            continue
        base_info = project.class_info(symbol.qualname)
        if base_info is not None and _derives_from(
            project, base_info, names, _depth + 1
        ):
            return True
    return False


def _open_handles(fn_node: ast.AST) -> set[str]:
    """Local names bound by ``open(...)`` (assign or ``with`` target)."""
    handles: set[str] = set()

    def is_open(value: ast.expr) -> bool:
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "open"
        )

    for stmt in iter_own_statements(getattr(fn_node, "body", [])):
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and is_open(stmt.value)
        ):
            handles.add(stmt.targets[0].id)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name) and is_open(
                    item.context_expr
                ):
                    handles.add(item.optional_vars.id)
    return handles


@register
class PickleSafety(FlowRule):
    """Only picklable values may cross the process boundary.

    Checks every pool submission site (callable and arguments) and
    every worker entry's parameters and returns against the inferred
    types the call graph's local type inference can pin.
    """

    id = "RPL108"
    title = "unpicklable value crossing a process boundary"
    hint = (
        "exchange plain dicts/dataclasses of scalars with workers; "
        "rebuild live objects (engines, sinks, handles) inside the "
        "worker from the payload"
    )

    def run(self) -> list[Diagnostic]:
        index = worker_index(self.project)
        for site in index.submissions:
            self._check_site(index, site)
        for entry in sorted(index.entries):
            self._check_entry(index, entry)
        return sorted(self.diagnostics)

    # ------------------------------------------------------------------
    def _check_site(self, index, site) -> None:
        if site.target_kind == "lambda":
            self.report(
                site.path, site.line, site.col,
                f"lambda submitted to {site.api} in {site.caller}; "
                f"lambdas have no importable qualified name and cannot "
                f"be pickled",
            )
        elif site.target_kind == "local-function":
            self.report(
                site.path, site.line, site.col,
                f"locally defined function {site.target} submitted to "
                f"{site.api}; only module-level functions pickle",
            )
        fn = index.graph.functions.get(site.caller)
        module = index.project.modules.get(site.module)
        if fn is None or module is None:
            return
        types = infer_local_types(index.project, module, fn)
        handles = _open_handles(fn.node)
        for arg in [*site.call.args, *[k.value for k in site.call.keywords]]:
            self._check_value(
                index.project, module, types, handles, arg,
                f"argument to {site.api} in {site.caller}",
                site.path,
            )

    def _check_entry(self, index, entry: str) -> None:
        fn = index.graph.functions.get(entry)
        if fn is None:
            return
        module = index.project.modules.get(fn.module)
        if module is None:
            return
        path = module.ctx.path
        # Parameter annotations: these values arrive via pickle.
        from .callgraph import annotation_class

        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            class_qual = annotation_class(
                index.project, module, arg.annotation
            )
            if class_qual is None:
                continue
            reason = _unpicklable_reason(index.project, class_qual)
            if reason is not None:
                self.report(
                    path, arg.lineno, arg.col_offset,
                    f"worker entry {entry} takes parameter {arg.arg!r} of "
                    f"unpicklable type: {reason}",
                )
        # Returns: these values leave via pickle.
        types = infer_local_types(index.project, module, fn)
        handles = _open_handles(fn.node)
        for stmt in iter_own_statements(fn.node.body):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                self._check_value(
                    index.project, module, types, handles, stmt.value,
                    f"return value of worker entry {entry}",
                    path,
                )

    def _check_value(
        self,
        project: Project,
        module: Module,
        types: dict,
        handles: set,
        expr: ast.expr,
        what: str,
        path: str,
    ) -> None:
        if isinstance(expr, ast.Lambda):
            self.report(
                path, expr.lineno, expr.col_offset,
                f"lambda as {what}; lambdas cannot be pickled",
            )
            return
        chain = dotted_name(expr)
        if not chain:
            return
        text = ".".join(chain)
        if len(chain) == 1 and chain[0] in handles:
            self.report(
                path, expr.lineno, expr.col_offset,
                f"open file handle {chain[0]!r} as {what}; handles "
                f"cannot cross process boundaries",
            )
            return
        class_qual = types.get(text)
        if class_qual is None:
            return
        reason = _unpicklable_reason(project, class_qual)
        if reason is not None:
            self.report(
                path, expr.lineno, expr.col_offset,
                f"{text!r} as {what} has unpicklable type: {reason}",
            )
