"""Forward data-flow engine shared by the RPL1xx analyses.

The engine is a two-phase, context-insensitive, whole-program analysis:

1. **Collection.**  Every function body is walked once (statement order,
   loop bodies twice for loop-carried values) by a
   :class:`SymbolicEvaluator`.  Expressions evaluate to sets of *atoms*
   — terminal facts (``stream``/``unit``/``instance``/...) and symbolic
   placeholders (``param``/``ret``/``attr``) whose meaning depends on
   other functions.  Each call site binds argument atoms onto the
   callee's ``param`` atoms, each ``return`` feeds the function's
   ``ret`` atom, and each attribute store feeds a ``(class, attr)``
   atom: the interprocedural equations.  Module globals and class-body
   fields use the same ``attr`` channel, keyed by module/class name.
2. **Solving.**  :class:`Lattice.solve` expands the placeholder atoms to
   their terminal meanings by fixpoint iteration (cycles in the call
   graph simply converge).  Attribute stores whose *receiver* was itself
   symbolic (``self.cluster._ownership = ...``) are recorded as pending
   :class:`Store` sites and folded in by :func:`finalize` once the
   receiver resolves.  Analyses then re-inspect their recorded sites
   (sampling calls, arithmetic nodes, writes) with fully resolved values
   and emit diagnostics.

All checks are *positive evidence only*: an unresolved value is an empty
set, and an empty set never fires a rule — dynamic calls degrade to
"unknown", never to a false positive.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable

from ..rules import dotted_name
from .symbols import ClassInfo, Module, Project

#: Atom kinds that are facts (everything else is a placeholder to solve).
TERMINAL_KINDS = frozenset(
    {"stream", "rawgen", "factory", "unit", "instance", "container"}
)


@dataclass(frozen=True)
class Atom:
    """One abstract fact or placeholder flowing through the program."""

    kind: str
    key: tuple

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}{self.key!r}"


def param(func: str, index) -> Atom:
    """Placeholder: the ``index``-th parameter of ``func``."""
    return Atom("param", (func, index))


def ret(func: str) -> Atom:
    """Placeholder: the return value of ``func``."""
    return Atom("ret", (func,))


def attr(owner: str, name: str) -> Atom:
    """Placeholder: values stored in attribute ``name`` of a class.

    Also used for module globals, with the module's dotted name as
    ``owner`` — a module is just a singleton namespace here.
    """
    return Atom("attr", (owner, name))


def instance(class_qualname: str) -> Atom:
    """Terminal: an instance of a project class."""
    return Atom("instance", (class_qualname,))


def unit(name: str) -> Atom:
    """Terminal: a value measured in ``"sec"`` or ``"tick"``."""
    return Atom("unit", (name,))


def container(unit_name: str) -> Atom:
    """Terminal: a container whose elements are measured in a unit."""
    return Atom("container", (unit_name,))


@dataclass(frozen=True)
class Store:
    """One attribute-write site, kept for post-solve re-examination."""

    owner_atoms: frozenset
    attr: str
    values: frozenset
    path: str
    line: int
    col: int
    #: Qualname of the function/module/class body doing the write.
    context: str
    #: Qualname of the enclosing class, if the write is inside a method.
    context_class: str | None
    #: True when the "write" is a constructor field bind, not a mutation.
    is_ctor: bool


class Lattice:
    """The global constraint store and its fixpoint solver."""

    def __init__(self) -> None:
        self.defs: dict[Atom, set[Atom]] = {}
        self.stores: list[Store] = []
        self._expanded: dict[Atom, frozenset] | None = None

    def add(self, target: Atom, values: Iterable[Atom]) -> None:
        """Record ``target ⊇ values``."""
        self.defs.setdefault(target, set()).update(values)
        self._expanded = None

    def solve(self, max_passes: int = 64) -> None:
        """Expand every placeholder to terminals (monotone fixpoint)."""
        expanded: dict[Atom, set[Atom]] = {}
        for target, values in self.defs.items():
            expanded[target] = {v for v in values if v.kind in TERMINAL_KINDS}
        for _ in range(max_passes):
            changed = False
            for target, values in self.defs.items():
                bucket = expanded[target]
                before = len(bucket)
                for value in values:
                    if value.kind not in TERMINAL_KINDS:
                        bucket |= expanded.get(value, set())
                if len(bucket) != before:
                    changed = True
            if not changed:
                break
        self._expanded = {k: frozenset(v) for k, v in expanded.items()}

    def resolve(self, atoms: Iterable[Atom]) -> frozenset:
        """Terminal atoms a value may hold (solves lazily on first use)."""
        if self._expanded is None:
            self.solve()
        assert self._expanded is not None
        out: set[Atom] = set()
        for atom in atoms:
            if atom.kind in TERMINAL_KINDS:
                out.add(atom)
            else:
                out |= self._expanded.get(atom, frozenset())
        return frozenset(out)


def finalize(lattice: Lattice, max_rounds: int = 3) -> None:
    """Fold pending stores whose receiver was symbolic, then re-solve.

    A write like ``self.cluster._ownership[x] = y`` is recorded before
    the type of ``self.cluster`` is known; each round resolves receivers
    against the current solution and feeds the newly discovered
    ``(class, attr)`` atoms back in.
    """
    for _ in range(max_rounds):
        lattice.solve()
        # Resolve every receiver against this round's snapshot *before*
        # mutating the store: an add() invalidates the solution, so
        # interleaving add with resolve re-runs the full fixpoint once
        # per store (quadratic in practice).  Batched, each round costs
        # exactly one solve.
        pending: list[tuple[Atom, frozenset]] = []
        for store in lattice.stores:
            for atom in lattice.resolve(store.owner_atoms):
                if atom.kind != "instance":
                    continue
                pending.append((attr(atom.key[0], store.attr), store.values))
        changed = False
        for target, values in pending:
            before = len(lattice.defs.get(target, ()))
            lattice.add(target, values)
            if len(lattice.defs[target]) != before:
                changed = True
        if not changed:
            break
    lattice.solve()


class SymbolicEvaluator:
    """Walks one function, producing atom sets and lattice constraints.

    Subclasses specialize expression semantics through the hooks at the
    bottom; the base class owns statement traversal, environments,
    assignment targets, call/argument binding, and receiver resolution.

    Three scopes share the class: function bodies (``fn`` set), class
    bodies (``fn`` None, ``owner`` set — ``Name`` targets become field
    stores), and module bodies (both None — ``Name`` targets become
    module-global ``attr`` atoms).
    """

    def __init__(
        self,
        project: Project,
        lattice: Lattice,
        module: Module,
        qualname: str,
        fn: ast.FunctionDef | ast.AsyncFunctionDef | None,
        owner: ClassInfo | None,
    ) -> None:
        self.project = project
        self.lattice = lattice
        self.module = module
        self.qualname = qualname
        self.fn = fn
        self.owner = owner
        self.env: dict[str, set[Atom]] = {}

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Evaluate the function body (use :meth:`exec_block` directly
        for module/class bodies, which have no parameters to seed)."""
        if self.fn is not None:
            self._seed_params()
            self.exec_block(self.fn.body)

    def _seed_params(self) -> None:
        assert self.fn is not None
        args = self.fn.args
        ordered = [*args.posonlyargs, *args.args]
        for index, arg in enumerate(ordered):
            if index == 0 and arg.arg == "self" and self.owner is not None:
                self.env[arg.arg] = {instance(self.owner.qualname)}
                continue
            # An annotation is authoritative when it yields atoms;
            # otherwise fall back to the symbolic parameter channel.
            atoms = self.seed_annotation(arg.annotation)
            if not atoms:
                atoms = {param(self.qualname, index)}
            self.env[arg.arg] = atoms
        for arg in args.kwonlyargs:
            atoms = self.seed_annotation(arg.annotation)
            if not atoms:
                atoms = {param(self.qualname, f"kw:{arg.arg}")}
            self.env[arg.arg] = atoms
        for arg in (args.vararg, args.kwarg):
            if arg is not None:
                self.env[arg.arg] = set()

    def exec_block(self, body: Iterable[ast.stmt]) -> None:
        """Execute statements in order (both branches of conditionals)."""
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        """Walk one statement, recording assignments and effects."""
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self.assign(target, value, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            value = self.eval(stmt.value) if stmt.value is not None else set()
            value = value | self.seed_annotation(stmt.annotation)
            self.assign(stmt.target, value, stmt)
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id, set())
            else:
                current = self.eval(stmt.target)
            self.on_augassign(stmt, current, value)
            self.assign(stmt.target, current | value, stmt, merge=True)
        elif isinstance(stmt, ast.Return):
            atoms = self.eval(stmt.value) if stmt.value is not None else set()
            self.lattice.add(ret(self.qualname), atoms)
            self.on_return(stmt, atoms)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_atoms = self.eval(stmt.iter)
            element = self.eval_iter_element(iter_atoms)
            # Two passes: loop-carried values reach their own reads.
            for _ in range(2):
                self.assign(stmt.target, set(element), stmt, merge=True)
                self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            for _ in range(2):
                self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, value, stmt)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self.on_delete(target, stmt)
        # Nested defs/classes are separate walkers; pass/imports are inert.

    # ------------------------------------------------------------------
    # Assignment targets
    # ------------------------------------------------------------------
    def assign(
        self,
        target: ast.expr,
        value: set[Atom],
        stmt: ast.stmt | ast.expr,
        merge: bool = False,
    ) -> None:
        """Record ``target = value`` into locals/attr channels."""
        if isinstance(target, ast.Name):
            if merge:
                self.env[target.id] = self.env.get(target.id, set()) | value
            else:
                self.env[target.id] = set(value)
            if self.fn is None:
                # Class body: names are field defaults; module body:
                # names are module globals.  Both use the attr channel.
                if self.owner is not None:
                    self.store_attr(
                        {instance(self.owner.qualname)},
                        target.id,
                        value,
                        target,
                        is_ctor=True,
                    )
                else:
                    self.lattice.add(attr(self.qualname, target.id), value)
        elif isinstance(target, ast.Attribute):
            owner_atoms = self.eval(target.value)
            self.store_attr(owner_atoms, target.attr, value, target)
        elif isinstance(target, ast.Subscript):
            self.eval(target.slice)
            base = target.value
            if isinstance(base, ast.Name):
                # Conflate container contents with the container variable.
                self.env[base.id] = self.env.get(base.id, set()) | value
            elif isinstance(base, ast.Attribute):
                owner_atoms = self.eval(base.value)
                self.store_attr(owner_atoms, base.attr, value, target)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.assign(element, set(), stmt, merge=merge)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, set(), stmt, merge=merge)

    def store_attr(
        self,
        owner_atoms: set[Atom],
        name: str,
        value: set[Atom],
        node: ast.AST,
        is_ctor: bool = False,
    ) -> None:
        """Record an attribute write (resolved receivers feed the lattice
        immediately; symbolic ones are finalized post-solve)."""
        self.lattice.stores.append(
            Store(
                owner_atoms=frozenset(owner_atoms),
                attr=name,
                values=frozenset(value),
                path=self.module.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                context=self.qualname,
                context_class=self.owner.qualname if self.owner else None,
                is_ctor=is_ctor,
            )
        )
        for atom in owner_atoms:
            if atom.kind == "instance":
                self.lattice.add(attr(atom.key[0], name), value)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def eval(self, node: ast.expr | None) -> set[Atom]:
        """Atoms that may flow out of expression ``node``."""
        if node is None:
            return set()
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return set(self.env[node.id])
            return self.eval_global_name(node)
        if isinstance(node, ast.Attribute):
            recv = self.eval(node.value)
            return self.eval_attribute(node, recv)
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.Constant):
            return self.eval_constant(node)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left)
            right = self.eval(node.right)
            return self.eval_binop(node, left, right)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out: set[Atom] = set()
            for value in node.values:
                out |= self.eval(value)
            return out
        if isinstance(node, ast.Compare):
            left = self.eval(node.left)
            rights = [self.eval(comp) for comp in node.comparators]
            self.on_compare(node, left, rights)
            return set()
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value)
            self.eval(node.slice)
            return self.eval_subscript(node, base)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for element in node.elts:
                out |= self.eval(element)
            return self.wrap_elements(out)
        if isinstance(node, ast.Dict):
            out = set()
            for key in node.keys:
                if key is not None:
                    self.eval(key)
            for value in node.values:
                out |= self.eval(value)
            return self.wrap_elements(out)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for comp in node.generators:
                iter_atoms = self.eval(comp.iter)
                self.assign(comp.target, self.eval_iter_element(iter_atoms), node)
                for condition in comp.ifs:
                    self.eval(condition)
            if isinstance(node, ast.DictComp):
                self.eval(node.key)
                out = self.eval(node.value)
            else:
                out = self.eval(node.elt)
            return self.wrap_elements(out)
        if isinstance(node, ast.Lambda):
            return set()
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child)
            return set()
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value)
            self.assign(node.target, value, node)
            return value
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part)
            return set()
        if isinstance(node, ast.Await):
            return self.eval(node.value)
        return set()

    # ------------------------------------------------------------------
    # Calls: resolution + argument binding
    # ------------------------------------------------------------------
    def eval_call(self, node: ast.Call) -> set[Atom]:
        """Atoms produced by a call (dispatching on what resolves)."""
        chain = dotted_name(node.func)
        recv_atoms: set[Atom] = set()
        if isinstance(node.func, ast.Attribute):
            recv_atoms = self.eval(node.func.value)
        arg_atoms = [self.eval(arg) for arg in node.args]
        kwarg_atoms = {
            kw.arg: self.eval(kw.value) for kw in node.keywords if kw.arg
        }
        for kw in node.keywords:
            if kw.arg is None:
                self.eval(kw.value)
        return self.apply_call(node, chain, recv_atoms, arg_atoms, kwarg_atoms)

    def apply_call(
        self,
        node: ast.Call,
        chain: tuple[str, ...],
        recv_atoms: set[Atom],
        args: list[set[Atom]],
        kwargs: dict[str, set[Atom]],
    ) -> set[Atom]:
        """Resolve the callee, bind arguments, and produce result atoms."""
        special = self.special_call(node, chain, recv_atoms, args, kwargs)
        if special is not None:
            return special
        # dataclasses.field(...): the default/default_factory IS the value.
        if chain and chain[-1] == "field":
            for kw in node.keywords:
                if kw.arg == "default_factory" and isinstance(
                    kw.value, ast.Lambda
                ):
                    return self.eval(kw.value.body)
                if kw.arg == "default":
                    return self.eval(kw.value)
            return set()
        # Method through a receiver instance.
        if chain and isinstance(node.func, ast.Attribute):
            for atom in recv_atoms:
                if atom.kind != "instance":
                    continue
                info = self.project.class_info(atom.key[0])
                if info is None:
                    continue
                method = self._find_method(info, node.func.attr)
                if method is not None:
                    method_qual, method_node = method
                    self._bind(node, method_qual, method_node, args, kwargs, 1)
                    return self.call_result(node, method_qual, method_node)
        # Plain/dotted resolution through the symbol tables.
        if chain:
            symbol = self.project.resolve_dotted(self.module, chain)
            if symbol is not None and symbol.kind == "function":
                fn_node = symbol.node
                if isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._bind(node, symbol.qualname, fn_node, args, kwargs, 0)
                    return self.call_result(node, symbol.qualname, fn_node)
            if symbol is not None and symbol.kind == "class":
                return self.construct(node, symbol.qualname, args, kwargs)
        return self.unknown_call(node, chain, recv_atoms, args, kwargs)

    def construct(
        self,
        node: ast.Call,
        class_qualname: str,
        args: list[set[Atom]],
        kwargs: dict[str, set[Atom]],
    ) -> set[Atom]:
        """Bind constructor arguments; result is an instance atom."""
        info = self.project.class_info(class_qualname)
        if info is None:
            return set()
        if info.has_explicit_init:
            init = info.methods["__init__"]
            self._bind(node, f"{class_qualname}.__init__", init, args, kwargs, 1)
        else:
            # Dataclass-style: positional and keyword args are field binds.
            owner = {instance(class_qualname)}
            for index, atoms in enumerate(args):
                if index < len(info.fields):
                    self.store_attr(
                        owner, info.fields[index], atoms, node, is_ctor=True
                    )
            for name, atoms in kwargs.items():
                if name in info.fields:
                    self.store_attr(owner, name, atoms, node, is_ctor=True)
        self.on_construct(node, class_qualname, args, kwargs)
        return {instance(class_qualname)}

    def _bind(
        self,
        node: ast.Call,
        qualname: str,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        args: list[set[Atom]],
        kwargs: dict[str, set[Atom]],
        offset: int,
    ) -> None:
        params = [a.arg for a in [*fn.args.posonlyargs, *fn.args.args]]
        kwonly = [a.arg for a in fn.args.kwonlyargs]
        for index, atoms in enumerate(args):
            slot = index + offset
            if slot < len(params):
                self.lattice.add(param(qualname, slot), atoms)
        for name, atoms in kwargs.items():
            if name in params:
                self.lattice.add(param(qualname, params.index(name)), atoms)
            elif name in kwonly:
                self.lattice.add(param(qualname, f"kw:{name}"), atoms)
        self.on_bound_call(node, qualname, fn, args, kwargs, offset)

    def _find_method(
        self, info: ClassInfo, name: str, _depth: int = 0
    ) -> tuple[str, ast.FunctionDef | ast.AsyncFunctionDef] | None:
        if _depth > 8:
            return None
        if name in info.methods:
            return f"{info.qualname}.{name}", info.methods[name]
        module = self.project.modules.get(info.module)
        if module is None:
            return None
        for base in info.base_exprs:
            base_chain = dotted_name(base)
            if not base_chain:
                continue
            symbol = self.project.resolve_dotted(module, base_chain)
            if symbol is None or symbol.kind != "class":
                continue
            base_info = self.project.class_info(symbol.qualname)
            if base_info is None:
                continue
            found = self._find_method(base_info, name, _depth + 1)
            if found is not None:
                return found
        return None

    # ------------------------------------------------------------------
    # Hooks (specialized per analysis)
    # ------------------------------------------------------------------
    def seed_annotation(self, annotation: ast.expr | None) -> set[Atom]:
        """Atoms implied by a parameter/variable annotation."""
        from .callgraph import annotation_class

        found = annotation_class(self.project, self.module, annotation)
        if found is not None:
            return {instance(found)}
        return set()

    def eval_global_name(self, node: ast.Name) -> set[Atom]:
        """A name not bound locally: module global / import / builtin."""
        symbol = self.project.resolve_local(self.module, node.id)
        if symbol is not None and symbol.kind == "value":
            # Module globals live on the defining module's attr channel.
            return {attr(symbol.module, symbol.qualname.rsplit(".", 1)[1])}
        return set()

    def eval_attribute(self, node: ast.Attribute, recv: set[Atom]) -> set[Atom]:
        """Atoms read through ``recv.attr`` (instance attr channels)."""
        out: set[Atom] = set()
        for atom in recv:
            if atom.kind != "instance":
                continue
            info = self.project.class_info(atom.key[0])
            method = info.methods.get(node.attr) if info is not None else None
            if method is not None and _is_property(method):
                # Property read: the value channel is the getter's return.
                out.add(ret(f"{atom.key[0]}.{node.attr}"))
            else:
                out.add(attr(atom.key[0], node.attr))
        return out

    def eval_constant(self, node: ast.Constant) -> set[Atom]:
        """Atoms of a literal (none, by default)."""
        return set()

    def eval_binop(
        self, node: ast.BinOp, left: set[Atom], right: set[Atom]
    ) -> set[Atom]:
        """Atoms of ``left <op> right`` (union by default)."""
        return left | right

    def eval_subscript(self, node: ast.Subscript, base: set[Atom]) -> set[Atom]:
        """Atoms of ``base[...]`` (containers pass through by default)."""
        return base

    def eval_iter_element(self, iter_atoms: set[Atom]) -> set[Atom]:
        """Atoms of one element drawn from an iterable (none by default)."""
        return set()

    def wrap_elements(self, atoms: set[Atom]) -> set[Atom]:
        """Atoms for a container literal holding ``atoms``."""
        return atoms

    def call_result(
        self,
        node: ast.Call,
        qualname: str,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> set[Atom]:
        """Atoms returned by a resolved project function call."""
        return {ret(qualname)}

    def special_call(
        self,
        node: ast.Call,
        chain: tuple[str, ...],
        recv_atoms: set[Atom],
        args: list[set[Atom]],
        kwargs: dict[str, set[Atom]],
    ) -> set[Atom] | None:
        """First-chance hook; return None to fall through to resolution."""
        return None

    def unknown_call(
        self,
        node: ast.Call,
        chain: tuple[str, ...],
        recv_atoms: set[Atom],
        args: list[set[Atom]],
        kwargs: dict[str, set[Atom]],
    ) -> set[Atom]:
        """Atoms of a call that resolves to nothing (none by default)."""
        return set()

    def on_construct(
        self,
        node: ast.Call,
        class_qualname: str,
        args: list[set[Atom]],
        kwargs: dict[str, set[Atom]],
    ) -> None:
        """A project-class constructor call was evaluated."""

    def on_bound_call(
        self,
        node: ast.Call,
        qualname: str,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        args: list[set[Atom]],
        kwargs: dict[str, set[Atom]],
        offset: int,
    ) -> None:
        """Arguments were bound onto a resolved project function."""

    def on_return(self, node: ast.Return, atoms: set[Atom]) -> None:
        """A return statement was evaluated."""

    def on_compare(
        self, node: ast.Compare, left: set[Atom], rights: list[set[Atom]]
    ) -> None:
        """A comparison was evaluated."""

    def on_augassign(
        self, node: ast.AugAssign, target: set[Atom], value: set[Atom]
    ) -> None:
        """An augmented assignment was evaluated."""

    def on_delete(self, target: ast.expr, stmt: ast.Delete) -> None:
        """``del`` treated as a write of nothing (it mutates the owner)."""
        if isinstance(target, ast.Attribute):
            self.store_attr(self.eval(target.value), target.attr, set(), target)
        elif isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Attribute
        ):
            owner_atoms = self.eval(target.value.value)
            self.store_attr(owner_atoms, target.value.attr, set(), target)


def _is_property(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for dec in fn.decorator_list:
        chain = dotted_name(dec)
        if chain and chain[-1] in {"property", "cached_property"}:
            return True
    return False


def run_evaluators(
    project: Project,
    make: Callable[..., SymbolicEvaluator],
) -> None:
    """Drive one evaluator per scope over the whole project.

    ``make(module, qualname, fn, owner)`` builds the analysis-specific
    evaluator.  Module bodies and class bodies run with ``fn=None``
    (their ``Name`` assignments feed the global/field attr channels);
    functions and methods run normally, including defs nested inside
    them (as ``...<locals>.name`` scopes with an empty environment).
    """

    def run_function(module, qualname, fn, owner):
        make(module, qualname, fn, owner).run()
        for stmt in ast.walk(fn):
            if stmt is not fn and isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                nested = f"{qualname}.<locals>.{stmt.name}"
                make(module, nested, stmt, owner).run()

    for module in project.modules.values():
        make(module, module.name, None, None).exec_block(module.ctx.tree.body)
        for stmt in module.ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                run_function(module, f"{module.name}.{stmt.name}", stmt, None)
            elif isinstance(stmt, ast.ClassDef):
                info = module.classes[stmt.name]
                make(module, info.qualname, None, info).exec_block(stmt.body)
                for name, fn in info.methods.items():
                    run_function(module, f"{info.qualname}.{name}", fn, info)
