"""RPL105 — paired telemetry emissions that an exception path can split.

The telemetry stream is this repository's replay evidence: consumers
(metrics, the chaos soak, ``repro-dsan``) rely on *protocol* pairs —
a :class:`~repro.runtime.telemetry.FaultInjected` record is always
followed by the :class:`~repro.runtime.telemetry.MembershipChanged`
record describing what that fault did; a move-start is eventually paired
with a move-finish.  A function that emits the first half of such a pair
and *then* runs validation that can raise leaves a dangling record in
the stream: the sink says a fault was applied that the roster in fact
rejected, and every digest-chain comparison downstream of it diverges
from the harness state.

Positive-evidence scoping (why this converges to zero on clean code):

- only functions whose own body emits **two or more distinct record
  types** are examined — they are the ones implementing a protocol;
- a gap is reported at an escaping ``raise`` in the function's own body,
  or at a call to a *direct* callee whose own body has a
  validation-raise-at-head (a guard like ``MembershipRoster.commission``
  that raises before performing any effect).  Deeper raises are internal
  errors, not validation the caller should have hoisted;
- ``raise AssertionError`` (closed-enum / unreachable branches) is
  exempt, as are raises inside ``try`` blocks that have handlers;
- ``if sink.enabled:`` guards are transparent: the analysis reasons
  about the telemetry-enabled world, which is the only one with a
  stream to tear.

The fix is always the same: validate first, emit after — legality
checks belong before the first record of the pair.
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic
from ..rules import FlowRule, dotted_name, register
from .callgraph import FunctionNode
from .effects import (
    EffectAnalysis,
    effect_analysis,
    iter_emissions,
    raise_escapes,
)
from .symbols import Module


@register
class TelemetryGap(FlowRule):
    """A validation raise between paired telemetry emissions.

    Every path that emits the first record of a multi-record protocol
    must reach the records that complete it; an exception in between
    publishes an event that never happened.  Emit after validating —
    or validate in the caller before the first emission.
    """

    id = "RPL105"
    title = "telemetry pair split by an exception path"
    hint = (
        "hoist the validation (or the legality-checking call) above the "
        "first emission so a rejected event emits nothing"
    )

    def run(self) -> list[Diagnostic]:
        analysis = effect_analysis(self.project)
        for qualname in sorted(analysis.summaries):
            summary = analysis.summaries[qualname]
            kinds = {site.record for site in summary.emissions}
            if len(kinds) < 2:
                continue
            fn = analysis.graph.functions[qualname]
            module = self.project.modules[fn.module]
            walker = _GapWalker(self, analysis, module, fn, frozenset(kinds))
            walker.walk(fn.node.body, frozenset(), in_try=False)
        return sorted(self.diagnostics)


def _is_sink_guard(test: ast.expr) -> bool:
    """Whether an ``if`` test is the ``<sink>.enabled`` hot-path guard."""
    chain = dotted_name(test)
    return bool(chain) and chain[-1] == "enabled"


class _GapWalker:
    """Order-aware walk tracking which record types have been emitted.

    The emitted set uses *must* semantics across branches (intersection)
    so only records every path has published count as dangling — except
    under a transparent sink guard, where the enabled world's state is
    taken as-is.
    """

    def __init__(
        self,
        rule: TelemetryGap,
        analysis: EffectAnalysis,
        module: Module,
        fn: FunctionNode,
        all_kinds: frozenset,
    ) -> None:
        self.rule = rule
        self.analysis = analysis
        self.module = module
        self.fn = fn
        self.all_kinds = all_kinds
        self._reported: set[tuple] = set()

    # ------------------------------------------------------------------
    def walk(self, stmts, emitted: frozenset, in_try: bool) -> frozenset:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, ast.Raise):
                if not in_try and raise_escapes(stmt):
                    self._check(stmt, emitted, "this raise fires")
                continue
            if isinstance(stmt, ast.If):
                if _is_sink_guard(stmt.test) and not stmt.orelse:
                    emitted = self.walk(stmt.body, emitted, in_try)
                else:
                    then = self.walk(stmt.body, emitted, in_try)
                    other = self.walk(stmt.orelse, emitted, in_try)
                    emitted = then & other
                continue
            if isinstance(stmt, (ast.For, ast.While)):
                # Second iterations see the first's emissions: re-walk the
                # body with everything it may emit (reports de-dupe).
                may_emit = emitted | self._may_emissions(stmt.body)
                self.walk(stmt.body, emitted, in_try)
                self.walk(stmt.body, may_emit, in_try)
                # The loop may run zero times: must-state is unchanged.
                continue
            if isinstance(stmt, ast.Try):
                guarded = in_try or bool(stmt.handlers)
                self.walk(stmt.body, emitted, guarded)
                for handler in stmt.handlers:
                    self.walk(handler.body, emitted, in_try)
                self.walk(stmt.orelse, emitted, in_try)
                self.walk(stmt.finalbody, emitted, in_try)
                continue
            if isinstance(stmt, ast.With):
                emitted = self.walk(stmt.body, emitted, in_try)
                continue
            # Simple statement: check raising callees against the state
            # *before* it runs, then fold in what it emits.
            if not in_try:
                self._check_callees(stmt, emitted)
            emitted = emitted | self._emissions_of(stmt)
            if isinstance(stmt, ast.Return):
                break
        return emitted

    # ------------------------------------------------------------------
    def _emissions_of(self, stmt: ast.stmt) -> frozenset:
        return frozenset(
            record
            for record, _ in iter_emissions(
                self.analysis.project, self.module, stmt
            )
        )

    def _may_emissions(self, stmts) -> frozenset:
        out: set[str] = set()
        for stmt in stmts:
            for record, _ in iter_emissions(
                self.analysis.project, self.module, stmt
            ):
                out.add(record)
        return frozenset(out)

    def _check_callees(self, stmt: ast.stmt, emitted: frozenset) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not isinstance(node, ast.Call):
                continue
            callee = self.analysis.graph.resolve_site(self.fn, node)
            if callee is None:
                continue
            summary = self.analysis.summaries.get(callee)
            if summary is not None and summary.head_raise:
                self._check(
                    node, emitted, f"{callee} can reject the call and raise"
                )

    def _check(self, node: ast.AST, emitted: frozenset, reason: str) -> None:
        if not emitted or self.all_kinds <= emitted:
            return
        key = (node.lineno, node.col_offset)
        if key in self._reported:
            return
        self._reported.add(key)
        pending = ", ".join(sorted(self.all_kinds - emitted))
        have = ", ".join(sorted(emitted))
        self.rule.report(
            self.module.ctx.path,
            node.lineno,
            node.col_offset,
            f"{have} already emitted but {pending} is skipped when "
            f"{reason} — the stream records an event that never completed",
        )
