"""RPL104 — impure ambient reads reachable from seeded entry points.

A seeded run must be a pure function of its scenario and seed.  The
entry points below are the roots of every reproduction result — the
:class:`~repro.runtime.scenario.Scenario` runners, the harness ``run``
methods they drive, the shared tuning loop, the fault injector, and the
membership director.  Any function reachable from one of them that reads
*process-ambient* state — ``os.environ``, the wall clock, global-RNG
draws, or a module-level global some function mutates — makes two runs
with the same seed silently diverge depending on the environment, the
host's clock, or what ran earlier in the process.

The per-file rules already police direct clock/RNG calls file by file
(RPL001/RPL002); this rule adds what only the call graph can see:
*reachability* (an ambient read buried in a utility module only matters
once a seeded path can reach it) and mutable-global reads, which have no
per-file signature at all — the read site looks like any other name.

``repro.contracts`` is exempt by design: it reads its enable flag
(``REPRO_CONTRACTS``) at import and flips ``_enabled`` only through the
documented ``set_contracts`` switch — contracts are a debugging layer
that is *observationally* pure (validators never mutate or draw), and
gating them on the environment is their whole purpose.
"""

from __future__ import annotations

from ..diagnostics import Diagnostic
from ..rules import FlowRule, register
from .effects import effect_analysis

#: Seeded entry points: every reproduction result flows from one of these.
ROOTS = (
    "repro.runtime.scenario.Scenario.run_cluster",
    "repro.runtime.scenario.Scenario.run_full_system",
    "repro.runtime.scenario.Scenario.run_protocol",
    "repro.cluster.cluster.ClusterSimulation.run",
    "repro.cluster.protocol_driver.ProtocolDrivenCluster.run",
    "repro.fs.simulation.FullSystemSimulation.run",
    "repro.runtime.loop.TuningLoop._round",
    "repro.membership.injector.FaultInjector.generate",
    "repro.membership.injector.FaultInjector.events",
    "repro.membership.director.MembershipDirector.apply",
)

#: Modules whose ambient reads are sanctioned (see module docstring).
#: ``repro.sim.rng`` is the stream-splitting implementation itself: its
#: seeded ``SeedSequence``/``Generator``/``PCG64`` constructions look
#: like ``numpy.random`` draws to the effect summaries but are exactly
#: the sanctioned alternative this rule points users at (mirrors the
#: RPL001/RPL002/RPL110 exemption of the same module).
EXEMPT_MODULES = frozenset({"repro.contracts", "repro.sim.rng"})


@register
class ImpureAmbientRead(FlowRule):
    """Seeded runs must not read ambient process state.

    The effect analysis summarizes every function's ambient reads
    (environment variables, wall clock, global-RNG draws, mutated
    module globals) and this rule reports each read site reachable from
    a seeded entry point, naming the root that reaches it.  Functions
    the call graph cannot connect to a root are not reported — positive
    evidence only — so utility code that a seeded path never touches
    stays free to read its environment.
    """

    id = "RPL104"
    title = "ambient state read reachable from a seeded entry point"
    hint = (
        "thread the value through the scenario/config (or a named RNG "
        "stream) instead of reading process state"
    )

    def run(self) -> list[Diagnostic]:
        analysis = effect_analysis(self.project)
        graph = analysis.graph
        roots = [r for r in ROOTS if r in graph.functions]
        if not roots:
            return []
        seen: set[tuple] = set()
        for root in roots:
            for qualname in sorted(graph.reachable_from({root})):
                node = graph.functions.get(qualname)
                if node is None or node.module in EXEMPT_MODULES:
                    # Constructor edges point at class qualnames; their
                    # __init__ bodies are separate nodes already covered.
                    continue
                summary = analysis.summaries[qualname]
                for read in summary.reads:
                    key = (read.path, read.line, read.col, read.detail)
                    if key in seen:
                        continue
                    seen.add(key)
                    where = (
                        "" if qualname == root else f" (in {qualname})"
                    )
                    self.report(
                        read.path,
                        read.line,
                        read.col,
                        f"{read.kind} read of {read.detail} is reachable "
                        f"from seeded entry point {root}{where}",
                    )
        return sorted(self.diagnostics)
