"""Whole-program analysis for ``repro-lint``: the ``flow`` subpackage.

PR 1's rules are per-file AST visitors; the bugs that actually corrupt a
reproduction are *cross-function*: an RNG stream leaking between classes,
simulated-seconds flowing into tick arithmetic, or interval/ownership
state mutated around the contract layer.  This subpackage grows the
linter into an interprocedural analysis framework:

- :mod:`~repro.lint.flow.symbols` — a project-wide symbol table and
  import resolver (relative imports, ``__init__`` re-exports);
- :mod:`~repro.lint.flow.callgraph` — a call-graph builder with
  best-effort receiver-type inference; calls it cannot resolve degrade
  to an explicit "unknown" bucket rather than guessed edges;
- :mod:`~repro.lint.flow.dataflow` — a forward data-flow engine: each
  analysis collects symbolic *atom* constraints per function and the
  shared solver expands them to a fixpoint across function boundaries;
- the three RPL1xx analyses built on top:
  :mod:`~repro.lint.flow.rng_provenance` (RPL101),
  :mod:`~repro.lint.flow.units` (RPL102),
  :mod:`~repro.lint.flow.mutation` (RPL103);
- :mod:`~repro.lint.flow.cache` — an on-disk content-hash cache so warm
  full-tree runs skip parsing and analysis entirely.

The entry point is :func:`analyze_project`, called by the engine with
every parsed file; flow rules analyze only the files that map into the
``repro`` package (everything else has no module identity to resolve).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..diagnostics import Diagnostic
from .symbols import Project


def build_project(contexts: Iterable) -> Project:
    """A :class:`Project` over the package files among ``contexts``."""
    return Project([ctx for ctx in contexts if ctx.in_package])


def analyze_project(
    contexts: Sequence,
    rules: Sequence[type] | None = None,
) -> list[Diagnostic]:
    """Run the selected flow rules over ``contexts`` (parsed files).

    ``rules`` is a sequence of :class:`~repro.lint.rules.FlowRule`
    subclasses (default: every registered flow rule).  Suppression
    comments are honored per file, exactly as for per-file rules.
    """
    from ..rules import all_flow_rules

    contexts = list(contexts)
    project = build_project(contexts)
    if not project.modules:
        return []
    suppressions = {ctx.path: ctx.suppressions for ctx in contexts}
    found: list[Diagnostic] = []
    for rule_cls in rules if rules is not None else all_flow_rules():
        analysis = rule_cls(project)
        for diagnostic in analysis.run():
            index = suppressions.get(diagnostic.path)
            if index is not None and index.suppresses(diagnostic):
                continue
            found.append(diagnostic)
    return sorted(found)
