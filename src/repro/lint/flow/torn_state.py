"""RPL106 — contract-protected state mutated before a reachable raise.

A ``@checks_invariants`` mutator promises its class invariants hold on
*every* exit.  The contract wrapper re-validates on successful return —
but an exception path skips the wrapper's check and, worse, skips the
caller's assumption that a failed call changed nothing.  A mutator that
writes protected state and *then* validates its arguments leaves the
object torn when validation raises: ``MappedInterval.add_server`` with a
bad share fraction must not have already doubled the partition count.

The rule combines three existing pieces of evidence:

- *which attributes are protected* comes from RPL103's machinery — the
  ``self.<attr>`` reads of the class validator
  (``check_invariants``/``check_consistency``);
- *which methods promise atomicity* are those carrying a contract
  decorator (``@checks_invariants``/``@preserves``/``@invariant``);
- *which calls write protected state* comes from the effect analysis:
  a ``self.helper()`` call counts as a write when the callee's
  transitively-propagated ``all_self_writes`` (intra-class closure)
  intersects the protected set — ``add_server`` tears state through
  ``self.repartition()``, not through a direct store.

Write tracking uses *may* semantics (a write on any path taints the
raise) while raises are only reported when they escape: ``raise
AssertionError`` (unreachable-branch markers) and raises inside ``try``
blocks with handlers are exempt.  The fix is validate-then-mutate:
hoist every argument check above the first protected write.
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic
from ..rules import FlowRule, dotted_name, register
from .callgraph import FunctionNode
from .effects import (
    EffectAnalysis,
    effect_analysis,
    iter_own_statements,
    raise_escapes,
    written_self_attr,
)
from .mutation import CONTRACT_DECORATORS, _protected_attrs
from .symbols import Module

#: Layers whose contract-decorated mutators must be exception-atomic.
LAYERS = ("core", "cluster", "fs", "membership")


@register
class MutateThenRaise(FlowRule):
    """Contract-decorated mutators must validate before they mutate.

    When a mutator raises after writing validator-read state (directly
    or through an intra-class helper), the exception path publishes a
    half-applied transition: the caller catches the error believing
    nothing changed, the contract wrapper never re-validates, and the
    torn object poisons every later step of a seeded run.  Reorder the
    method so all argument/legality raises precede the first protected
    write.
    """

    id = "RPL106"
    title = "protected state written before a reachable raise"
    hint = (
        "hoist the validation raise above the first write (or helper "
        "call that writes) so a failed mutator leaves the object intact"
    )

    def run(self) -> list[Diagnostic]:
        analysis = effect_analysis(self.project)
        graph = analysis.graph
        for info in self.project.iter_classes():
            parts = info.module.split(".")
            if len(parts) < 2 or parts[1] not in LAYERS:
                continue
            protected = _protected_attrs(info)
            if not protected:
                continue
            for method in sorted(info.methods):
                qualname = f"{info.qualname}.{method}"
                fn = graph.functions.get(qualname)
                if fn is None or not _is_contract_mutator(fn):
                    continue
                module = self.project.modules[fn.module]
                walker = _TornWalker(self, analysis, module, fn, protected)
                walker.walk(fn.node.body, None, in_try=False)
        return sorted(self.diagnostics)


def _is_contract_mutator(fn: FunctionNode) -> bool:
    return any(
        decorator.rsplit(".", 1)[-1] in CONTRACT_DECORATORS
        for decorator in fn.decorators
    )


class _TornWalker:
    """Order-aware walk tracking whether protected state may be written.

    The write state is ``None`` (clean so far) or ``(line, what)``
    describing the first tainting write, which the report names so the
    reader sees both ends of the torn window.
    """

    def __init__(
        self,
        rule: MutateThenRaise,
        analysis: EffectAnalysis,
        module: Module,
        fn: FunctionNode,
        protected: frozenset,
    ) -> None:
        self.rule = rule
        self.analysis = analysis
        self.module = module
        self.fn = fn
        self.protected = protected
        self._reported: set[tuple] = set()

    # ------------------------------------------------------------------
    def walk(self, stmts, written, in_try: bool):
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, ast.Raise):
                if written and not in_try and raise_escapes(stmt):
                    self._report(stmt, written)
                continue
            if isinstance(stmt, ast.If):
                then = self.walk(stmt.body, written, in_try)
                other = self.walk(stmt.orelse, written, in_try)
                written = written or then or other
                continue
            if isinstance(stmt, (ast.For, ast.While)):
                # A raise in iteration N follows the writes of 1..N-1:
                # walk the body already tainted by anything it may write.
                body_written = written or self._may_write(stmt.body)
                self.walk(stmt.body, body_written, in_try)
                written = body_written
                continue
            if isinstance(stmt, ast.Try):
                guarded = in_try or bool(stmt.handlers)
                body_written = self.walk(stmt.body, written, guarded)
                for handler in stmt.handlers:
                    self.walk(handler.body, body_written, in_try)
                body_written = self.walk(stmt.orelse, body_written, in_try)
                written = self.walk(stmt.finalbody, body_written, in_try)
                continue
            if isinstance(stmt, ast.With):
                written = self.walk(stmt.body, written, in_try)
                continue
            written = written or self._stmt_write(stmt)
            if isinstance(stmt, ast.Return):
                break
        return written

    # ------------------------------------------------------------------
    def _stmt_write(self, stmt: ast.stmt):
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            attr = written_self_attr(target)
            if attr is not None and attr in self.protected:
                return (stmt.lineno, f"self.{attr}")
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if len(chain) != 2 or chain[0] != "self":
                continue
            callee = self.analysis.graph.resolve_site(self.fn, node)
            if callee is None:
                continue
            summary = self.analysis.summaries.get(callee)
            if summary is None:
                continue
            touched = summary.all_self_writes & self.protected
            if touched:
                what = ", ".join(f"self.{a}" for a in sorted(touched))
                return (node.lineno, f"self.{chain[1]}() (writes {what})")
        return None

    def _may_write(self, stmts):
        for stmt in iter_own_statements(stmts):
            write = self._stmt_write(stmt)
            if write:
                return write
        return None

    def _report(self, stmt: ast.Raise, written) -> None:
        key = (stmt.lineno, stmt.col_offset)
        if key in self._reported:
            return
        self._reported.add(key)
        line, what = written
        self.rule.report(
            self.module.ctx.path,
            stmt.lineno,
            stmt.col_offset,
            f"{what} on line {line} mutates contract-protected state "
            f"before this raise — the exception path leaves the object "
            f"torn; validate before mutating",
        )
