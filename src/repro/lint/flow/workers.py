"""Worker-boundary discovery for the concurrency rules (RPL107-RPL110).

A *worker-boundary function* is one whose body executes in a child
process.  This module finds them from two kinds of positive evidence:

- an explicit ``@worker_entry`` marker
  (:func:`repro.sweep.api.worker_entry`), for entry points that reach a
  pool through indirection the call graph cannot follow;
- a callable handed to a process-pool API the index recognizes:
  ``multiprocessing.Pool`` methods (``map`` / ``imap`` /
  ``imap_unordered`` / ``starmap`` / ``apply`` and their ``_async``
  forms), ``ProcessPoolExecutor.submit``/``map``,
  ``multiprocessing.Process(target=...)``, and the ``initializer=`` of
  either pool constructor.  Pool objects are tracked through locals
  (``pool = ctx.Pool(...)``, ``with Pool(...) as pool:``) and spawn
  contexts through ``multiprocessing.get_context``.

Alongside the entries themselves, the index builds what the four rules
share:

- every *submission site* (which callable, which API, which argument
  expressions cross the process boundary) — RPL108's raw material;
- the project's module-level **mutable-container globals** (dict/list/
  set/deque/... bindings at module scope) and ``functools.lru_cache``
  functions — the parent-process memo state RPL107 polices;
- the **process-cache registry**: state sanctioned by
  ``register_process_cache`` — a registered ``F.cache_clear`` exempts
  function ``F``, a registered ``G.clear`` exempts global ``G``, and a
  registered *hook function* exempts every module global its body
  touches (the hook is statically visible evidence that the state is
  wiped at every worker start).

Everything is positive evidence: a pool held in a container, a callable
passed through a variable, or a receiver the type inference cannot pin
contributes nothing.  One index is memoized per project, like
:func:`~repro.lint.flow.effects.effect_analysis`.
"""

from __future__ import annotations

import ast
import weakref
from dataclasses import dataclass

from ..rules import dotted_name
from .callgraph import FunctionNode, iter_own_calls
from .effects import EffectAnalysis, effect_analysis, iter_own_statements
from .symbols import Module, Project

#: Qualified names of the worker-entry marker (direct and re-exported).
WORKER_ENTRY_MARKERS = frozenset({
    "repro.sweep.api.worker_entry",
    "repro.sweep.worker_entry",
})

#: Qualified names of the cache-registration hook.
CACHE_REGISTRARS = frozenset({
    "repro.sweep.api.register_process_cache",
    "repro.sweep.register_process_cache",
})

#: ``multiprocessing.Pool``-style constructors.
POOL_CTORS = frozenset({
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
})

#: ``concurrent.futures`` process-pool constructors.
FUTURES_CTORS = frozenset({
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
})

#: ``multiprocessing.Process``-style constructors (callable in ``target=``).
PROCESS_CTORS = frozenset({
    "multiprocessing.Process",
    "multiprocessing.process.Process",
})

#: ``multiprocessing.get_context`` — its result builds pools/processes too.
CONTEXT_FACTORIES = frozenset({"multiprocessing.get_context"})

#: Pool methods whose first positional argument runs in a worker.
POOL_METHODS = frozenset({
    "map", "imap", "imap_unordered", "starmap",
    "map_async", "starmap_async", "apply", "apply_async",
})

#: Executor methods whose first positional argument runs in a worker.
FUTURES_METHODS = frozenset({"submit", "map"})

#: Module-global container constructors whose instances are mutable.
MUTABLE_CONTAINER_CTORS = frozenset({
    "dict", "list", "set",
    "defaultdict", "deque", "Counter", "OrderedDict",
    "WeakSet", "WeakKeyDictionary", "WeakValueDictionary",
})

#: Memoizing decorators whose cache lives in parent-process memory.
MEMO_DECORATORS = frozenset({
    "functools.lru_cache",
    "functools.cache",
})


@dataclass(frozen=True)
class SubmissionSite:
    """One place a callable (plus arguments) crosses a process boundary."""

    caller: str      #: qualname of the function containing the call
    module: str
    path: str
    line: int
    col: int
    api: str         #: e.g. ``multiprocessing.Pool.imap_unordered``
    #: Resolved qualname of the submitted callable (None if unresolved).
    target: str | None
    #: ``function`` / ``local-function`` / ``lambda`` / ``unresolved``.
    target_kind: str
    #: The full call node (rules inspect boundary-crossing arguments).
    call: ast.Call


@dataclass(frozen=True)
class GlobalBinding:
    """A module-level mutable-container global."""

    qualname: str
    path: str
    line: int


class WorkerIndex:
    """Worker entries, submission sites, and process-state inventories."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.analysis: EffectAnalysis = effect_analysis(project)
        self.graph = self.analysis.graph
        #: worker-entry qualname -> human-readable evidence.
        self.entries: dict[str, str] = {}
        self.submissions: list[SubmissionSite] = []
        #: qualname -> binding, for module-level mutable containers.
        self.mutable_globals: dict[str, GlobalBinding] = {}
        #: qualnames of functools-memoized project functions.
        self.memo_functions: set[str] = set()
        #: functions sanctioned via a registered ``cache_clear``.
        self.exempt_functions: set[str] = set()
        #: globals sanctioned via ``.clear`` registration or hook bodies.
        self.exempt_globals: set[str] = set()

        for module in project.modules.values():
            self._index_module_globals(module)
        self._index_functions()
        self._index_registrations()

    # ------------------------------------------------------------------
    # Module-level state
    # ------------------------------------------------------------------
    def _index_module_globals(self, module: Module) -> None:
        for stmt in module.ctx.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            else:
                continue
            if not isinstance(target, ast.Name):
                continue
            if self._is_mutable_container(value):
                qualname = f"{module.name}.{target.id}"
                self.mutable_globals[qualname] = GlobalBinding(
                    qualname=qualname,
                    path=module.ctx.path,
                    line=stmt.lineno,
                )

    @staticmethod
    def _is_mutable_container(value: ast.expr) -> bool:
        if isinstance(
            value,
            (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
             ast.SetComp),
        ):
            return True
        if isinstance(value, ast.Call):
            chain = dotted_name(value.func)
            return bool(chain) and chain[-1] in MUTABLE_CONTAINER_CTORS
        return False

    # ------------------------------------------------------------------
    # Worker entries and submission sites
    # ------------------------------------------------------------------
    def _index_functions(self) -> None:
        for qualname, fn in self.graph.functions.items():
            if any(d in WORKER_ENTRY_MARKERS for d in fn.decorators):
                self.entries.setdefault(qualname, "marked @worker_entry")
            if any(d in MEMO_DECORATORS for d in fn.decorators):
                self.memo_functions.add(qualname)
            self._scan_submissions(fn)

    def _scan_submissions(self, fn: FunctionNode) -> None:
        module = self.project.modules.get(fn.module)
        if module is None:
            return
        pools, contexts = self._executor_locals(module, fn)
        for call in iter_own_calls(fn.node):
            ctor = self._ctor_kind(module, call, contexts)
            if ctor is not None:
                self._note_initializer(module, fn, call, ctor)
                if ctor in ("process",):
                    self._note_target(module, fn, call, ctor)
                continue
            chain = dotted_name(call.func)
            if len(chain) < 2:
                continue
            receiver, method = ".".join(chain[:-1]), chain[-1]
            kinds = pools.get(receiver, frozenset())
            if "pool" in kinds and method in POOL_METHODS:
                self._note_submission(
                    module, fn, call, f"multiprocessing.Pool.{method}",
                    call.args[0] if call.args else None,
                )
            elif "futures" in kinds and method in FUTURES_METHODS:
                self._note_submission(
                    module, fn, call, f"ProcessPoolExecutor.{method}",
                    call.args[0] if call.args else None,
                )

    def _executor_locals(
        self, module: Module, fn: FunctionNode
    ) -> tuple[dict[str, set[str]], set[str]]:
        """Locals bound to pools (name -> kinds) and to spawn contexts.

        The scan is flow-insensitive, so a local rebound across branches
        (``as pool`` under both executors) accumulates *every* kind it
        ever held rather than keeping only the last binding.
        """
        contexts: set[str] = set()
        pools: dict[str, set[str]] = {}

        def note_binding(name: str, value: ast.expr) -> None:
            if not isinstance(value, ast.Call):
                return
            chain = dotted_name(value.func)
            if not chain:
                return
            qualified = self.project.qualify_chain(module, chain)
            if qualified in CONTEXT_FACTORIES:
                contexts.add(name)
                return
            kind = self._ctor_kind(module, value, contexts)
            if kind in ("pool", "futures"):
                pools.setdefault(name, set()).add(kind)

        for stmt in iter_own_statements(fn.node.body):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                note_binding(stmt.targets[0].id, stmt.value)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if isinstance(item.optional_vars, ast.Name):
                        note_binding(item.optional_vars.id, item.context_expr)
        return pools, contexts

    def _ctor_kind(
        self, module: Module, call: ast.Call, contexts: set[str]
    ) -> str | None:
        """``pool`` / ``futures`` / ``process`` when ``call`` builds one."""
        chain = dotted_name(call.func)
        if not chain:
            return None
        qualified = self.project.qualify_chain(module, chain)
        if qualified in POOL_CTORS:
            return "pool"
        if qualified in FUTURES_CTORS:
            return "futures"
        if qualified in PROCESS_CTORS:
            return "process"
        # ctx.Pool(...) / ctx.Process(...) on a tracked get_context local.
        if len(chain) == 2 and chain[0] in contexts:
            if chain[1] == "Pool":
                return "pool"
            if chain[1] == "Process":
                return "process"
        return None

    def _note_initializer(
        self, module: Module, fn: FunctionNode, call: ast.Call, ctor: str
    ) -> None:
        for keyword in call.keywords:
            if keyword.arg == "initializer":
                api = {
                    "pool": "multiprocessing.Pool(initializer=)",
                    "futures": "ProcessPoolExecutor(initializer=)",
                    "process": "multiprocessing.Process(initializer=)",
                }[ctor]
                self._note_submission(module, fn, call, api, keyword.value)

    def _note_target(
        self, module: Module, fn: FunctionNode, call: ast.Call, ctor: str
    ) -> None:
        for keyword in call.keywords:
            if keyword.arg == "target":
                self._note_submission(
                    module, fn, call,
                    "multiprocessing.Process(target=)", keyword.value,
                )

    def _note_submission(
        self,
        module: Module,
        fn: FunctionNode,
        call: ast.Call,
        api: str,
        target_expr: ast.expr | None,
    ) -> None:
        target, kind = self._resolve_target(module, fn, target_expr)
        site = SubmissionSite(
            caller=fn.qualname,
            module=fn.module,
            path=module.ctx.path,
            line=call.lineno,
            col=call.col_offset,
            api=api,
            target=target,
            target_kind=kind,
            call=call,
        )
        self.submissions.append(site)
        if target is not None and kind in ("function", "local-function"):
            self.entries.setdefault(
                target, f"passed to {api} in {fn.qualname}"
            )

    def _resolve_target(
        self,
        module: Module,
        fn: FunctionNode,
        expr: ast.expr | None,
    ) -> tuple[str | None, str]:
        if expr is None:
            return None, "unresolved"
        if isinstance(expr, ast.Lambda):
            return None, "lambda"
        chain = dotted_name(expr)
        if not chain:
            return None, "unresolved"
        # A nested function defined in this very caller.
        if len(chain) == 1:
            nested = f"{fn.qualname}.<locals>.{chain[0]}"
            if nested in self.graph.functions:
                return nested, "local-function"
        symbol = self.project.resolve_dotted(module, chain)
        if symbol is not None and symbol.kind == "function":
            return symbol.qualname, "function"
        return None, "unresolved"

    # ------------------------------------------------------------------
    # The process-cache registry
    # ------------------------------------------------------------------
    def _index_registrations(self) -> None:
        hooks: set[str] = set()
        for module in self.project.modules.values():
            for node in ast.walk(module.ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                chain = dotted_name(node.func)
                if not chain:
                    continue
                qualified = self.project.qualify_chain(module, chain)
                symbol = self.project.resolve_dotted(module, chain)
                name = symbol.qualname if symbol is not None else qualified
                if name not in CACHE_REGISTRARS:
                    continue
                if len(node.args) == 1:
                    hook = self._classify_registration(module, node.args[0])
                    if hook is not None:
                        hooks.add(hook)
        # @register_process_cache used as a decorator marks the function
        # itself as a hook.
        for qualname, fn in self.graph.functions.items():
            if any(d in CACHE_REGISTRARS for d in fn.decorators):
                hooks.add(qualname)
        for hook in hooks:
            self._exempt_hook_state(hook)

    def _classify_registration(
        self, module: Module, arg: ast.expr
    ) -> str | None:
        """Apply one registration arg; returns a hook qualname if any.

        ``F.cache_clear`` exempts memo function ``F``; ``G.clear``
        exempts global ``G``; a bare function reference is a hook whose
        body's globals are exempted by the caller.
        """
        chain = dotted_name(arg)
        if not chain:
            return None
        if len(chain) >= 2 and chain[-1] == "cache_clear":
            symbol = self.project.resolve_dotted(module, chain[:-1])
            if symbol is not None and symbol.kind == "function":
                self.exempt_functions.add(symbol.qualname)
            return None
        if len(chain) >= 2 and chain[-1] == "clear":
            symbol = self.project.resolve_dotted(module, chain[:-1])
            if symbol is not None and symbol.kind == "value":
                self.exempt_globals.add(symbol.qualname)
            return None
        symbol = self.project.resolve_dotted(module, chain)
        if symbol is not None and symbol.kind == "function":
            return symbol.qualname
        return None

    def _exempt_hook_state(self, hook: str) -> None:
        """Exempt every module global a registered hook's body touches."""
        fn = self.graph.functions.get(hook)
        if fn is None:
            return
        module = self.project.modules.get(fn.module)
        if module is None:
            return
        for node in ast.walk(fn.node):
            chain = dotted_name(node) if isinstance(
                node, (ast.Name, ast.Attribute)
            ) else ()
            if not chain:
                continue
            for end in range(1, len(chain) + 1):
                symbol = self.project.resolve_dotted(module, chain[:end])
                if symbol is not None and symbol.kind == "value":
                    self.exempt_globals.add(symbol.qualname)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def reachable(self) -> dict[str, str]:
        """Function qualname -> the worker entry that reaches it."""
        out: dict[str, str] = {}
        for entry in sorted(self.entries):
            for qualname in self.graph.reachable_from({entry}):
                out.setdefault(qualname, entry)
        return out


_INDICES: "weakref.WeakKeyDictionary[Project, WorkerIndex]" = (
    weakref.WeakKeyDictionary()
)


def worker_index(project: Project) -> WorkerIndex:
    """The (memoized) worker-boundary index for ``project``."""
    index = _INDICES.get(project)
    if index is None:
        index = WorkerIndex(project)
        _INDICES[project] = index
    return index
