"""RPL102 — ticks/seconds unit consistency.

``repro.core`` does exact integer arithmetic on a 2^48-tick ring while
the simulator and metrics layers speak float seconds.  A tick count that
leaks into a latency average (or a seconds value into interval math)
does not crash — it silently skews shares and breaks the half-occupancy
invariant in ways that only statistical tests notice.

Units come from a lightweight annotation convention (``repro.units``):
any parameter, attribute, or return annotated ``Seconds`` or ``Ticks``
(optionally inside ``list[...]``/``dict[..., ...]``) seeds a unit atom;
the shared data-flow engine then carries units through assignments,
attributes, calls, and returns.  The rule fires only on *definite*
mismatches — both operands resolve to exactly one unit and the units
differ — on four site kinds:

- ``+``/``-`` arithmetic mixing seconds with ticks,
- comparisons between seconds and ticks,
- arguments whose units contradict the callee's annotation (this is the
  cross-function check), and
- returned values contradicting the declared return annotation.

Multiplication and division *erase* units (a tick/tick ratio is a
fraction; ``seconds * RESOLUTION`` is a deliberate conversion), except
that scaling by a literal constant preserves the other operand's unit.
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic
from ..rules import FlowRule, dotted_name, register
from .dataflow import (
    Atom,
    Lattice,
    SymbolicEvaluator,
    container,
    finalize,
    run_evaluators,
    unit,
)
from .symbols import Project

#: The annotation convention: these names carry a unit wherever they
#: appear (canonically defined in ``repro.units``).
UNIT_NAMES = {"Seconds": "sec", "Ticks": "tick"}

_SEQUENCES = frozenset(
    {"list", "List", "tuple", "Tuple", "set", "Set", "frozenset", "deque",
     "Sequence", "Iterable", "Iterator", "Collection"}
)
_MAPPINGS = frozenset(
    {"dict", "Dict", "Mapping", "MutableMapping", "defaultdict", "Counter",
     "OrderedDict"}
)

#: Builtins that preserve the unit of their argument(s).
_UNIT_PRESERVING = frozenset({"int", "float", "abs", "round", "min", "max"})
#: Builtins that reduce a container to an element-unit value.
_UNIT_REDUCING = frozenset({"sum", "min", "max", "sorted"})


def unit_of_annotation(ann: ast.expr | None) -> Atom | None:
    """The unit atom an annotation implies, or None.

    ``Seconds`` -> sec; ``Optional[Ticks]``/``Ticks | None`` -> tick;
    ``list[Ticks]`` -> container(tick); ``dict[str, Seconds]`` ->
    container(sec) (the *values* carry the unit).
    """
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        return unit_of_annotation(ann.left) or unit_of_annotation(ann.right)
    if isinstance(ann, ast.Subscript):
        chain = dotted_name(ann.value)
        if not chain:
            return None
        head = chain[-1]
        if head in {"Optional", "Final", "Annotated", "ClassVar"}:
            inner = ann.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return unit_of_annotation(inner)
        if head in _SEQUENCES:
            inner = ann.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            found = unit_of_annotation(inner)
            if found is not None and found.kind == "unit":
                return container(found.key[0])
            return None
        if head in _MAPPINGS:
            inner = ann.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[-1]
            found = unit_of_annotation(inner)
            if found is not None and found.kind == "unit":
                return container(found.key[0])
            return None
        return None
    chain = dotted_name(ann)
    if chain and chain[-1] in UNIT_NAMES:
        return unit(UNIT_NAMES[chain[-1]])
    return None


def _only_unit(resolved) -> str | None:
    """The single definite unit of a resolved atom set, or None."""
    units = {a.key[0] for a in resolved if a.kind == "unit"}
    return next(iter(units)) if len(units) == 1 else None


_NAME = {"sec": "seconds", "tick": "ticks"}


class _UnitsEvaluator(SymbolicEvaluator):
    """Adds unit semantics and records the sites RPL102 checks."""

    def __init__(self, analysis: "UnitConsistency", *args) -> None:
        super().__init__(*args)
        self.analysis = analysis

    def seed_annotation(self, annotation):
        found = unit_of_annotation(annotation)
        if found is not None:
            return {found}
        return super().seed_annotation(annotation)

    def eval_binop(self, node, left, right):
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self.analysis.record_pair(node, left, right, self, "arithmetic")
            return left | right
        if isinstance(node.op, (ast.Mult, ast.Div, ast.FloorDiv, ast.Mod)):
            # Scaling by a literal keeps the unit; anything else erases
            # it (ratios and conversions are unit changes by design).
            if isinstance(node.right, ast.Constant):
                return left
            if isinstance(node.left, ast.Constant):
                return right
            return set()
        return set()

    def on_compare(self, node, left, rights):
        if any(
            isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq))
            for op in node.ops
        ):
            for right in rights:
                self.analysis.record_pair(node, left, right, self, "comparison")

    def wrap_elements(self, atoms):
        out = set()
        for atom in atoms:
            if atom.kind == "unit":
                out.add(container(atom.key[0]))
            else:
                out.add(atom)
        return out

    def eval_iter_element(self, iter_atoms):
        return {unit(a.key[0]) for a in iter_atoms if a.kind == "container"}

    def eval_subscript(self, node, base):
        out = set()
        for atom in base:
            if atom.kind == "container":
                out.add(unit(atom.key[0]))
            else:
                out.add(atom)
        return out

    def special_call(self, node, chain, recv_atoms, args, kwargs):
        if len(chain) == 1 and chain[0] in (_UNIT_PRESERVING | _UNIT_REDUCING):
            out: set[Atom] = set()
            for atoms in args:
                for atom in atoms:
                    if atom.kind == "container":
                        out.add(unit(atom.key[0]))
                    else:
                        out.add(atom)
            return out
        if isinstance(node.func, ast.Attribute) and node.func.attr in {
            "values", "keys", "items", "copy"
        }:
            # Mapping views keep the container's element unit.
            return set(recv_atoms)
        # Seconds(x) / Ticks(x): the NewType constructor asserts a unit.
        if len(chain) == 1 and chain[0] in UNIT_NAMES:
            return {unit(UNIT_NAMES[chain[0]])}
        return None

    def on_bound_call(self, node, qualname, fn, args, kwargs, offset):
        params = [*fn.args.posonlyargs, *fn.args.args]
        for index, atoms in enumerate(args):
            slot = index + offset
            if slot < len(params):
                expected = unit_of_annotation(params[slot].annotation)
                if expected is not None and expected.kind == "unit":
                    self.analysis.record_arg(
                        node, qualname, params[slot].arg, expected.key[0],
                        atoms, self,
                    )
        by_name = {a.arg: a for a in [*params, *fn.args.kwonlyargs]}
        for name, atoms in kwargs.items():
            arg = by_name.get(name)
            if arg is None:
                continue
            expected = unit_of_annotation(arg.annotation)
            if expected is not None and expected.kind == "unit":
                self.analysis.record_arg(
                    node, qualname, name, expected.key[0], atoms, self
                )

    def on_return(self, node, atoms):
        if self.fn is None:
            return
        declared = unit_of_annotation(self.fn.returns)
        if declared is not None and declared.kind == "unit":
            self.analysis.record_return(
                node, self.qualname, declared.key[0], atoms, self
            )


@register
class UnitConsistency(FlowRule):
    """Simulated-seconds and ring-tick values must not mix.

    The reproduction keeps two clocks: float seconds in the event engine
    and exact 2^48-ring ticks in ``repro.core``.  Mixing them type-checks
    (both are numbers) and runs, but silently corrupts shares, latencies,
    or boundary arithmetic.  Signatures annotated with ``Seconds`` /
    ``Ticks`` from ``repro.units`` declare which clock a value belongs
    to; this rule propagates those units through the whole program and
    flags definite cross-unit ``+``/``-``/comparisons, call arguments
    contradicting the callee's annotation, and returns contradicting the
    declared return type.  Convert explicitly at the boundary instead
    (multiply/divide by a resolution constant — ``*``/``/`` erase units
    by design).
    """

    id = "RPL102"
    title = "time-unit consistency: don't mix Seconds with Ticks"
    hint = (
        "convert at the boundary (e.g. fractions of RESOLUTION) or fix "
        "the Seconds/Ticks annotation that is wrong"
    )

    def __init__(self, project: Project) -> None:
        super().__init__(project)
        #: (path, line, col, kind) -> site record (dedup across 2-pass loops).
        self.pairs: dict[tuple, dict] = {}
        self.args: dict[tuple, dict] = {}
        self.returns: dict[tuple, dict] = {}

    # -- collection hooks ---------------------------------------------
    def record_pair(self, node, left, right, ev, kind: str) -> None:
        """Remember a two-operand site (arithmetic or comparison)."""
        key = (ev.module.ctx.path, node.lineno, node.col_offset, kind)
        site = self.pairs.setdefault(
            key, {"left": set(), "right": set(), "kind": kind}
        )
        site["left"] |= left
        site["right"] |= right

    def record_arg(self, node, qualname, arg_name, expected, atoms, ev) -> None:
        """Remember an argument site with the parameter's declared unit."""
        key = (ev.module.ctx.path, node.lineno, node.col_offset, arg_name)
        site = self.args.setdefault(
            key, {"callee": qualname, "expected": expected, "atoms": set()}
        )
        site["atoms"] |= atoms

    def record_return(self, node, qualname, declared, atoms, ev) -> None:
        """Remember a return site with the function's declared unit."""
        key = (ev.module.ctx.path, node.lineno, node.col_offset, "return")
        site = self.returns.setdefault(
            key, {"func": qualname, "declared": declared, "atoms": set()}
        )
        site["atoms"] |= atoms

    # -- analysis ------------------------------------------------------
    def run(self) -> list[Diagnostic]:
        lattice = Lattice()
        run_evaluators(
            self.project,
            lambda module, qualname, fn, owner: _UnitsEvaluator(
                self, self.project, lattice, module, qualname, fn, owner
            ),
        )
        finalize(lattice)
        for key in sorted(self.pairs):
            path, line, col, kind = key
            site = self.pairs[key]
            left = _only_unit(lattice.resolve(site["left"]))
            right = _only_unit(lattice.resolve(site["right"]))
            if left is not None and right is not None and left != right:
                self.report(
                    path, line, col,
                    f"{kind} mixes {_NAME[left]} (left) with {_NAME[right]} "
                    f"(right)",
                )
        for key in sorted(self.args):
            path, line, col, arg_name = key
            site = self.args[key]
            got = _only_unit(lattice.resolve(site["atoms"]))
            if got is not None and got != site["expected"]:
                self.report(
                    path, line, col,
                    f"argument '{arg_name}' of {site['callee']} expects "
                    f"{_NAME[site['expected']]} but receives {_NAME[got]}",
                )
        for key in sorted(self.returns):
            path, line, col, _ = key
            site = self.returns[key]
            got = _only_unit(lattice.resolve(site["atoms"]))
            if got is not None and got != site["declared"]:
                self.report(
                    path, line, col,
                    f"{site['func']} declares {_NAME[site['declared']]} but "
                    f"returns {_NAME[got]} (unconverted)",
                )
        return sorted(self.diagnostics)


__all__ = ["UnitConsistency", "unit_of_annotation", "UNIT_NAMES"]
