"""RPL110 — worker randomness outside per-cell stream splitting.

A sweep cell's result must be a pure function of its (seed, params)
payload.  Randomness reachable from a worker entry therefore has exactly
one legitimate source: streams split from the **cell's own seed**
(:class:`repro.sim.rng.StreamFactory` children, named per purpose).
Anything else re-couples cells to process state or to each other:

- **global-RNG draws** (``random.random``, ``numpy.random.*``) — shared
  interpreter state; results depend on how many draws other cells made
  in the same worker process;
- **constant-seed factories** (``StreamFactory(0)``,
  ``random.Random(42)``) — every cell sees the *same* stream, silently
  correlating cells that the statistics assume independent.

Both are located by closing the worker-entry reachability set (from the
:mod:`~repro.lint.flow.workers` index) over the effect summaries'
``global-rng`` reads and over constructor calls with literal integer
seeds.  Seeds threaded through parameters — ``StreamFactory(seed)``,
``StreamFactory(payload["seed"])`` — are exactly the sanctioned shape
and contribute nothing.
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic
from ..rules import FlowRule, dotted_name, register
from .callgraph import iter_own_calls
from .workers import worker_index

#: Seeded-stream factories whose *constant-literal* seeding is banned
#: on worker paths (constant => identical streams in every cell).
SEEDED_FACTORIES = frozenset({
    "repro.sim.rng.StreamFactory",
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.Generator",
})

#: ``repro.sim.rng`` is the sanctioned stream-splitting implementation:
#: its seeded ``SeedSequence``/``Generator`` constructions are the very
#: mechanism this rule points users at (mirrors the RPL001/RPL002
#: per-file exemption of the same module).
EXEMPT_MODULES = frozenset({"repro.sim.rng"})


@register
class WorkerRngSplit(FlowRule):
    """Worker randomness must be split from the cell seed.

    Reports global-RNG reads and constant-literal-seeded RNG factories
    in any function reachable from a worker entry.
    """

    id = "RPL110"
    title = "worker randomness not derived from the per-cell seed"
    hint = (
        "derive streams from the cell's seed — StreamFactory(seed)"
        ".stream(name) — so cells stay independent and reproducible"
    )

    def run(self) -> list[Diagnostic]:
        index = worker_index(self.project)
        reached = index.reachable()
        if not reached:
            return []
        seen: set[tuple] = set()
        for qualname in sorted(reached):
            fn = index.graph.functions.get(qualname)
            if fn is None or fn.module in EXEMPT_MODULES:
                continue
            entry = reached[qualname]
            summary = index.analysis.summaries[qualname]
            for read in summary.reads:
                if read.kind != "global-rng":
                    continue
                key = (read.path, read.line, read.col)
                if key in seen:
                    continue
                seen.add(key)
                self.report(
                    read.path, read.line, read.col,
                    f"global-RNG draw ({read.detail}) is reachable from "
                    f"worker entry {entry} (in {qualname}); draws couple "
                    f"cells through shared interpreter state",
                )
            self._scan_constant_seeds(index, fn, entry, seen)
        return sorted(self.diagnostics)

    # ------------------------------------------------------------------
    def _scan_constant_seeds(self, index, fn, entry: str, seen) -> None:
        module = index.project.modules.get(fn.module)
        if module is None:
            return
        for call in iter_own_calls(fn.node):
            chain = dotted_name(call.func)
            if not chain:
                continue
            symbol = index.project.resolve_dotted(module, chain)
            qualified = (
                symbol.qualname
                if symbol is not None
                else index.project.qualify_chain(module, chain)
            )
            if qualified not in SEEDED_FACTORIES:
                continue
            seed_arg = self._seed_argument(call)
            if seed_arg is None:
                continue
            if isinstance(seed_arg, ast.Constant) and isinstance(
                seed_arg.value, int
            ):
                key = (module.ctx.path, call.lineno, call.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                self.report(
                    module.ctx.path, call.lineno, call.col_offset,
                    f"{qualified}({seed_arg.value!r}) with a constant seed "
                    f"is reachable from worker entry {entry} "
                    f"(in {fn.qualname}); every cell would draw the same "
                    f"stream",
                )

    @staticmethod
    def _seed_argument(call: ast.Call) -> ast.expr | None:
        if call.args:
            return call.args[0]
        for keyword in call.keywords:
            if keyword.arg == "seed":
                return keyword.value
        return None
