"""RPL107 — fork-divergent state reachable from worker entries.

A worker process must compute its result from its *inputs*, never from
what the parent process happened to accumulate.  State that differs
between a forked child (inherits everything) and a spawned child (starts
empty) makes results depend on the platform's start method and on what
ran in the parent first — the exact nondeterminism the sweep engine's
byte-identical-merge guarantee forbids.

Three kinds of positive evidence, all rooted at worker entries (the
:mod:`~repro.lint.flow.workers` index) and closed over the call graph:

- a **read of a rebindable module global** (one some function rebinds
  via ``global``) — the value seen depends on process history;
- a **write to a module-level mutable container** (dict/list/set/...)
  — worker-side mutation of shared-looking state that is actually
  per-process and silently diverges between start methods;
- a **call to a ``functools.lru_cache``/``cache`` function** — the memo
  lives in parent memory under fork and is empty under spawn.

Sanctioned state is exempt: a global whose ``.clear`` (or a hook
touching it) is registered with
:func:`repro.sweep.api.register_process_cache`, and a memo function
whose ``cache_clear`` is registered — registration is statically
visible proof that every worker initializer resets the state before
computing (see :func:`repro.sweep.api.clear_process_caches`).
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic
from ..rules import FlowRule, dotted_name, register
from .callgraph import iter_own_calls
from .workers import worker_index


def iter_own_nodes(fn: ast.AST):
    """All AST nodes lexically inside ``fn`` but not inside a nested def."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))

#: Modules whose state handling is the sanctioning mechanism itself.
EXEMPT_MODULES = frozenset({"repro.sweep.api", "repro.contracts"})

#: Container methods that mutate the receiver in place.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "clear", "pop",
    "popitem", "remove", "discard", "setdefault", "appendleft",
})


@register
class ForkDivergentState(FlowRule):
    """Worker-reachable code must not depend on parent-process memos.

    For every function reachable from a worker entry, this rule reports
    reads of ``global``-rebound module globals, in-place mutation of
    module-level containers, and calls into ``functools``-memoized
    functions — unless the state is registered with
    ``register_process_cache`` (and therefore wiped at worker start).
    """

    id = "RPL107"
    title = "fork-divergent state reachable from a worker entry"
    hint = (
        "pass the value through the worker payload, or register the "
        "cache with repro.sweep.api.register_process_cache so worker "
        "initializers clear it"
    )

    def run(self) -> list[Diagnostic]:
        index = worker_index(self.project)
        reached = index.reachable()
        if not reached:
            return []
        seen: set[tuple] = set()
        for qualname in sorted(reached):
            fn = index.graph.functions.get(qualname)
            if fn is None or fn.module in EXEMPT_MODULES:
                continue
            entry = reached[qualname]
            summary = index.analysis.summaries[qualname]
            for read in summary.reads:
                if read.kind != "mutable-global":
                    continue
                if read.detail in index.exempt_globals:
                    continue
                self._report_once(
                    seen, read.path, read.line, read.col,
                    f"read of rebindable module global {read.detail} is "
                    f"reachable from worker entry {entry} (in {qualname}); "
                    f"its value depends on parent-process history",
                )
            self._scan_container_writes(index, fn, entry, seen)
            self._scan_memo_calls(index, fn, entry, seen)
        return sorted(self.diagnostics)

    # ------------------------------------------------------------------
    def _scan_container_writes(self, index, fn, entry: str, seen) -> None:
        module = index.project.modules.get(fn.module)
        if module is None:
            return
        path = module.ctx.path

        def global_target(expr: ast.expr) -> str | None:
            chain = dotted_name(expr)
            if not chain:
                return None
            symbol = index.project.resolve_dotted(module, chain)
            if (
                symbol is not None
                and symbol.kind == "value"
                and symbol.qualname in index.mutable_globals
                and symbol.qualname not in index.exempt_globals
            ):
                return symbol.qualname
            return None

        for node in iter_own_nodes(fn.node):
            # G.append(...) / G.update(...) / ...
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
            ):
                target = global_target(node.func.value)
                if target is not None:
                    self._report_once(
                        seen, path, node.lineno, node.col_offset,
                        f"in-place mutation of module global {target} "
                        f"({node.func.attr}) is reachable from worker "
                        f"entry {entry} (in {fn.qualname})",
                    )
            # G[...] = ... / del G[...] / G |= ...
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, (ast.Assign, ast.Delete))
                    else [node.target]
                )
                for tgt in targets:
                    base = tgt
                    while isinstance(base, ast.Subscript):
                        base = base.value
                    if base is tgt and not isinstance(node, ast.AugAssign):
                        continue  # plain rebind of a local, not a store
                    target = global_target(base)
                    if target is not None:
                        self._report_once(
                            seen, path, node.lineno, node.col_offset,
                            f"store into module global {target} is "
                            f"reachable from worker entry {entry} "
                            f"(in {fn.qualname})",
                        )

    def _scan_memo_calls(self, index, fn, entry: str, seen) -> None:
        if not index.memo_functions:
            return
        module = index.project.modules.get(fn.module)
        if module is None:
            return
        for call in iter_own_calls(fn.node):
            callee = index.graph.resolve_site(fn, call)
            if (
                callee in index.memo_functions
                and callee not in index.exempt_functions
            ):
                self._report_once(
                    seen, module.ctx.path, call.lineno, call.col_offset,
                    f"call to functools-memoized {callee} is reachable "
                    f"from worker entry {entry} (in {fn.qualname}); the "
                    f"memo differs between fork and spawn",
                )

    def _report_once(self, seen, path, line, col, message) -> None:
        key = (path, line, col, message)
        if key not in seen:
            seen.add(key)
            self.report(path, line, col, message)
