"""Project-wide symbol table and import resolver.

A :class:`Project` maps every linted file inside ``src/repro/`` to a
:class:`Module` with a dotted name (``repro.sim.rng``) and a table of its
top-level symbols: functions, classes (with their methods and dataclass
fields), and imports.  :meth:`Project.resolve` chases a fully qualified
name through import aliases and ``__init__``-re-exports to the defining
symbol, which is what lets the call graph and the data-flow analyses see
``from ..sim.rng import StreamFactory`` and ``from repro.sim import
StreamFactory`` as the same class.

Resolution is best-effort and never guesses: a name that leaves the
project (``numpy.random``) or cannot be followed resolves to ``None``
and downstream analyses degrade to "unknown".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class Symbol:
    """One resolvable top-level (or class-level) definition."""

    #: ``"function"``, ``"class"``, ``"import"``, or ``"value"``.
    kind: str
    #: Fully qualified name, e.g. ``repro.sim.rng.StreamFactory``.
    qualname: str
    #: Defining module's dotted name.
    module: str
    #: The defining AST node (None for imports: ``target`` says where).
    node: ast.AST | None = None
    #: For ``kind == "import"``: the qualified name the alias points at.
    target: str | None = None


class ClassInfo:
    """A class definition: methods, dataclass fields, decorators, bases."""

    def __init__(self, module: str, node: ast.ClassDef) -> None:
        self.module = module
        self.node = node
        self.qualname = f"{module}.{node.name}"
        self.name = node.name
        #: method name -> FunctionDef/AsyncFunctionDef node.
        self.methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        #: annotated class-body fields in declaration order (dataclasses).
        self.fields: list[str] = []
        #: field/attr name -> annotation expression (class body AnnAssign).
        self.field_annotations: dict[str, ast.expr] = {}
        self.base_exprs: list[ast.expr] = node.bases
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[stmt.name] = stmt
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                self.fields.append(stmt.target.id)
                self.field_annotations[stmt.target.id] = stmt.annotation

    @property
    def has_explicit_init(self) -> bool:
        """Whether the class defines ``__init__`` itself."""
        return "__init__" in self.methods

    def init_params(self) -> list[str]:
        """Positional parameter names of ``__init__`` (including self)."""
        init = self.methods.get("__init__")
        if init is None:
            # Dataclass-style: synthesize (self, *fields).
            return ["self", *self.fields]
        args = init.args
        return [a.arg for a in [*args.posonlyargs, *args.args]]


class Module:
    """One parsed package file plus its symbol table."""

    def __init__(self, ctx) -> None:
        """``ctx`` is the engine's FileContext for a file under src/repro."""
        self.ctx = ctx
        self.name = module_name(ctx.module_path)
        #: local top-level name -> Symbol.
        self.symbols: dict[str, Symbol] = {}
        #: local class name -> ClassInfo (also reachable via symbols).
        self.classes: dict[str, ClassInfo] = {}
        self._index()
        self._index_local_imports()

    def _index(self) -> None:
        for stmt in self.ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.symbols[stmt.name] = Symbol(
                    kind="function",
                    qualname=f"{self.name}.{stmt.name}",
                    module=self.name,
                    node=stmt,
                )
            elif isinstance(stmt, ast.ClassDef):
                info = ClassInfo(self.name, stmt)
                self.classes[stmt.name] = info
                self.symbols[stmt.name] = Symbol(
                    kind="class",
                    qualname=info.qualname,
                    module=self.name,
                    node=stmt,
                )
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.symbols[local] = Symbol(
                        kind="import",
                        qualname=f"{self.name}.{local}",
                        module=self.name,
                        target=target,
                    )
            elif isinstance(stmt, ast.ImportFrom):
                base = self._import_base(stmt)
                if base is None:
                    continue
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.symbols[local] = Symbol(
                        kind="import",
                        qualname=f"{self.name}.{local}",
                        module=self.name,
                        target=f"{base}.{alias.name}" if base else alias.name,
                    )
            elif isinstance(stmt, ast.Assign):
                for tgt in stmt.targets:
                    if isinstance(tgt, ast.Name):
                        self.symbols[tgt.id] = Symbol(
                            kind="value",
                            qualname=f"{self.name}.{tgt.id}",
                            module=self.name,
                            node=stmt.value,
                        )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                self.symbols[stmt.target.id] = Symbol(
                    kind="value",
                    qualname=f"{self.name}.{stmt.target.id}",
                    module=self.name,
                    node=stmt.value,
                )

    def _index_local_imports(self) -> None:
        """Fold function-local imports into the symbol table.

        Modules break import cycles (and defer heavy dependencies) with
        imports *inside* function bodies; for whole-program resolution
        they bind the same names to the same targets as module-level
        imports, just later.  ``setdefault`` keeps any top-level binding
        authoritative, so the (rare) shadowing case degrades to the old
        behaviour rather than misresolving.
        """
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = (
                        alias.name
                        if alias.asname
                        else alias.name.split(".")[0]
                    )
                    self.symbols.setdefault(
                        local,
                        Symbol(
                            kind="import",
                            qualname=f"{self.name}.{local}",
                            module=self.name,
                            target=target,
                        ),
                    )
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.symbols.setdefault(
                        local,
                        Symbol(
                            kind="import",
                            qualname=f"{self.name}.{local}",
                            module=self.name,
                            target=(
                                f"{base}.{alias.name}" if base else alias.name
                            ),
                        ),
                    )

    def _import_base(self, stmt: ast.ImportFrom) -> str | None:
        """Absolute dotted module a ``from X import ...`` refers to."""
        if stmt.level == 0:
            return stmt.module or ""
        # Relative: strip (level) components off this module's package.
        parts = self.name.split(".")
        # A module's package is itself for __init__, else its parent.
        if not self.is_package:
            parts = parts[:-1]
        drop = stmt.level - 1
        if drop > len(parts):
            return None
        base_parts = parts[: len(parts) - drop] if drop else parts
        if stmt.module:
            base_parts = [*base_parts, stmt.module]
        return ".".join(base_parts)

    @property
    def is_package(self) -> bool:
        """Whether this module is an ``__init__.py``."""
        return self.ctx.module_path.endswith("__init__.py")


def module_name(module_path: str) -> str:
    """Dotted module name for a path relative to ``src/repro/``."""
    parts = module_path[: -len(".py")].split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(["repro", *parts]) if parts else "repro"


class Project:
    """All package modules of one lint run, with cross-module resolution."""

    def __init__(self, contexts: Iterable) -> None:
        self.modules: dict[str, Module] = {}
        for ctx in contexts:
            module = Module(ctx)
            self.modules[module.name] = module

    # ------------------------------------------------------------------
    def resolve(self, qualname: str, _depth: int = 0) -> Symbol | None:
        """The defining Symbol for a fully qualified name, or None.

        Chases import aliases (including ``__init__`` re-exports) with a
        depth guard so import cycles terminate as unresolved.
        """
        if _depth > 16:
            return None
        module, attr = self._split(qualname)
        if module is None:
            return None
        symbol = module.symbols.get(attr)
        if symbol is None:
            return None
        if symbol.kind == "import":
            if symbol.target is None:
                return None
            # The target may itself be a module (import of a submodule).
            if symbol.target in self.modules:
                return Symbol(
                    kind="module",
                    qualname=symbol.target,
                    module=symbol.target,
                )
            return self.resolve(symbol.target, _depth + 1)
        return symbol

    def resolve_local(self, module: Module, name: str) -> Symbol | None:
        """Resolve a bare name used inside ``module`` to its definition."""
        symbol = module.symbols.get(name)
        if symbol is None:
            return None
        if symbol.kind == "import":
            if symbol.target is None:
                return None
            if symbol.target in self.modules:
                return Symbol(
                    kind="module", qualname=symbol.target, module=symbol.target
                )
            return self.resolve(symbol.target)
        return symbol

    def resolve_dotted(self, module: Module, chain: tuple[str, ...]) -> Symbol | None:
        """Resolve a dotted chain (``pkg.sub.fn``) used inside ``module``.

        The head is looked up locally; every subsequent component walks
        module symbols.  Returns None the moment the chain leaves the
        project (e.g. ``np.random.default_rng`` — numpy is external); the
        *import target* is still recoverable via :meth:`qualify_chain`.
        """
        symbol = self.resolve_local(module, chain[0])
        for part in chain[1:]:
            if symbol is None or symbol.kind != "module":
                return None
            owner = self.modules.get(symbol.qualname)
            if owner is None:
                return None
            symbol = self.resolve_local(owner, part)
        return symbol

    def qualify_chain(self, module: Module, chain: tuple[str, ...]) -> str | None:
        """Best-effort fully qualified name for a dotted chain.

        Unlike :meth:`resolve_dotted` this also qualifies *external*
        names: ``np.random.default_rng`` -> ``numpy.random.default_rng``
        when ``np`` is ``import numpy as np``.
        """
        if not chain:
            return None
        head = module.symbols.get(chain[0])
        if head is None:
            return None
        if head.kind == "import":
            base = head.target
        else:
            base = head.qualname
        if base is None:
            return None
        return ".".join([base, *chain[1:]])

    def class_info(self, qualname: str) -> ClassInfo | None:
        """The ClassInfo for a fully qualified class name, or None."""
        symbol = self.resolve(qualname)
        if symbol is None or symbol.kind != "class":
            return None
        owner = self.modules.get(symbol.module)
        if owner is None:
            return None
        return owner.classes.get(symbol.qualname.rsplit(".", 1)[1])

    def iter_classes(self) -> Iterable[ClassInfo]:
        """Every class defined in the project."""
        for module in self.modules.values():
            yield from module.classes.values()

    # ------------------------------------------------------------------
    def _split(self, qualname: str) -> tuple[Module | None, str]:
        """Split ``repro.a.b.name`` into (defining module, local name)."""
        parts = qualname.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.modules:
                if cut != len(parts) - 1:
                    # Deeper than module.attr (e.g. module.Class.method):
                    # resolution of nested attributes happens via ClassInfo.
                    return None, ""
                return self.modules[candidate], parts[-1]
        return None, ""
