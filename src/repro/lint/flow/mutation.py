"""RPL103 — mutation of contract-protected state outside its mutators.

``repro.contracts`` guards the interval/ownership invariants at runtime:
classes in ``core/``, ``cluster/``, and ``fs/`` expose a validator
(``check_invariants``/``check_consistency``) and wrap their mutators in
``@checks_invariants``/``@preserves``/``@invariant``.  The guarantee
only holds if *every* write to the validated state goes through a
wrapped mutator — a direct ``cluster._ownership[x] = y`` from another
module bypasses the contract entirely and, with ``REPRO_CONTRACTS=off``,
is indistinguishable from correct code until an invariant test fails.

This rule computes, per protected class:

- the *protected attributes*: every ``self.<attr>`` the validator reads;
- the *sanctioned writers*: ``__init__``/``__post_init__``/``__new__``,
  any method carrying a contract decorator, and every method reachable
  from a sanctioned writer through the intra-class call graph (helpers
  like ``_shrink`` called by a ``@checks_invariants`` mutator inherit
  its sanction);

then flags every attribute store (including subscript writes and
``del``) whose receiver resolves to a protected class when the write is
(a) outside the class entirely, or (b) in an unsanctioned method.
Constructor field binds are not mutations and never fire.
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic
from ..rules import FlowRule, register
from .callgraph import CallGraph
from .dataflow import Lattice, SymbolicEvaluator, finalize, run_evaluators
from .symbols import ClassInfo, Project

#: Validator method names that define a class's protected state.
VALIDATORS = ("check_invariants", "check_consistency")

#: Decorators (by terminal name, resolved against ``repro.contracts``)
#: that sanction a method to mutate protected state.
CONTRACT_DECORATORS = frozenset({"checks_invariants", "preserves", "invariant"})

#: Layers whose validated classes this rule protects.
PROTECTED_LAYERS = ("core", "cluster", "fs")

#: Methods sanctioned by construction semantics rather than contracts.
_CONSTRUCTION = frozenset({"__init__", "__post_init__", "__new__"})


def _protected_attrs(info: ClassInfo) -> frozenset:
    """Every ``self.<attr>`` the class's validator(s) read."""
    out: set[str] = set()
    for name in VALIDATORS:
        validator = info.methods.get(name)
        if validator is None:
            continue
        for node in ast.walk(validator):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr not in info.methods
            ):
                out.add(node.attr)
    return frozenset(out)


def _in_protected_layer(project: Project, info: ClassInfo) -> bool:
    parts = info.module.split(".")
    return len(parts) >= 2 and parts[1] in PROTECTED_LAYERS


def _sanctioned_methods(graph: CallGraph, class_qualname: str) -> frozenset:
    """Methods allowed to write the class's protected attributes."""
    prefix = f"{class_qualname}."
    seeds: set[str] = set()
    for qualname, fn in graph.functions.items():
        if not qualname.startswith(prefix):
            continue
        method = qualname[len(prefix):]
        if method in _CONSTRUCTION:
            seeds.add(qualname)
            continue
        for decorator in fn.decorators:
            if decorator.rsplit(".", 1)[-1] in CONTRACT_DECORATORS:
                seeds.add(qualname)
                break
    # Sanction propagates through intra-class calls only: a decorated
    # mutator may delegate to private helpers, but a cross-class call
    # never launders a write.
    sanctioned = set(seeds)
    frontier = list(seeds)
    while frontier:
        current = frontier.pop()
        for callee in graph.edges.get(current, ()):
            if callee.startswith(prefix) and callee not in sanctioned:
                sanctioned.add(callee)
                frontier.append(callee)
        # Nested defs inherit their parent scope's sanction.
        for qualname in graph.functions:
            if (
                qualname.startswith(f"{current}.<locals>.")
                and qualname not in sanctioned
            ):
                sanctioned.add(qualname)
                frontier.append(qualname)
    return frozenset(sanctioned)


@register
class ContractBypass(FlowRule):
    """Interval/ownership state must change only through contract-wrapped
    mutators.

    The runtime contracts in ``repro.contracts`` re-validate class
    invariants after every wrapped mutator, which is what lets the
    half-occupancy and boundary-preservation properties survive
    refactoring.  A write that reaches the same state from outside —
    another class poking ``_ownership``, or an undecorated method
    flipping ``servers`` — skips validation and can only be caught,
    much later, by a failing statistical test.  This rule finds such
    writes across function and module boundaries by resolving each
    attribute store's receiver class; helpers called by a sanctioned
    mutator are themselves sanctioned, so contract-clean refactorings
    do not fire it.
    """

    id = "RPL103"
    title = "contract bypass: protected state written outside its mutators"
    hint = (
        "route the write through a @checks_invariants/@preserves/"
        "@invariant mutator on the owning class"
    )

    def run(self) -> list[Diagnostic]:
        protected: dict[str, frozenset] = {}
        for info in self.project.iter_classes():
            if not _in_protected_layer(self.project, info):
                continue
            attrs = _protected_attrs(info)
            if attrs:
                protected[info.qualname] = attrs
        if not protected:
            return []
        graph = CallGraph(self.project)
        sanctioned = {
            qualname: _sanctioned_methods(graph, qualname)
            for qualname in protected
        }
        lattice = Lattice()
        run_evaluators(
            self.project,
            lambda module, qualname, fn, owner: SymbolicEvaluator(
                self.project, lattice, module, qualname, fn, owner
            ),
        )
        finalize(lattice)
        seen: set[tuple] = set()
        for store in lattice.stores:
            if store.is_ctor:
                continue
            for atom in lattice.resolve(store.owner_atoms):
                if atom.kind != "instance":
                    continue
                target = atom.key[0]
                attrs = protected.get(target)
                if attrs is None or store.attr not in attrs:
                    continue
                if store.context in sanctioned[target]:
                    continue
                key = (store.path, store.line, store.col, target, store.attr)
                if key in seen:
                    continue
                seen.add(key)
                if store.context_class == target:
                    detail = (
                        f"method {store.context} is not a contract-wrapped "
                        f"mutator"
                    )
                else:
                    detail = f"written from outside the class ({store.context})"
                self.report(
                    store.path,
                    store.line,
                    store.col,
                    f"write to {target}.{store.attr} bypasses its contract "
                    f"({detail})",
                )
        return sorted(self.diagnostics)
