"""Call-graph construction over the project.

Nodes are fully qualified function names (``repro.sim.engine.Engine.run``,
``repro.core.interval.fractions_to_ticks``); edges are the statically
resolvable calls between them.  Resolution handles:

- bare names through the import table (including re-exports),
- dotted module access (``module.func()``),
- ``self.method()`` inside a class (following resolvable base classes),
- method calls on receivers whose class is inferable — from a parameter
  annotation, a constructor assignment in the same function, or a
  ``self.attr`` whose type was pinned in ``__init__``/an annotation,
- constructor calls (edge to ``Class.__init__`` when defined, else to
  ``Class.__post_init__`` for dataclasses that define one),
- chained constructor calls (``ClassName(...).method(...)``).

Anything else — callbacks invoked through variables, ``getattr``,
subscripted lookups — is recorded in :attr:`CallGraph.unknown` rather
than guessed, so analyses can stay conservative without false edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..rules import dotted_name
from .symbols import ClassInfo, Module, Project


@dataclass(frozen=True)
class UnknownCall:
    """A call site the graph could not resolve to a project function."""

    caller: str
    module: str
    line: int
    text: str


@dataclass
class FunctionNode:
    """One function/method in the graph."""

    qualname: str
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Enclosing ClassInfo for methods, else None.
    owner: ClassInfo | None = None
    #: Resolved qualified names of the function's decorators.
    decorators: tuple[str, ...] = ()


class CallGraph:
    """Functions, resolved call edges, and the unresolved remainder."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.functions: dict[str, FunctionNode] = {}
        #: caller qualname -> set of callee qualnames.
        self.edges: dict[str, set[str]] = {}
        #: callee qualname -> set of caller qualnames.
        self.callers: dict[str, set[str]] = {}
        self.unknown: list[UnknownCall] = []
        #: fn qualname -> inferred receiver types (resolve_site memo).
        self._types_cache: dict[str, dict[str, str]] = {}
        for module in project.modules.values():
            self._collect_functions(module)
        for fn in list(self.functions.values()):
            self._collect_edges(fn)

    # ------------------------------------------------------------------
    # Function enumeration
    # ------------------------------------------------------------------
    def _collect_functions(self, module: Module) -> None:
        for stmt in module.ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, stmt, f"{module.name}.{stmt.name}", None)
            elif isinstance(stmt, ast.ClassDef):
                info = module.classes[stmt.name]
                for name, fn in info.methods.items():
                    self._add_function(
                        module, fn, f"{info.qualname}.{name}", info
                    )

    def _add_function(
        self,
        module: Module,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        owner: ClassInfo | None,
    ) -> None:
        decorators = tuple(
            name
            for name in (
                self._decorator_name(module, d) for d in fn.decorator_list
            )
            if name is not None
        )
        self.functions[qualname] = FunctionNode(
            qualname=qualname,
            module=module.name,
            node=fn,
            owner=owner,
            decorators=decorators,
        )
        # Nested functions become graph nodes too (their calls matter even
        # when nothing can statically call *them*).
        for inner in ast.walk(fn):
            if inner is fn or not isinstance(
                inner, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            nested = f"{qualname}.<locals>.{inner.name}"
            if nested not in self.functions:
                self.functions[nested] = FunctionNode(
                    qualname=nested, module=module.name, node=inner, owner=owner
                )

    def _decorator_name(self, module: Module, dec: ast.expr) -> str | None:
        """Qualified name of a decorator expression (unwraps calls)."""
        if isinstance(dec, ast.Call):
            dec = dec.func
        chain = dotted_name(dec)
        if not chain:
            return None
        symbol = self.project.resolve_dotted(module, chain)
        if symbol is not None:
            return symbol.qualname
        return self.project.qualify_chain(module, chain)

    # ------------------------------------------------------------------
    # Edge construction
    # ------------------------------------------------------------------
    def _collect_edges(self, fn: FunctionNode) -> None:
        module = self.project.modules[fn.module]
        types = infer_local_types(self.project, module, fn)
        # Only walk this function's own statements, not nested defs (those
        # are separate nodes); ast.walk can't express that, so track depth.
        for call in iter_own_calls(fn.node):
            callee = self._resolve_call(module, fn, call, types)
            if callee is not None:
                self.edges.setdefault(fn.qualname, set()).add(callee)
                self.callers.setdefault(callee, set()).add(fn.qualname)
            else:
                self.unknown.append(
                    UnknownCall(
                        caller=fn.qualname,
                        module=fn.module,
                        line=call.lineno,
                        text=ast.unparse(call.func)[:60],
                    )
                )

    def _resolve_call(
        self,
        module: Module,
        fn: FunctionNode,
        call: ast.Call,
        types: dict[str, str],
    ) -> str | None:
        chain = dotted_name(call.func)
        if not chain:
            # Chained calls: ClassName(...).method(...) resolves through
            # the constructed class; helper(...).method(...) through the
            # helper's return annotation.
            if isinstance(call.func, ast.Attribute) and isinstance(
                call.func.value, ast.Call
            ):
                inner = self._resolve_call(
                    module, fn, call.func.value, types
                )
                if inner is not None:
                    class_qual = inner
                    for suffix in (".__init__", ".__post_init__"):
                        if class_qual.endswith(suffix):
                            class_qual = class_qual[: -len(suffix)]
                    info = self.project.class_info(class_qual)
                    if info is None:
                        returned = self._return_class(inner)
                        if returned is not None:
                            info = self.project.class_info(returned)
                    if info is not None:
                        return self._resolve_method(info, call.func.attr)
            return None
        # self.method(...) — resolve within the enclosing class (and bases).
        if chain[0] == "self" and fn.owner is not None and len(chain) == 2:
            target = self._resolve_method(fn.owner, chain[1])
            if target is not None:
                return target
        # Receiver with an inferred class: x.method(...), self.attr.method().
        if len(chain) >= 2:
            recv_key = ".".join(chain[:-1])
            class_qual = types.get(recv_key)
            if class_qual is not None:
                info = self.project.class_info(class_qual)
                if info is not None:
                    target = self._resolve_method(info, chain[-1])
                    if target is not None:
                        return target
        # Plain/dotted resolution through the symbol tables.
        symbol = self.project.resolve_dotted(module, chain)
        if symbol is None:
            return None
        if symbol.kind == "function":
            return symbol.qualname
        if symbol.kind == "class":
            info = self.project.class_info(symbol.qualname)
            if info is not None and info.has_explicit_init:
                return f"{symbol.qualname}.__init__"
            if info is not None and "__post_init__" in info.methods:
                # Dataclass with a generated __init__: construction runs
                # __post_init__, so reachability must flow through it.
                return f"{symbol.qualname}.__post_init__"
            return symbol.qualname  # constructor of an implicit __init__
        return None

    def _return_class(self, qualname: str) -> str | None:
        """The project class a function's return annotation names."""
        fn = self.functions.get(qualname)
        if fn is None:
            return None
        module = self.project.modules.get(fn.module)
        if module is None:
            return None
        return annotation_class(self.project, module, fn.node.returns)

    def _resolve_method(
        self, info: ClassInfo, name: str, _depth: int = 0
    ) -> str | None:
        """Find ``name`` on ``info`` or a resolvable base class."""
        if _depth > 8:
            return None
        if name in info.methods:
            return f"{info.qualname}.{name}"
        module = self.project.modules.get(info.module)
        if module is None:
            return None
        for base in info.base_exprs:
            chain = dotted_name(base)
            if not chain:
                continue
            symbol = self.project.resolve_dotted(module, chain)
            if symbol is None or symbol.kind != "class":
                continue
            base_info = self.project.class_info(symbol.qualname)
            if base_info is None:
                continue
            found = self._resolve_method(base_info, name, _depth + 1)
            if found is not None:
                return found
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def resolve_site(self, fn: FunctionNode, call: ast.Call) -> str | None:
        """Resolve one call site inside ``fn`` to a function qualname.

        Same resolution as edge construction, exposed per-site so
        analyses that care about *statement order* (the effect summaries
        in :mod:`repro.lint.flow.effects`) can ask about a specific call
        rather than the order-less edge set.  Local type inference is
        cached per function.
        """
        module = self.project.modules.get(fn.module)
        if module is None:
            return None
        types = self._types_cache.get(fn.qualname)
        if types is None:
            types = infer_local_types(self.project, module, fn)
            self._types_cache[fn.qualname] = types
        return self._resolve_call(module, fn, call, types)

    def reachable_from(self, roots: set[str]) -> set[str]:
        """All functions reachable from ``roots`` (cycle-safe BFS)."""
        seen = set(roots)
        frontier = list(roots)
        while frontier:
            current = frontier.pop()
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen


# ----------------------------------------------------------------------
# Shared inference helpers
# ----------------------------------------------------------------------
def iter_own_calls(fn: ast.AST):
    """Call nodes lexically inside ``fn`` but not inside a nested def."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def annotation_class(
    project: Project, module: Module, annotation: ast.expr | None
) -> str | None:
    """The project class a parameter/field annotation names, if any.

    Unwraps ``X | None``, ``Optional[X]``, and string annotations.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        for side in (annotation.left, annotation.right):
            found = annotation_class(project, module, side)
            if found is not None:
                return found
        return None
    if isinstance(annotation, ast.Subscript):
        chain = dotted_name(annotation.value)
        if chain and chain[-1] == "Optional":
            return annotation_class(project, module, annotation.slice)
        return None
    chain = dotted_name(annotation)
    if not chain:
        return None
    symbol = project.resolve_dotted(module, chain)
    if symbol is not None and symbol.kind == "class":
        return symbol.qualname
    return None


def class_attr_types(
    project: Project, module: Module, info: ClassInfo
) -> dict[str, str]:
    """attr name -> project class qualname, from annotations and __init__.

    Sources, in increasing priority: class-body ``AnnAssign`` fields,
    ``self.x: T = ...`` annotations anywhere in the class,
    ``self.x = ClassName(...)`` constructor assignments in ``__init__``,
    and ``self.x = param`` binds of annotated ``__init__`` parameters.
    """
    out: dict[str, str] = {}
    for name, ann in info.field_annotations.items():
        found = annotation_class(project, module, ann)
        if found is not None:
            out[name] = found
    for method in info.methods.values():
        for stmt in ast.walk(method):
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Attribute)
                and isinstance(stmt.target.value, ast.Name)
                and stmt.target.value.id == "self"
            ):
                found = annotation_class(project, module, stmt.annotation)
                if found is not None:
                    out[stmt.target.attr] = found
    init = info.methods.get("__init__")
    if init is not None:
        params: dict[str, str] = {}
        args = init.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            found = annotation_class(project, module, arg.annotation)
            if found is not None:
                params[arg.arg] = found
        for stmt in init.body:
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Attribute)
                and isinstance(stmt.targets[0].value, ast.Name)
                and stmt.targets[0].value.id == "self"
            ):
                continue
            attr = stmt.targets[0].attr
            if isinstance(stmt.value, ast.Call):
                chain = dotted_name(stmt.value.func)
                if not chain:
                    continue
                symbol = project.resolve_dotted(module, chain)
                if symbol is not None and symbol.kind == "class":
                    out[attr] = symbol.qualname
            elif isinstance(stmt.value, ast.Name) and stmt.value.id in params:
                out[attr] = params[stmt.value.id]
    return out


def infer_local_types(
    project: Project, module: Module, fn: FunctionNode
) -> dict[str, str]:
    """Map receiver expressions to project class qualnames inside ``fn``.

    Keys are dotted receiver texts (``x``, ``self.cluster``); values are
    class qualnames.  Covers annotated parameters, ``x = ClassName(...)``
    local constructor assignments, and ``self.attr`` types pinned by the
    enclosing class.  Everything else stays unknown.
    """
    types: dict[str, str] = {}
    args = fn.node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        found = annotation_class(project, module, arg.annotation)
        if found is not None:
            types[arg.arg] = found
    for stmt in ast.walk(fn.node):
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
        ):
            chain = dotted_name(stmt.value.func)
            if not chain:
                continue
            symbol = project.resolve_dotted(module, chain)
            if symbol is not None and symbol.kind == "class":
                types[stmt.targets[0].id] = symbol.qualname
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
        ):
            found = annotation_class(project, module, stmt.annotation)
            if found is not None:
                types[stmt.target.id] = found
    if fn.owner is not None:
        for attr, qual in class_attr_types(project, module, fn.owner).items():
            types[f"self.{attr}"] = qual
    return types
