"""On-disk content-hash cache for ``repro-lint``.

Whole-program analysis is the expensive part of the linter; the cache
makes warm full-tree runs effectively free.  Two tables, both keyed by
content hashes so stale entries are structurally impossible:

- ``per_file``: ``sha256(file bytes) + selected rule IDs`` -> the
  per-file diagnostics of that exact content.  Any edit changes the
  hash; an unchanged file skips parsing entirely.
- ``project``: ``sha256 over the sorted (path, file-hash) pairs of every
  package file + selected rule IDs`` -> the flow diagnostics.  Editing,
  adding, renaming, or deleting *any* package file changes the key, so
  interprocedural results can never go stale.

Both tables are additionally namespaced by a *version token* — a hash of
every source file of the lint package itself — so upgrading the linter
(new rules, fixed analyses) invalidates everything at once.  The cache
file is a single JSON document; a corrupt or unreadable cache degrades
to a cold run, never to an error.
"""

from __future__ import annotations

import functools
import hashlib
import json
from pathlib import Path

from ...sweep.api import register_process_cache
from ..diagnostics import Diagnostic

#: Default cache directory, resolved relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-lint-cache"

#: Entries beyond this count are dropped wholesale on save (the cache is
#: content-addressed, so eviction correctness is trivial).
MAX_FILE_ENTRIES = 4096

def content_hash(data: bytes | str) -> str:
    """sha256 hex digest of file content."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


@functools.lru_cache(maxsize=1)
def version_token() -> str:
    """Hash of the lint package's own sources (cached per process)."""
    digest = hashlib.sha256()
    package_root = Path(__file__).resolve().parents[1]
    for source in sorted(package_root.rglob("*.py")):
        digest.update(source.name.encode())
        digest.update(source.read_bytes())
    return digest.hexdigest()


register_process_cache(version_token.cache_clear)


def rules_token(rule_ids) -> str:
    """Stable token for a rule selection (None means "all")."""
    return ",".join(sorted(rule_ids)) if rule_ids is not None else "*"


def project_hash(pairs) -> str:
    """Hash over sorted ``(path, file_hash)`` pairs of the package files."""
    digest = hashlib.sha256()
    for path, file_hash in sorted(pairs):
        digest.update(str(path).encode())
        digest.update(file_hash.encode())
    return digest.hexdigest()


def _encode(diagnostics) -> list[list]:
    return [
        [d.path, d.line, d.col, d.rule_id, d.message, d.hint]
        for d in diagnostics
    ]


def _decode(rows) -> list[Diagnostic]:
    return [
        Diagnostic(
            path=row[0], line=row[1], col=row[2], rule_id=row[3],
            message=row[4], hint=row[5],
        )
        for row in rows
    ]


class LintCache:
    """The cache file plus its in-memory working copy."""

    def __init__(self, directory: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.directory = Path(directory)
        self.path = self.directory / "cache.json"
        self._dirty = False
        self._data = {"version": version_token(), "per_file": {}, "project": {}}
        try:
            loaded = json.loads(self.path.read_text(encoding="utf-8"))
            if (
                isinstance(loaded, dict)
                and loaded.get("version") == self._data["version"]
                and isinstance(loaded.get("per_file"), dict)
                and isinstance(loaded.get("project"), dict)
            ):
                self._data = loaded
        except (OSError, ValueError):
            pass  # cold start

    # ------------------------------------------------------------------
    def get_file(self, file_hash: str, token: str) -> list[Diagnostic] | None:
        """Cached per-file diagnostics, or None on a miss."""
        rows = self._data["per_file"].get(f"{file_hash}:{token}")
        if rows is None:
            return None
        try:
            return _decode(rows)
        except (IndexError, TypeError):
            return None

    def put_file(self, file_hash: str, token: str, diagnostics) -> None:
        """Store per-file diagnostics under ``file_hash`` + rule token."""
        self._data["per_file"][f"{file_hash}:{token}"] = _encode(diagnostics)
        self._dirty = True

    def get_project(self, tree_hash: str, token: str) -> list[Diagnostic] | None:
        """Cached whole-program diagnostics, or None on a miss."""
        rows = self._data["project"].get(f"{tree_hash}:{token}")
        if rows is None:
            return None
        try:
            return _decode(rows)
        except (IndexError, TypeError):
            return None

    def put_project(self, tree_hash: str, token: str, diagnostics) -> None:
        """Store whole-program diagnostics under ``tree_hash`` + rule token."""
        self._data["project"][f"{tree_hash}:{token}"] = _encode(diagnostics)
        self._dirty = True

    # ------------------------------------------------------------------
    def save(self) -> None:
        """Persist if anything changed; I/O failures are non-fatal."""
        if not self._dirty:
            return
        if len(self._data["per_file"]) > MAX_FILE_ENTRIES:
            self._data["per_file"] = {}
        if len(self._data["project"]) > MAX_FILE_ENTRIES:
            self._data["project"] = {}
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(".tmp")
            tmp.write_text(json.dumps(self._data), encoding="utf-8")
            tmp.replace(self.path)
            self._dirty = False
        except OSError:
            pass
