"""RPL109 — completion-order-dependent reduction of worker results.

Parallel workers finish in whatever order the scheduler produces.  A
merge loop that consumes results *as they complete* and accumulates them
positionally (list append) or by non-associative arithmetic (running
float sum) bakes that order into the output: two runs of the same sweep
with different worker counts produce different bytes.  The deterministic
shape is a reduce **keyed by a stable identity** (the sweep's cell id) —
a dict store is commutative over arrival order; a sort before writing
restores canonical order.

Positive evidence: a ``for`` loop (or comprehension) iterating a
completion-order source —

- ``pool.imap_unordered(...)`` on a tracked pool local (``imap`` and
  ``map`` preserve submission order and are fine),
- ``concurrent.futures.as_completed(...)``

— whose body appends/extends a list or float-accumulates into a plain
local.  Keyed stores (``results[row["cell"]] = row``) are sanctioned, as
are accumulators the same function later sorts (``.sort()`` /
``sorted(acc)``) — sorting erases arrival order — and integer counters
(``done += 1``), which are exactly commutative.
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic
from ..rules import FlowRule, dotted_name, register
from .fork_state import iter_own_nodes
from .workers import worker_index

#: ``as_completed`` in both its import homes.
AS_COMPLETED = frozenset({
    "concurrent.futures.as_completed",
    "concurrent.futures._base.as_completed",
})


def _sorted_names(fn_node: ast.AST) -> set[str]:
    """Locals the function sorts at some point (arrival order erased)."""
    sorted_locals: set[str] = set()
    for node in iter_own_nodes(fn_node):
        if not isinstance(node, ast.Call):
            continue
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            sorted_locals.add(node.args[0].id)
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "sort"
            and isinstance(node.func.value, ast.Name)
        ):
            sorted_locals.add(node.func.value.id)
    return sorted_locals


@register
class OrderDependentReduce(FlowRule):
    """Merges over worker results must be keyed, not positional.

    Flags list appends and non-integer ``+=`` accumulation inside loops
    over ``imap_unordered`` / ``as_completed`` iterators, unless the
    accumulator is later sorted in the same function.
    """

    id = "RPL109"
    title = "completion-order-dependent reduce over worker results"
    hint = (
        "key the merge by a stable cell/result id (dict store) and sort "
        "before writing, instead of accumulating in arrival order"
    )

    def run(self) -> list[Diagnostic]:
        index = worker_index(self.project)
        for qualname, fn in sorted(index.graph.functions.items()):
            module = index.project.modules.get(fn.module)
            if module is None:
                continue
            pools, _ = index._executor_locals(module, fn)
            sorted_locals = _sorted_names(fn.node)
            for node in iter_own_nodes(fn.node):
                loops = []
                if isinstance(node, ast.For):
                    loops.append((node.iter, node.body))
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
                ):
                    continue  # comprehensions build then bind — checked
                    # via the For form; positional comprehension results
                    # are consumed by the binding site, not hidden state.
                for iter_expr, body in loops:
                    source = self._completion_source(
                        index, module, pools, iter_expr
                    )
                    if source is None:
                        continue
                    self._check_body(
                        module, fn, qualname, source, body, sorted_locals
                    )
        return sorted(self.diagnostics)

    # ------------------------------------------------------------------
    def _completion_source(
        self, index, module, pools: dict, iter_expr: ast.expr
    ) -> str | None:
        """The completion-order API an iterator expression drains, if any."""
        if not isinstance(iter_expr, ast.Call):
            return None
        chain = dotted_name(iter_expr.func)
        if not chain:
            return None
        qualified = index.project.qualify_chain(module, chain)
        if qualified in AS_COMPLETED:
            return "concurrent.futures.as_completed"
        if len(chain) >= 2 and chain[-1] == "imap_unordered":
            receiver = ".".join(chain[:-1])
            if "pool" in pools.get(receiver, frozenset()):
                return "multiprocessing.Pool.imap_unordered"
        return None

    def _check_body(
        self, module, fn, qualname: str, source: str, body, sorted_locals
    ) -> None:
        path = module.ctx.path
        for stmt in body:
            for node in [stmt, *iter_own_nodes(stmt)]:
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("append", "extend")
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id not in sorted_locals
                ):
                    self.report(
                        path, node.lineno, node.col_offset,
                        f"{node.func.value.id}.{node.func.attr}() inside a "
                        f"loop over {source} (in {qualname}) records "
                        f"completion order; key the merge by cell id or "
                        f"sort before use",
                    )
                elif (
                    isinstance(node, ast.AugAssign)
                    and isinstance(node.op, ast.Add)
                    and isinstance(node.target, ast.Name)
                    and not self._is_int_literal(node.value)
                ):
                    self.report(
                        path, node.lineno, node.col_offset,
                        f"running accumulation into {node.target.id!r} "
                        f"inside a loop over {source} (in {qualname}); "
                        f"float addition is not associative, so the total "
                        f"depends on completion order",
                    )

    @staticmethod
    def _is_int_literal(expr: ast.expr) -> bool:
        return isinstance(expr, ast.Constant) and isinstance(expr.value, int)
