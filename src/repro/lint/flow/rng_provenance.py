"""RPL101 — interprocedural RNG-stream provenance.

Replay determinism (``tests/test_determinism.py``) rests on two
properties that no per-file rule can see:

1. every ``Generator`` that reaches a sampling site was minted by
   ``StreamFactory.stream(name)`` — not by a raw ``np.random`` factory
   smuggled in through a call chain; and
2. each named stream stays private to one component.  When two
   unrelated classes draw from the same stream (typically via attribute
   aliasing — one object handing its generator to another), their draw
   orders interleave and any change to one component silently reorders
   the other's samples.

The analysis tracks generator values through assignments, attributes,
constructor field binds, parameters, and returns using the shared atom
engine.  Polymorphic implementations of one role (classes sharing a
project-defined base, e.g. alternative tuning policies sampling a
shared ``TuningContext.rng``) count as a single component and are not
flagged.
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic
from ..rules import FlowRule, dotted_name, register
from .dataflow import Atom, Lattice, SymbolicEvaluator, finalize, run_evaluators
from .symbols import ClassInfo

#: ``np.random.Generator`` sampling methods (plus the legacy aliases the
#: simulator might plausibly reach for).
SAMPLING_METHODS = frozenset(
    {
        "random",
        "uniform",
        "exponential",
        "normal",
        "standard_normal",
        "standard_exponential",
        "integers",
        "randint",
        "choice",
        "shuffle",
        "permutation",
        "poisson",
        "lognormal",
        "gamma",
        "beta",
        "binomial",
        "geometric",
        "multinomial",
        "bytes",
    }
)

#: Raw numpy/stdlib generator factories (the provenance RPL101 rejects).
RAWGEN_FACTORIES = frozenset(
    {"default_rng", "RandomState", "Generator", "PCG64", "Philox", "SFC64",
     "MT19937", "Random"}
)


def _is_factory(atoms: set[Atom]) -> bool:
    return any(
        a.kind == "instance" and a.key[0].rsplit(".", 1)[-1] == "StreamFactory"
        for a in atoms
    )


class _RngEvaluator(SymbolicEvaluator):
    """Adds stream/rawgen semantics and records sampling sites."""

    def __init__(self, analysis: "RngProvenance", *args) -> None:
        super().__init__(*args)
        self.analysis = analysis

    def special_call(self, node, chain, recv_atoms, args, kwargs):
        if isinstance(node.func, ast.Attribute):
            name = node.func.attr
            if name == "stream" and _is_factory(recv_atoms):
                label = None
                if node.args and isinstance(node.args[0], ast.Constant):
                    label = node.args[0].value
                atom = Atom("stream", (self.module.name, node.lineno, label))
                self.analysis.record_mint(atom, self)
                return {atom}
            if name == "spawn" and _is_factory(recv_atoms):
                return {a for a in recv_atoms if a.kind == "instance"}
            if name in SAMPLING_METHODS:
                self.analysis.record_sample(node, recv_atoms, self)
                # Fall through: a project class may define the same name.
        return None

    def unknown_call(self, node, chain, recv_atoms, args, kwargs):
        if chain:
            full = self.project.qualify_chain(self.module, chain) or ".".join(
                chain
            )
            parts = full.split(".")
            if parts[-1] in RAWGEN_FACTORIES and (
                "random" in parts[:-1] or parts[0] == "random"
            ):
                return {Atom("rawgen", (self.module.name, node.lineno))}
        return set()


def _base_closure(project, info: ClassInfo | None) -> set[str]:
    """A class plus every project base reachable from it."""
    out: set[str] = set()
    frontier = [info]
    while frontier:
        current = frontier.pop()
        if current is None or current.qualname in out:
            continue
        out.add(current.qualname)
        module = project.modules.get(current.module)
        if module is None:
            continue
        for base in current.base_exprs:
            chain = dotted_name(base)
            if not chain:
                continue
            symbol = project.resolve_dotted(module, chain)
            if symbol is not None and symbol.kind == "class":
                frontier.append(project.class_info(symbol.qualname))
    return out


@register
class RngProvenance(FlowRule):
    """Every sampled generator must be a StreamFactory named stream, and
    each named stream must stay private to one component.

    Wu & Burns' ANU randomization is replayed bit-for-bit only if every
    component draws from its own deterministic stream.  A generator
    minted by ``np.random.default_rng`` (no seed-derivation discipline)
    or a stream aliased into a second class (interleaved draw order)
    both break replay in ways that only surface as flaky determinism
    tests much later.  This rule follows generator values across
    function and class boundaries; classes sharing a project base class
    are treated as one component, so polymorphic policies sampling a
    shared context stream do not fire it.
    """

    id = "RPL101"
    title = "RNG provenance: sample only from your own StreamFactory stream"
    hint = (
        "mint a dedicated stream via StreamFactory.stream(name) (or "
        "spawn(name) a child factory) for each component"
    )

    def __init__(self, project) -> None:
        super().__init__(project)
        #: stream atom -> (path, line, minting class qualname or None).
        self.mints: dict[Atom, tuple[str, int, str | None]] = {}
        #: (path, line, col) -> sample-site record.
        self.samples: dict[tuple, dict] = {}

    # -- collection hooks ---------------------------------------------
    def record_mint(self, atom: Atom, ev: _RngEvaluator) -> None:
        """Remember where a stream atom was minted (first site wins)."""
        self.mints.setdefault(
            atom,
            (
                ev.module.ctx.path,
                atom.key[1],
                ev.owner.qualname if ev.owner else None,
            ),
        )

    def record_sample(
        self, node: ast.Call, recv_atoms: set, ev: _RngEvaluator
    ) -> None:
        """Remember a sampling site and the atoms reaching its receiver."""
        key = (ev.module.ctx.path, node.lineno, node.col_offset)
        site = self.samples.setdefault(
            key,
            {
                "path": ev.module.ctx.path,
                "line": node.lineno,
                "col": node.col_offset,
                "module": ev.module,
                "owner": ev.owner.qualname if ev.owner else None,
                "atoms": set(),
            },
        )
        site["atoms"] |= recv_atoms

    # -- analysis ------------------------------------------------------
    def run(self) -> list[Diagnostic]:
        lattice = Lattice()
        run_evaluators(
            self.project,
            lambda module, qualname, fn, owner: _RngEvaluator(
                self, self.project, lattice, module, qualname, fn, owner
            ),
        )
        finalize(lattice)
        stream_owners: dict[Atom, dict[str, list[dict]]] = {}
        for site in self.samples.values():
            resolved = lattice.resolve(site["atoms"])
            self._check_rawgen(site, resolved)
            if site["owner"] is None:
                continue
            for atom in resolved:
                if atom.kind == "stream":
                    stream_owners.setdefault(atom, {}).setdefault(
                        site["owner"], []
                    ).append(site)
        self._check_sharing(stream_owners)
        return sorted(self.diagnostics)

    def _check_rawgen(self, site: dict, resolved) -> None:
        if site["module"].ctx.is_rng_module:
            return
        for atom in sorted(
            (a for a in resolved if a.kind == "rawgen"), key=lambda a: a.key
        ):
            origin_module = self.project.modules.get(atom.key[0])
            if origin_module is not None and origin_module.ctx.is_rng_module:
                continue
            self.report(
                site["path"],
                site["line"],
                site["col"],
                f"generator sampled here was minted by a raw RNG factory at "
                f"{atom.key[0]}:{atom.key[1]}, not by StreamFactory.stream",
            )

    def _check_sharing(self, stream_owners) -> None:
        for atom in sorted(stream_owners, key=lambda a: (str(a.key),)):
            owners = stream_owners[atom]
            if len(owners) < 2:
                continue
            closures = {
                qual: _base_closure(self.project, self.project.class_info(qual))
                for qual in owners
            }
            # One component = all sampling classes meet in a common
            # project-defined base (or one is a base of another).
            common = None
            for closure in closures.values():
                common = closure if common is None else common & closure
            if common:
                continue
            path, line, minter = self.mints.get(atom, ("?", atom.key[1], None))
            primary = minter if minter in owners else sorted(owners)[0]
            label = atom.key[2] or "<dynamic>"
            for qual in sorted(owners):
                if qual == primary:
                    continue
                for site in owners[qual]:
                    self.report(
                        site["path"],
                        site["line"],
                        site["col"],
                        f"RNG stream '{label}' (minted at {path}:{line}) is "
                        f"sampled by both {primary} and {qual}; streams must "
                        f"not cross class boundaries",
                    )
