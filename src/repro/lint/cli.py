"""Console entry point: ``repro-lint [paths...]``.

Exit codes: 0 clean, 1 findings, 2 usage/parse error — so CI can gate on
it directly.  ``--list-rules`` prints the rule catalogue (per-file and
whole-program), ``--select`` restricts the run to specific IDs,
``--explain RPLxxx`` prints a rule's full docstring, and ``--format``
switches between human ``text``, machine ``json``, and CI ``sarif``
output.  Results are cached by content hash in ``.repro-lint-cache/``
(``--no-cache`` / ``--cache-dir`` to control), and ``--jobs N`` spreads
the per-file phase over N spawned workers (identical output at any N —
results merge keyed by path, never by completion order).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .engine import lint_paths
from .output import render
from .rules import REGISTRY, all_flow_rules, all_rules

#: Directories linted when no paths are given (repo-root invocation).
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Codebase-aware static analysis for the repro package.",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: %(default)s)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--explain", metavar="RULE_ID",
        help="print one rule's full documentation and exit",
    )
    parser.add_argument(
        "--select", metavar="IDS",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: %(default)s)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the per-file phase (default: 1; "
        "the whole-program phase always runs in-process)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache directory (default: .repro-lint-cache)",
    )
    return parser


def _list_rules() -> int:
    for rule in [*all_rules(), *all_flow_rules()]:
        print(f"{rule.id}  {rule.title}")
    return 0


def _explain(rule_id: str) -> int:
    rule = REGISTRY.get(rule_id.upper())
    if rule is None:
        print(f"unknown rule {rule_id!r}; try --list-rules", file=sys.stderr)
        return 2
    print(f"{rule.id}: {rule.title}")
    print()
    print(rule.__doc__ or "(undocumented)")
    print(f"autofix hint: {rule.hint}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()
    if args.explain:
        return _explain(args.explain)
    rules = None
    if args.select:
        wanted = {part.strip().upper() for part in args.select.split(",")}
        unknown = wanted - set(REGISTRY)
        if unknown:
            print(f"unknown rule ids: {sorted(unknown)}", file=sys.stderr)
            return 2
        rules = [REGISTRY[rule_id] for rule_id in sorted(wanted)]
    cache = None
    if not args.no_cache:
        from .flow.cache import DEFAULT_CACHE_DIR, LintCache

        cache = LintCache(args.cache_dir or DEFAULT_CACHE_DIR)
    try:
        findings = lint_paths(
            args.paths, rules=rules, cache=cache, jobs=max(args.jobs, 1)
        )
    except SyntaxError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot read {exc.filename or '?'}: {exc.strerror}", file=sys.stderr)
        return 2
    if args.format != "text":
        print(render(findings, args.format))
        return 1 if findings else 0
    for diagnostic in findings:
        print(diagnostic.render())
    if findings:
        by_rule: dict[str, int] = {}
        for diagnostic in findings:
            by_rule[diagnostic.rule_id] = by_rule.get(diagnostic.rule_id, 0) + 1
        summary = ", ".join(f"{k}: {v}" for k, v in sorted(by_rule.items()))
        print(f"\n{len(findings)} finding(s)  ({summary})")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
