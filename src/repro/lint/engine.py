"""The ``repro-lint`` engine: file discovery, parsing, and rule dispatch.

The engine is deliberately small: it walks the given paths for ``*.py``
files, parses each into an :mod:`ast` tree wrapped in a
:class:`FileContext` (which also computes the file's place in the repo
layout — rules scope themselves by layer), instantiates every applicable
rule, and collects the surviving :class:`~.diagnostics.Diagnostic`\\ s
after suppression filtering.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Sequence

from .diagnostics import Diagnostic, SuppressionIndex
from .rules import Rule, all_rules


@dataclass
class FileContext:
    """One parsed file plus its location in the repository layout."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: SuppressionIndex = field(init=False)

    def __post_init__(self) -> None:
        """Index suppression comments once per file."""
        self.suppressions = SuppressionIndex(self.lines)

    # -- layout scoping ------------------------------------------------
    @property
    def parts(self) -> tuple[str, ...]:
        """Path components, POSIX-normalized."""
        return PurePosixPath(self.path.replace("\\", "/")).parts

    @property
    def module_path(self) -> str | None:
        """Path relative to ``src/repro/`` when inside the package, else None."""
        parts = self.parts
        for i in range(len(parts) - 1):
            if parts[i] == "src" and parts[i + 1] == "repro":
                return "/".join(parts[i + 2:])
        return None

    @property
    def in_package(self) -> bool:
        """Whether the file is production code under ``src/repro/``."""
        return self.module_path is not None

    @property
    def is_rng_module(self) -> bool:
        """Whether this is ``repro.sim.rng`` — the one sanctioned RNG home."""
        return self.module_path == "sim/rng.py"

    @property
    def in_core(self) -> bool:
        """Whether the file is part of ``repro.core`` (exact-arithmetic land)."""
        module = self.module_path
        return module is not None and module.startswith("core/")


def build_context(path: str, source: str) -> FileContext:
    """Parse ``source`` into a :class:`FileContext` (raises ``SyntaxError``)."""
    tree = ast.parse(source, filename=path)
    return FileContext(
        path=path, source=source, tree=tree, lines=source.splitlines()
    )


def lint_source(
    source: str,
    path: str = "src/repro/example.py",
    rules: Sequence[type[Rule]] | None = None,
) -> list[Diagnostic]:
    """Lint a source string as if it lived at ``path`` (test entry point)."""
    ctx = build_context(path, source)
    found: list[Diagnostic] = []
    for rule_cls in rules if rules is not None else all_rules():
        if not rule_cls.applies_to(ctx):
            continue
        rule = rule_cls(ctx)
        rule.visit(ctx.tree)
        found.extend(rule.diagnostics)
    return sorted(d for d in found if not ctx.suppressions.suppresses(d))


def lint_file(
    path: str | Path, rules: Sequence[type[Rule]] | None = None
) -> list[Diagnostic]:
    """Lint one file on disk."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, path=str(path), rules=rules)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``*.py`` list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                seen.setdefault(sub, None)
        elif p.suffix == ".py":
            seen.setdefault(p, None)
    return sorted(seen)


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[type[Rule]] | None = None,
) -> list[Diagnostic]:
    """Lint every Python file under ``paths``; returns sorted diagnostics."""
    found: list[Diagnostic] = []
    for file in iter_python_files(paths):
        found.extend(lint_file(file, rules=rules))
    return sorted(found)
