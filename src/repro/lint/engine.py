"""The ``repro-lint`` engine: file discovery, parsing, and rule dispatch.

The engine walks the given paths for ``*.py`` files, parses each into an
:mod:`ast` tree wrapped in a :class:`FileContext` (which also computes
the file's place in the repo layout — rules scope themselves by layer,
and :mod:`repro.lint.policy` scopes them by tree), runs every applicable
per-file rule, and then hands the package files to the whole-program
analyses in :mod:`repro.lint.flow`.

Both halves are cached by content hash (see
:mod:`repro.lint.flow.cache`): pass a :class:`~repro.lint.flow.cache.
LintCache` to :func:`lint_paths` and warm full-tree runs skip parsing
and analysis entirely.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Mapping, Sequence

from . import policy
from ..sweep.api import clear_process_caches, worker_entry
from .diagnostics import Diagnostic, SuppressionIndex
from .rules import REGISTRY, FlowRule, Rule, all_rules


@dataclass
class FileContext:
    """One parsed file plus its location in the repository layout."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: SuppressionIndex = field(init=False)

    def __post_init__(self) -> None:
        """Index suppression comments once per file."""
        self.suppressions = SuppressionIndex(self.lines)

    # -- layout scoping ------------------------------------------------
    @property
    def parts(self) -> tuple[str, ...]:
        """Path components, POSIX-normalized."""
        return PurePosixPath(self.path.replace("\\", "/")).parts

    @property
    def module_path(self) -> str | None:
        """Path relative to ``src/repro/`` when inside the package, else None."""
        return _package_path(self.path)

    @property
    def in_package(self) -> bool:
        """Whether the file is production code under ``src/repro/``."""
        return self.module_path is not None

    @property
    def is_rng_module(self) -> bool:
        """Whether this is ``repro.sim.rng`` — the one sanctioned RNG home."""
        return self.module_path == "sim/rng.py"

    @property
    def in_core(self) -> bool:
        """Whether the file is part of ``repro.core`` (exact-arithmetic land)."""
        module = self.module_path
        return module is not None and module.startswith("core/")


def _package_path(path: str) -> str | None:
    """Path relative to ``src/repro/`` when inside the package, else None."""
    parts = PurePosixPath(str(path).replace("\\", "/")).parts
    for i in range(len(parts) - 1):
        if parts[i] == "src" and parts[i + 1] == "repro":
            return "/".join(parts[i + 2:])
    return None


def build_context(path: str, source: str) -> FileContext:
    """Parse ``source`` into a :class:`FileContext` (raises ``SyntaxError``)."""
    tree = ast.parse(source, filename=path)
    return FileContext(
        path=path, source=source, tree=tree, lines=source.splitlines()
    )


def _file_rules(rules: Sequence[type] | None) -> Sequence[type] | None:
    if rules is None:
        return None
    return [r for r in rules if issubclass(r, Rule)]


def _flow_rules(rules: Sequence[type] | None) -> Sequence[type] | None:
    if rules is None:
        return None
    return [r for r in rules if issubclass(r, FlowRule)]


def _lint_context(
    ctx: FileContext, rules: Sequence[type] | None
) -> list[Diagnostic]:
    """Per-file rules over one parsed file (policy + suppressions applied)."""
    excluded = policy.excluded_rules(ctx.path)
    found: list[Diagnostic] = []
    for rule_cls in rules if rules is not None else all_rules():
        if not issubclass(rule_cls, Rule):
            continue
        if rule_cls.id in excluded or not rule_cls.applies_to(ctx):
            continue
        rule = rule_cls(ctx)
        rule.visit(ctx.tree)
        found.extend(rule.diagnostics)
    return sorted(d for d in found if not ctx.suppressions.suppresses(d))


def lint_source(
    source: str,
    path: str = "src/repro/example.py",
    rules: Sequence[type] | None = None,
) -> list[Diagnostic]:
    """Lint a source string as if it lived at ``path`` (test entry point).

    Runs per-file rules only; whole-program rules need a project — see
    :func:`lint_project`.
    """
    return _lint_context(build_context(path, source), rules)


def lint_file(
    path: str | Path, rules: Sequence[type] | None = None
) -> list[Diagnostic]:
    """Lint one file on disk."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, path=str(path), rules=rules)


def lint_project(
    sources: Mapping[str, str],
    rules: Sequence[type] | None = None,
) -> list[Diagnostic]:
    """Lint an in-memory project: per-file rules plus flow analyses.

    ``sources`` maps synthetic paths to source text; files whose paths
    place them under ``src/repro/`` participate in the whole-program
    analyses.  This is the fixture entry point for the RPL1xx rules.
    """
    from .flow import analyze_project

    contexts = [build_context(path, text) for path, text in sources.items()]
    found: list[Diagnostic] = []
    for ctx in contexts:
        found.extend(_lint_context(ctx, rules))
    found.extend(analyze_project(contexts, rules=_flow_rules(rules)))
    return sorted(found)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``*.py`` list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                seen.setdefault(sub, None)
        elif p.suffix == ".py":
            seen.setdefault(p, None)
    return sorted(seen)


def _lint_worker_init() -> None:
    """Reset process-local caches before a lint worker computes."""
    clear_process_caches()


@worker_entry
def _lint_file_worker(item: tuple) -> tuple:
    """Per-file rule pass over one file, run inside a lint worker.

    ``item`` is ``(path, text, rule_ids)`` — plain scalars so the
    payload pickles under any start method; rule classes are re-looked
    up from the registry the spawned child rebuilt at import time.
    Returns ``(path, diagnostics)``.
    """
    path, text, rule_ids = item
    rules = (
        None
        if rule_ids is None
        else [REGISTRY[rule_id] for rule_id in rule_ids]
    )
    return path, _lint_context(build_context(path, text), rules)


def _registry_ids(file_rules: Sequence[type] | None) -> tuple | None:
    """Registry IDs for ``file_rules``, or None when they have none.

    Workers rebuild rule classes from :data:`~repro.lint.rules.REGISTRY`
    by ID; ad-hoc rule classes (test doubles) are not in the registry,
    so files selecting them must lint in-process.  ``(None,)`` sentinel
    distinguishes "run everything" from "cannot serialize".
    """
    if file_rules is None:
        return (None,)
    if any(REGISTRY.get(rule.id) is not rule for rule in file_rules):
        return None
    return (tuple(sorted(rule.id for rule in file_rules)),)


def _lint_pending(
    pending: Sequence[tuple],
    file_rules: Sequence[type] | None,
    jobs: int,
    contexts: dict,
) -> dict[str, list[Diagnostic]]:
    """Per-file diagnostics for every cache miss, keyed by path.

    With ``jobs > 1`` the files are farmed to a spawn pool; results are
    keyed by path (not arrival order), so worker count and scheduling
    cannot affect the merged output.  Falls back to in-process linting
    when the rule selection cannot be rebuilt from the registry.
    """
    results: dict[str, list[Diagnostic]] = {}
    wrapped = _registry_ids(file_rules)
    if jobs > 1 and len(pending) > 1 and wrapped is not None:
        import multiprocessing

        rule_ids = wrapped[0]
        items = [(path, text, rule_ids) for path, text, _ in pending]
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(jobs, initializer=_lint_worker_init) as pool:
            for path, diagnostics in pool.imap_unordered(
                _lint_file_worker, items
            ):
                results[path] = diagnostics
        return results
    for path, text, _ in pending:
        file_ctx = build_context(path, text)
        contexts[path] = file_ctx
        results[path] = _lint_context(file_ctx, file_rules)
    return results


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[type] | None = None,
    cache=None,
    jobs: int = 1,
) -> list[Diagnostic]:
    """Lint every Python file under ``paths``; returns sorted diagnostics.

    Runs the per-file rules on each file and the whole-program (flow)
    rules on the package files among them.  ``cache`` is an optional
    :class:`~repro.lint.flow.cache.LintCache`; hits skip parsing and
    analysis (the flow result is keyed by the hash of *every* package
    file, so cross-file staleness is impossible).  ``jobs > 1`` spreads
    the per-file phase over that many spawned worker processes (results
    are keyed by path, so the output is identical at any worker count);
    the whole-program phase always runs in-process.
    """
    from .flow import analyze_project
    from .flow.cache import content_hash, project_hash, rules_token

    token = rules_token(sorted(r.id for r in rules) if rules is not None else None)
    file_rules = _file_rules(rules)
    flow_rules = _flow_rules(rules)

    found: list[Diagnostic] = []
    contexts: dict[str, FileContext] = {}
    package_files: list[tuple[str, str, str]] = []  # (path, source, hash)
    pending: list[tuple[str, str, str]] = []  # cache-missed (path, text, hash)
    for file in iter_python_files(paths):
        path = str(file)
        text = file.read_text(encoding="utf-8")
        digest = content_hash(text)
        cached = cache.get_file(digest, token) if cache is not None else None
        if cached is not None:
            found.extend(cached)
        else:
            pending.append((path, text, digest))
        if _package_path(path) is not None:
            package_files.append((path, text, digest))

    per_file = _lint_pending(pending, file_rules, jobs, contexts)
    for path, _, digest in pending:
        diagnostics = per_file[path]
        if cache is not None:
            cache.put_file(digest, token, diagnostics)
        found.extend(diagnostics)

    run_flow = (flow_rules is None or flow_rules) and package_files
    if run_flow:
        tree_hash = project_hash((p, h) for p, _, h in package_files)
        cached = (
            cache.get_project(tree_hash, token) if cache is not None else None
        )
        if cached is not None:
            found.extend(cached)
        else:
            project_contexts = [
                contexts.get(p) or build_context(p, text)
                for p, text, _ in package_files
            ]
            flow_diags = analyze_project(project_contexts, rules=flow_rules)
            if cache is not None:
                cache.put_project(tree_hash, token, flow_diags)
            found.extend(flow_diags)
    if cache is not None:
        cache.save()
    return sorted(found)
