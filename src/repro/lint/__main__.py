"""``python -m repro.lint`` — same behaviour as the console script."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
