"""Machine-readable output for ``repro-lint``: JSON and SARIF 2.1.0.

The SARIF document is what CI uploads so findings surface as pull-request
annotations (``github/codeql-action/upload-sarif``).  Only the subset of
SARIF the GitHub code-scanning ingester reads is emitted: one run, one
tool driver with the rule catalogue, and one result per diagnostic with
a physical location.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from .diagnostics import Diagnostic
from .rules import REGISTRY

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_INFO_URI = "https://github.com/repro/handling-heterogeneity"


def to_json(diagnostics: Sequence[Diagnostic]) -> str:
    """The findings as a JSON array of objects (stable key order)."""
    rows = [
        {
            "path": d.path,
            "line": d.line,
            "col": d.col,
            "rule_id": d.rule_id,
            "message": d.message,
            "hint": d.hint,
        }
        for d in diagnostics
    ]
    return json.dumps(rows, indent=2)


def _sarif_rules(rule_ids: Iterable[str]) -> list[dict]:
    rules = []
    for rule_id in sorted(set(rule_ids)):
        rule_cls = REGISTRY.get(rule_id)
        if rule_cls is None:
            rules.append({"id": rule_id})
            continue
        rules.append(
            {
                "id": rule_id,
                "name": rule_cls.__name__,
                "shortDescription": {"text": rule_cls.title},
                "fullDescription": {
                    "text": " ".join((rule_cls.__doc__ or "").split())
                },
                "help": {"text": f"fix: {rule_cls.hint}"},
                "defaultConfiguration": {"level": "warning"},
            }
        )
    return rules


def to_sarif(diagnostics: Sequence[Diagnostic]) -> str:
    """The findings as a SARIF 2.1.0 document (one run)."""
    results = [
        {
            "ruleId": d.rule_id,
            "level": "warning",
            "message": {
                "text": d.message + (f" [fix: {d.hint}]" if d.hint else "")
            },
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": d.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": d.line,
                            # SARIF columns are 1-based; ast's are 0-based.
                            "startColumn": d.col + 1,
                        },
                    }
                }
            ],
        }
        for d in diagnostics
    ]
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": _INFO_URI,
                        "rules": _sarif_rules(
                            sorted({d.rule_id for d in diagnostics})
                            or sorted(REGISTRY)
                        ),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)


def render(diagnostics: Sequence[Diagnostic], fmt: str) -> str:
    """The findings in ``fmt`` (``text``/``json``/``sarif``)."""
    if fmt == "json":
        return to_json(diagnostics)
    if fmt == "sarif":
        return to_sarif(diagnostics)
    return "\n".join(d.render() for d in diagnostics)
