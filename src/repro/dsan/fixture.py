"""Planted-nondeterminism fixture: the dsan's own test subject.

A tiny fake harness with a deliberate replay bug: file-set *arrivals*
are emitted in sorted (stable) order, but *dispatches* iterate a ``set``
whose iteration order depends on ``PYTHONHASHSEED``.  Two runs of the
same seed in processes with different hash seeds therefore agree on the
arrival prefix and diverge at the first dispatch — a known ground truth
the end-to-end tests (and the tutorial) use to show ``repro-dsan``
bisecting to the exact first divergent event.

This is *fixture* code: the unordered iteration is the whole point, so
the RPL003 suppression below is load-bearing.  Real harness code must
never need one.
"""

from __future__ import annotations

from ..units import Seconds
from ..runtime.telemetry import (
    RequestArrived,
    RequestDispatched,
    TelemetrySink,
)

#: Servers the fixture "dispatches" to, round-robin by emission order.
_SERVERS = ("server0", "server1", "server2")


def run_planted(
    seed: int, sink: TelemetrySink, quick: bool = True
) -> None:
    """Emit a stable arrival prefix, then hash-order-dependent dispatches.

    ``seed`` sizes the workload (so different seeds give different
    chains, like a real harness); the nondeterminism itself is the
    ``set`` iteration feeding placement, independent of the seed.
    """
    count = (16 if quick else 64) + (seed % 7)
    filesets = {f"fs{i:03d}" for i in range(count)}
    for i, name in enumerate(sorted(filesets)):
        if sink.enabled:
            sink.emit(
                RequestArrived(
                    time=Seconds(float(i)), fileset=name, cost=0.25
                )
            )
    # The planted bug: placement order leaks set iteration order.
    for i, name in enumerate(set(filesets)):  # repro-lint: disable=RPL003
        if sink.enabled:
            sink.emit(
                RequestDispatched(
                    time=Seconds(float(count + i)),
                    fileset=name,
                    server=_SERVERS[i % len(_SERVERS)],
                    service_time=Seconds(0.25),
                )
            )
