"""``repro-dsan``: run a scenario twice, diff the telemetry digest chains.

Usage::

    repro-dsan cluster --seed 3 --quick --hashseed-perturb
    repro-dsan planted --hashseed-perturb --format sarif --output dsan.sarif
    repro-dsan --list

Exit codes mirror ``repro-lint``: 0 when every comparison replayed
bit-identically, 1 when a divergence was found (the report names the
first divergent event), 2 on usage errors.  The hidden ``--worker`` mode
is the per-run subprocess body spawned by :mod:`repro.dsan.runner` —
it executes one scenario into a digest sink and prints the chain and
records as JSON on stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from ..lint.output import render
from .runner import SCENARIOS, compare, diagnose, run_scenario


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dsan",
        description=(
            "Determinism sanitizer: replay a scenario under perturbation "
            "and bisect the telemetry digest chains to the first "
            "divergent event."
        ),
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        choices=sorted(SCENARIOS),
        help="scenario to sanitize (see --list)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="simulation seed (default 0)"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller workload (CI-sized)"
    )
    parser.add_argument(
        "--hashseed-perturb",
        action="store_true",
        help="run the second pass under a different PYTHONHASHSEED",
    )
    parser.add_argument(
        "--gc-jitter",
        action="store_true",
        help="force gc.collect() on a cadence in the second pass",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--output", help="write the report here instead of stdout"
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    # Internal: subprocess body for one sanitizer run.
    parser.add_argument("--worker", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument(
        "--gc-every", type=int, default=0, help=argparse.SUPPRESS
    )
    return parser


def _worker(args: argparse.Namespace) -> int:
    """One in-process run; prints ``{"chain": ..., "records": ...}``."""
    sink = run_scenario(
        args.scenario, args.seed, quick=args.quick, gc_every=args.gc_every
    )
    assert sink.records is not None
    json.dump(
        {
            "chain": sink.chain,
            "records": [record.to_dict() for record in sink.records],
        },
        sys.stdout,
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list:
        for name in sorted(SCENARIOS):
            doc = (SCENARIOS[name].__doc__ or "").strip().splitlines()[0]
            print(f"{name:<10} {doc}")
        return 0
    if args.scenario is None:
        parser.print_usage(sys.stderr)
        print("repro-dsan: a scenario is required (see --list)", file=sys.stderr)
        return 2
    if args.worker:
        return _worker(args)

    divergence = compare(
        args.scenario,
        args.seed,
        quick=args.quick,
        hashseed_perturb=args.hashseed_perturb,
        gc_jitter=args.gc_jitter,
    )
    findings = diagnose(divergence)
    report = render(findings, args.format)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as file:
            file.write(report)
            file.write("\n")
    elif report:
        print(report)
    if divergence.diverged:
        print(
            f"repro-dsan: {args.scenario} seed {args.seed} diverged at "
            f"event {divergence.index} ({divergence.perturbation})",
            file=sys.stderr,
        )
        return 1
    print(
        f"repro-dsan: {args.scenario} seed {args.seed} replayed "
        f"bit-identically over {divergence.baseline_len} events "
        f"({divergence.perturbation})",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
