"""Determinism sanitizer (``repro-dsan``): replay, diff, bisect.

The static rules (RPL104–106) prove properties about the code; this
package checks the property that actually matters at run time — that a
seeded scenario replays *bit-identically* under perturbations a correct
harness must not observe (``PYTHONHASHSEED``, GC cadence).  Each run
folds its telemetry stream into a rolling hash chain
(:class:`~repro.runtime.telemetry.DigestSink`); two chains are bisected to the
first divergent event, which is reported as a record, not a stack trace.

- :func:`compare` — run a scenario twice (fresh subprocesses) and diff;
- :func:`run_scenario` — one in-process run into a digest sink;
- :data:`SCENARIOS` — runnable scenarios, including the deliberately
  nondeterministic ``planted`` fixture that self-tests the bisector;
- :func:`diagnose` — a divergence as lint diagnostics (text/SARIF).
"""

from .runner import SCENARIOS, Divergence, compare, diagnose, run_scenario

__all__ = [
    "SCENARIOS",
    "Divergence",
    "compare",
    "diagnose",
    "run_scenario",
]
