"""``python -m repro.dsan`` — alias for the ``repro-dsan`` console script."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
