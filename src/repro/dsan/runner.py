"""The determinism-sanitizer engine: run twice, diff chains, bisect.

``repro-dsan`` answers the question the golden-replay tests can only
raise: *where* did two supposedly identical runs part ways?  Each run
executes in its own subprocess with a pinned ``PYTHONHASHSEED`` (the
perturbed run gets a different one, and optionally a forced-``gc.collect``
jitter sink), folding every telemetry record into a
:class:`~repro.runtime.telemetry.DigestSink` hash chain.  The chains are
then bisected with
:func:`~repro.runtime.telemetry.first_divergence` and the first
divergent event is reported *by record*, not just by index.

Subprocesses are essential, not a convenience: a process's string hash
order is fixed at startup, so hash-seed perturbation cannot be done
in-process, and a fresh interpreter also rules out cross-run state leaks
(module caches, interned objects) as hidden coupling between the two
runs being compared.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from ..lint.diagnostics import Diagnostic
from ..runtime.telemetry import (
    DigestSink,
    TelemetryRecord,
    TelemetrySink,
    first_divergence,
)

__all__ = [
    "SCENARIOS",
    "Divergence",
    "GcJitterSink",
    "compare",
    "diagnose",
    "run_scenario",
]


# ----------------------------------------------------------------------
# Scenario registry: name -> callable(seed, sink, quick).
# ----------------------------------------------------------------------

def _cluster(seed: int, sink: TelemetrySink, quick: bool) -> None:
    """Chaos-soak the queueing stack (the CI smoke scenario)."""
    from ..cluster import ClusterConfig, ClusterSimulation, paper_servers
    from ..membership.injector import FaultInjector
    from ..membership.soak import SOAK_CHURN
    from ..placement import ANUPolicy
    from ..units import Seconds
    from ..workloads import SyntheticConfig, generate_synthetic

    trace = generate_synthetic(
        SyntheticConfig(
            n_filesets=20,
            n_requests=600 if quick else 4000,
            duration=900.0,
            request_cost=0.3,
            seed=seed,
        )
    )
    speeds = {s.name: s.speed for s in paper_servers()}
    faults = FaultInjector(speeds, SOAK_CHURN, seed=seed).generate(
        Seconds(trace.duration)
    )
    config = ClusterConfig(
        servers=paper_servers(),
        tuning_interval=120.0,
        sample_window=60.0,
        seed=seed,
    )
    ClusterSimulation(config, ANUPolicy(), trace, faults, telemetry=sink).run()


def _fs(seed: int, sink: TelemetrySink, quick: bool) -> None:
    """Run the timed semantic stack on a generated operation stream."""
    from ..cluster import ServerSpec
    from ..fs import FsWorkloadConfig, MetadataCluster, generate_operations
    from ..runtime import Scenario

    roots = {f"vol{i:02d}": f"/vol{i:02d}" for i in range(6)}
    ops = generate_operations(
        MetadataCluster(["gen"], roots),
        FsWorkloadConfig(
            n_operations=400 if quick else 2500, duration=600.0, seed=seed
        ),
    )
    Scenario(
        servers=[ServerSpec(f"server{i}", float(2 * i + 1)) for i in range(4)],
        operations=ops,
        fileset_roots=roots,
        seed=seed,
        mean_op_cost=1.0,
    ).run_full_system(sink)


def _proto(seed: int, sink: TelemetrySink, quick: bool) -> None:
    """Run the protocol-driven queueing stack."""
    from ..cluster import ServerSpec
    from ..runtime import Scenario
    from ..workloads import SyntheticConfig, generate_synthetic

    trace = generate_synthetic(
        SyntheticConfig(
            n_filesets=16,
            n_requests=400 if quick else 2500,
            duration=600.0,
            request_cost=0.3,
            seed=seed,
        )
    )
    Scenario(
        servers=[ServerSpec(f"server{i}", float(2 * i + 1)) for i in range(4)],
        trace=trace,
        seed=seed,
    ).run_protocol(sink)


def _planted(seed: int, sink: TelemetrySink, quick: bool) -> None:
    """The deliberately nondeterministic fixture (self-test subject)."""
    from .fixture import run_planted

    run_planted(seed, sink, quick=quick)


#: Runnable scenarios; ``planted`` exists to prove the sanitizer works.
SCENARIOS: dict[str, Callable[[int, TelemetrySink, bool], None]] = {
    "cluster": _cluster,
    "fs": _fs,
    "proto": _proto,
    "planted": _planted,
}


class GcJitterSink(TelemetrySink):
    """Forwards to an inner sink, forcing a GC cycle every ``every`` records.

    Garbage collection must be observationally invisible to a seeded
    run; forcing it at a different cadence than the baseline flushes out
    code whose results depend on object lifetimes (``id()`` ordering,
    weakref callbacks, ``__del__`` side effects).
    """

    def __init__(self, inner: TelemetrySink, every: int) -> None:
        self.inner = inner
        self.every = max(1, every)
        self._count = 0

    def emit(self, record: TelemetryRecord) -> None:
        """Forward the record, collecting garbage on the jitter cadence."""
        import gc

        self.inner.emit(record)
        self._count += 1
        if self._count % self.every == 0:
            gc.collect()


def run_scenario(
    scenario: str,
    seed: int,
    quick: bool = True,
    gc_every: int = 0,
) -> DigestSink:
    """Run one scenario in-process into a record-keeping DigestSink."""
    try:
        runner = SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r} (have {', '.join(sorted(SCENARIOS))})"
        ) from None
    sink = DigestSink(keep_records=True)
    target: TelemetrySink = sink if gc_every == 0 else GcJitterSink(sink, gc_every)
    runner(seed, target, quick)
    return sink


# ----------------------------------------------------------------------
# Two-run comparison
# ----------------------------------------------------------------------

@dataclass
class Divergence:
    """Outcome of one baseline-vs-perturbed comparison.

    ``index`` is the first divergent event (0-based position in the
    telemetry stream), or ``None`` when the chains match end to end.
    """

    scenario: str
    seed: int
    perturbation: str
    index: int | None
    baseline_len: int
    perturbed_len: int
    #: ``to_dict`` payloads of the records at ``index`` (None when the
    #: run matched, or when that side's stream ended before ``index``).
    baseline_record: dict[str, Any] | None = None
    perturbed_record: dict[str, Any] | None = None

    @property
    def diverged(self) -> bool:
        return self.index is not None


def _worker_env(hashseed: int) -> dict[str, str]:
    """Subprocess environment: pinned hash seed, repo importable."""
    import repro

    env = os.environ.copy()
    env["PYTHONHASHSEED"] = str(hashseed)
    src = str(Path(repro.__file__).resolve().parent.parent)
    extra = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{extra}" if extra else src
    return env


def _spawn(
    scenario: str,
    seed: int,
    quick: bool,
    hashseed: int,
    gc_every: int,
) -> dict[str, Any]:
    """One sanitizer run in a fresh interpreter; returns chain + records."""
    cmd = [
        sys.executable,
        "-m",
        "repro.dsan",
        scenario,
        "--worker",
        "--seed",
        str(seed),
    ]
    if quick:
        cmd.append("--quick")
    if gc_every:
        cmd.extend(["--gc-every", str(gc_every)])
    proc = subprocess.run(
        cmd, capture_output=True, text=True, env=_worker_env(hashseed)
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"dsan worker failed (scenario {scenario!r}, seed {seed}, "
            f"PYTHONHASHSEED={hashseed}):\n{proc.stderr.strip()}"
        )
    return json.loads(proc.stdout)


def compare(
    scenario: str,
    seed: int,
    *,
    quick: bool = True,
    hashseed_perturb: bool = False,
    gc_jitter: bool = False,
) -> Divergence:
    """Run a scenario twice and bisect the digest chains.

    The baseline always runs under ``PYTHONHASHSEED=0``.  The second run
    repeats it exactly — same seed, same workload — under
    ``PYTHONHASHSEED=1`` when ``hashseed_perturb`` is set and/or with
    forced-GC jitter; a deterministic harness must produce the identical
    chain regardless.
    """
    if scenario not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {scenario!r} (have {', '.join(sorted(SCENARIOS))})"
        )
    perturbations = []
    if hashseed_perturb:
        perturbations.append("PYTHONHASHSEED 0->1")
    if gc_jitter:
        perturbations.append("forced-GC jitter")
    baseline = _spawn(scenario, seed, quick, hashseed=0, gc_every=0)
    perturbed = _spawn(
        scenario,
        seed,
        quick,
        hashseed=1 if hashseed_perturb else 0,
        gc_every=64 if gc_jitter else 0,
    )
    index = first_divergence(baseline["chain"], perturbed["chain"])

    def _record(run: dict[str, Any], i: int | None) -> dict[str, Any] | None:
        if i is None or i >= len(run["records"]):
            return None
        return run["records"][i]

    return Divergence(
        scenario=scenario,
        seed=seed,
        perturbation=", ".join(perturbations) or "exact repeat",
        index=index,
        baseline_len=len(baseline["chain"]),
        perturbed_len=len(perturbed["chain"]),
        baseline_record=_record(baseline, index),
        perturbed_record=_record(perturbed, index),
    )


def diagnose(divergence: Divergence) -> list[Diagnostic]:
    """Render a divergence as lint diagnostics (text/SARIF via lint.output).

    The ``path`` is a pseudo-location naming the scenario; ``line`` is
    the 1-based event index so SARIF viewers sort streams correctly.
    """
    if not divergence.diverged:
        return []
    assert divergence.index is not None
    base = json.dumps(divergence.baseline_record, sort_keys=True)
    pert = json.dumps(divergence.perturbed_record, sort_keys=True)
    message = (
        f"seed {divergence.seed} replay diverges at event "
        f"{divergence.index} under {divergence.perturbation}: "
        f"baseline={base} perturbed={pert} "
        f"(chains: {divergence.baseline_len} vs {divergence.perturbed_len} "
        f"events)"
    )
    return [
        Diagnostic(
            path=f"dsan/{divergence.scenario}",
            line=divergence.index + 1,
            col=0,
            rule_id="DSAN001",
            message=message,
            hint=(
                "the first divergent record names the subsystem; look for "
                "unordered iteration, ambient reads, or unseeded RNG on "
                "the path that emits it"
            ),
        )
    ]
