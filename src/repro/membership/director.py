"""One membership-change driver for every harness stack.

Before this package, the paper's §4 recovery story — re-home the failed
server's file sets, preserve everyone else's cache, reset the delegate's
latency history because it straddles the change — was implemented three
times: once in the queueing simulation's fault handler, once in the
semantic metadata cluster's ``fail_server``/``add_server``/
``remove_server`` methods, and once (partially) in the protocol control
plane.  :class:`MembershipDirector` owns that logic once:

1. **telemetry** — emit :class:`~repro.runtime.telemetry.FaultInjected`
   before the change and a classified
   :class:`~repro.runtime.telemetry.MembershipChanged` after it;
2. **legality** — drive the event through the
   :class:`~repro.membership.lifecycle.MembershipRoster` state machine,
   so an illegal transition raises before any harness state mutates;
3. **realization** — call the harness's kind-specific primitive
   (crash / drain / restart / install) through the
   :class:`MembershipHost` protocol;
4. **re-placement** — ask the host for its post-change assignment
   (``PlacementPolicy.on_membership_change`` or a direct
   ``ANUPlacement`` re-probe; the placement layer repartitions whenever
   ``p < 2*(n+1)``), reset delegate report history (the paper's
   stateless recovery), classify the resulting moves with
   :func:`~repro.core.movement.diff_owner_sets` into *orphan re-homes*
   versus *live rebalances* (slot-wise, so replicated hosts orphan a
   file set only when every owner is gone), and have the host realize
   the diff;
5. **re-injection** — hand any work orphaned by a crash back to the host
   for re-dispatch, after the re-placement so it routes to the new
   owners.

Hosts only implement primitives; ordering, legality, classification, and
telemetry are identical across all three stacks by construction.

Gray failures (``DEGRADE``/``RESTORE``) take a deliberately shorter path:
legality through the roster, a :class:`FaultInjected` +
:class:`~repro.runtime.telemetry.SpeedChanged` pair, and the
:meth:`MembershipHost.set_speed` primitive — **no** re-placement, **no**
history reset, **no** ``MembershipChanged``.  A limping server is
indistinguishable from a healthy one to every detector in the system;
only the tuner's observed latencies can reveal it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Protocol

from ..core.movement import ReconfigDiff, diff_owner_sets
from ..runtime.telemetry import (
    NULL_SINK,
    FaultInjected,
    MembershipChanged,
    SpeedChanged,
    TelemetrySink,
)
from ..units import Seconds
from .faults import FaultEvent, FaultKind
from .lifecycle import LifecycleError, MembershipRoster

__all__ = ["MembershipHost", "MembershipChange", "MembershipDirector"]


class MembershipHost(Protocol):
    """What a harness provides for :class:`MembershipDirector` to drive it.

    The five lifecycle primitives mutate harness state only; re-placement
    and movement go through :meth:`membership_assignment` /
    :meth:`realize_membership` so the director can classify moves
    uniformly.  ``now`` is the harness's simulated time (engine-driven
    harnesses may ignore it).
    """

    def crash_server(self, server: str, now: Seconds) -> Any:
        """Hard-kill ``server``; returns orphaned work for
        :meth:`reinject` (or ``None``)."""

    def drain_server(self, server: str, now: Seconds) -> None:
        """Begin a graceful decommission (flush + stop accepting work)."""

    def restart_server(self, server: str, now: Seconds) -> None:
        """Bring a failed/drained server back (cold cache)."""

    def install_server(self, server: str, speed: float, now: Seconds) -> None:
        """Register a newly commissioned server."""

    def set_speed(self, server: str, factor: float, now: Seconds) -> None:
        """Realize a gray failure: scale ``server``'s effective speed to
        ``factor`` × its base speed (``factor == 1.0`` restores it).
        Unlike the five lifecycle primitives this triggers no
        re-placement — a limping server keeps its share until the tuner
        routes around it."""

    def delegate_failover(self, now: Seconds) -> str | None:
        """Fail the tuning delegate over; returns the name of a server
        that crashed as a result (``None`` when the fail-over is purely
        logical, as in the queueing harness)."""

    def membership_assignment(
        self,
    ) -> tuple[dict[str, str], dict[str, str]] | None:
        """(old, new) file-set assignments after the server-set change,
        or ``None`` when this host manages no placement (control plane)."""

    def reset_round_history(self) -> None:
        """Forget delegate report history (it straddles the change)."""

    def realize_membership(
        self, old: dict[str, str], new: dict[str, str], now: Seconds
    ) -> None:
        """Turn the assignment diff into movement on the harness."""

    def reinject(self, orphans: Any, now: Seconds) -> None:
        """Re-dispatch work orphaned by a crash (post-re-placement)."""


@dataclass(frozen=True)
class MembershipChange:
    """What one applied lifecycle event did to the cluster."""

    event: FaultEvent
    #: Live servers after the event.
    live: tuple[str, ...]
    #: Assignment diff of the re-placement (None when the host manages no
    #: placement, or for a purely-logical delegate crash).
    diff: ReconfigDiff | None
    #: Moves whose source is gone (recovery moves / fresh placements).
    orphaned: int
    #: Moves between live servers (boundary shifts from re-scaling).
    rebalanced: int

    @property
    def moved(self) -> int:
        return self.diff.moved if self.diff is not None else 0

    @property
    def stayed(self) -> int:
        return self.diff.stayed if self.diff is not None else 0


class MembershipDirector:
    """Applies :class:`FaultEvent`s to a harness, uniformly.

    ``clock`` supplies the current simulated time for telemetry when the
    caller does not pass one (engine-driven harnesses hand in
    ``lambda: engine.now``; direct-call harnesses pass ``now=`` per
    event).
    """

    def __init__(
        self,
        roster: MembershipRoster,
        host: MembershipHost,
        telemetry: TelemetrySink = NULL_SINK,
        clock: Callable[[], Seconds] | None = None,
    ) -> None:
        self.roster = roster
        self.host = host
        self.telemetry = telemetry
        self._clock = clock
        #: Applied events, in order (cheap audit trail for tests/soaks).
        self.applied: list[FaultEvent] = []

    # ------------------------------------------------------------------
    def apply(
        self, event: FaultEvent, now: Seconds | None = None
    ) -> MembershipChange:
        """Apply one lifecycle event end-to-end; returns what changed."""
        if now is None:
            now = self._clock() if self._clock is not None else Seconds(0.0)
        kind = event.kind
        sink = self.telemetry
        # Legality first: the roster transition validates (and records)
        # the membership change, raising LifecycleError on an illegal
        # event *before* any telemetry is published — a rejected event
        # must leave no trace in the record stream (RPL105).  The roster
        # emits nothing itself, so for legal events the stream is
        # byte-identical to emitting up front.
        if kind is FaultKind.DELEGATE_CRASH:
            if self.roster.live_count < 2:
                raise LifecycleError(
                    f"delegate crash with {self.roster.live_count} live "
                    f"server(s); fail-over needs a surviving server"
                )
        elif kind is FaultKind.FAIL:
            self.roster.fail(event.server)
        elif kind is FaultKind.DECOMMISSION:
            self.roster.decommission(event.server)
        elif kind is FaultKind.RECOVER:
            self.roster.recover(event.server)
        elif kind is FaultKind.COMMISSION:
            self.roster.commission(event.server, event.speed)
        elif kind is FaultKind.DEGRADE:
            self.roster.degrade(event.server, event.factor)
        elif kind is FaultKind.RESTORE:
            self.roster.restore(event.server)
        else:  # pragma: no cover - enum is closed
            raise AssertionError(f"unhandled fault kind {kind!r}")
        if sink.enabled:
            sink.emit(
                FaultInjected(time=now, fault=kind.value, server=event.server)
            )
        # Gray failures never reshape membership: the server stays live
        # with its mapped share, no re-placement runs, no delegate
        # history is reset — the *whole point* is that the system gets no
        # out-of-band signal and must route around the limp via observed
        # latency.  Only the effective speed (and a SpeedChanged record)
        # move.
        if kind in (FaultKind.DEGRADE, FaultKind.RESTORE):
            factor = event.factor if kind is FaultKind.DEGRADE else 1.0
            self.host.set_speed(event.server, factor, now)
            if sink.enabled:
                sink.emit(
                    SpeedChanged(
                        time=now,
                        server=event.server,
                        factor=factor,
                        effective_speed=self.roster.effective_speed(
                            event.server
                        ),
                    )
                )
            change = MembershipChange(
                event=event, live=tuple(self.roster.live()), diff=None,
                orphaned=0, rebalanced=0,
            )
            self.applied.append(event)
            return change
        # Realization: drive the host and re-place load now that the
        # event is known legal and announced.
        orphans: Any = None
        diff: ReconfigDiff | None = None
        if kind is FaultKind.DELEGATE_CRASH:
            victim = self.host.delegate_failover(now)
            if victim is not None:
                self.roster.fail(victim)
        elif kind is FaultKind.FAIL:
            orphans = self.host.crash_server(event.server, now)
            diff = self._rebalance(now)
        elif kind is FaultKind.DECOMMISSION:
            self.host.drain_server(event.server, now)
            diff = self._rebalance(now)
        elif kind is FaultKind.RECOVER:
            self.host.restart_server(event.server, now)
            diff = self._rebalance(now)
        elif kind is FaultKind.COMMISSION:
            self.host.install_server(event.server, event.speed, now)
            diff = self._rebalance(now)

        live = tuple(self.roster.live())
        orphaned = rebalanced = 0
        if diff is not None:
            live_set = set(live)
            orphaned = sum(
                1 for m in diff.moves
                if m.source is None or m.source not in live_set
            )
            rebalanced = diff.moved - orphaned
        change = MembershipChange(
            event=event, live=live, diff=diff,
            orphaned=orphaned, rebalanced=rebalanced,
        )
        if sink.enabled:
            sink.emit(
                MembershipChanged(
                    time=now, fault=kind.value, server=event.server,
                    live=len(live), orphaned=orphaned,
                    rebalanced=rebalanced, stayed=change.stayed,
                )
            )
        if orphans is not None:
            self.host.reinject(orphans, now)
        self.applied.append(event)
        return change

    # ------------------------------------------------------------------
    def _rebalance(self, now: Seconds) -> ReconfigDiff | None:
        """Re-place after the server-set change; the paper's stateless
        recovery (history reset) happens between deciding and realizing,
        exactly as the pre-refactor harnesses did."""
        pair = self.host.membership_assignment()
        self.host.reset_round_history()
        if pair is None:
            return None
        old, new = pair
        # Owner-set-aware diff: identical to diff_assignment for the
        # classic str-valued maps, but hosts that report r-way owner sets
        # get per-slot classification — a crash orphans a file set's work
        # only when *all* of its owners are gone.
        diff = diff_owner_sets(old, new)
        self.host.realize_membership(dict(old), dict(new), now)
        return diff
