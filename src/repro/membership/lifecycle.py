"""Per-server membership lifecycle: an explicit, enforced state machine.

The paper's §4 treats every membership change uniformly — "the framework
treats commissioning or decommissioning servers the same as a recovery or
failure" — but the reproduction historically tracked liveness with ad-hoc
``alive`` flags and ``del services[...]`` mutations, each harness slightly
differently.  This module makes the lifecycle explicit:

.. code-block:: text

          commission
    (absent) ------> UP ---fail---> DOWN
                     | ^            ^  |
        decommission | | recover    |  | recover
                     v |            |  v
                  DRAINING --drained-  UP

Legal transitions (everything else raises :class:`LifecycleError`):

- ``commission``: a previously unknown name joins as ``UP``;
- ``fail``: ``UP -> DOWN`` — a crash; queued work is orphaned;
- ``decommission``: ``UP -> DRAINING`` — graceful removal; no new work is
  routed there, the queue drains, file sets move away flushed;
- ``drained``: ``DRAINING -> DOWN`` — the drain completed;
- ``recover``: ``DOWN | DRAINING -> UP`` — the server rejoins with a cold
  cache.  **Recovering after a decommission is legal**: a drained server
  was removed cleanly, so bringing it back is indistinguishable from a
  recovery (its images are re-acquired from the shared disk).  This is the
  semantics :meth:`~repro.membership.faults.FaultSchedule.validate` has
  always permitted, now stated by the state machine itself.

A :class:`MembershipRoster` tracks one :class:`ServerState` per server and
is the single source of truth every harness adapter and the fault-schedule
validator consult, so an illegal event (double fail, recover of an
up server, commission of a known name) is rejected identically everywhere.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

__all__ = ["ServerState", "LifecycleError", "MemberRecord", "MembershipRoster"]


class ServerState(enum.Enum):
    """Where a server is in its membership lifecycle."""

    UP = "up"              #: serving; counted live for routing and placement
    DRAINING = "draining"  #: decommissioned; queue drains, no new work
    DOWN = "down"          #: crashed or fully drained; may recover


class LifecycleError(ValueError):
    """An event requested an illegal lifecycle transition."""


@dataclass
class MemberRecord:
    """One server's roster entry."""

    name: str
    state: ServerState
    speed: float = 1.0


class MembershipRoster:
    """The per-server state machine behind every membership change.

    The roster never forgets a server: a failed or drained member stays
    ``DOWN`` so a later ``recover`` can validate against its history
    (and a ``commission`` of the same name can be rejected as a
    duplicate).  ``live()`` is always returned sorted, so any iteration
    over membership is deterministic.
    """

    def __init__(
        self, servers: Mapping[str, float] | Iterable[str] = ()
    ) -> None:
        """``servers``: initial ``UP`` members — name -> speed mapping, or
        an iterable of names (speed 1.0)."""
        self._members: dict[str, MemberRecord] = {}
        if isinstance(servers, Mapping):
            for name, speed in servers.items():
                self.commission(name, speed)
        else:
            for name in servers:
                self.commission(name, 1.0)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._members

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._members))

    def __len__(self) -> int:
        return len(self._members)

    def state_of(self, name: str) -> ServerState:
        """Current lifecycle state of ``name`` (raises if unknown)."""
        return self._require(name).state

    def speed_of(self, name: str) -> float:
        """Registered speed of ``name`` (raises if unknown)."""
        return self._require(name).speed

    def is_live(self, name: str) -> bool:
        """True when ``name`` is known and ``UP``."""
        record = self._members.get(name)
        return record is not None and record.state is ServerState.UP

    def live(self) -> list[str]:
        """Sorted names of every ``UP`` server."""
        return sorted(
            n for n, r in self._members.items() if r.state is ServerState.UP
        )

    @property
    def live_count(self) -> int:
        return sum(
            1 for r in self._members.values() if r.state is ServerState.UP
        )

    def known(self) -> list[str]:
        """Sorted names of every server ever commissioned."""
        return sorted(self._members)

    def speeds(self) -> dict[str, float]:
        """name -> speed for the live servers."""
        return {
            n: r.speed
            for n, r in sorted(self._members.items())
            if r.state is ServerState.UP
        }

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def commission(self, name: str, speed: float = 1.0) -> MemberRecord:
        """A brand-new server joins ``UP``; the name must be unknown."""
        if name in self._members:
            raise LifecycleError(
                f"commission of already-known server {name!r} "
                f"(state {self._members[name].state.value}); "
                f"use recover to bring a former member back"
            )
        if speed <= 0:
            raise LifecycleError(
                f"commissioned server {name!r} needs positive speed, "
                f"got {speed!r}"
            )
        record = MemberRecord(name=name, state=ServerState.UP, speed=speed)
        self._members[name] = record
        return record

    def fail(self, name: str) -> MemberRecord:
        """Crash: ``UP -> DOWN``."""
        return self._transition(name, ServerState.DOWN, ServerState.UP)

    def decommission(self, name: str) -> MemberRecord:
        """Graceful removal begins: ``UP -> DRAINING``."""
        return self._transition(name, ServerState.DRAINING, ServerState.UP)

    def drained(self, name: str) -> MemberRecord:
        """The drain completed: ``DRAINING -> DOWN``."""
        return self._transition(name, ServerState.DOWN, ServerState.DRAINING)

    def recover(self, name: str) -> MemberRecord:
        """Rejoin: ``DOWN | DRAINING -> UP`` (see module docs on
        recover-after-decommission)."""
        return self._transition(
            name, ServerState.UP, ServerState.DOWN, ServerState.DRAINING
        )

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Structural sanity of the roster itself."""
        for name, record in self._members.items():
            if record.name != name:
                raise LifecycleError(
                    f"roster entry {name!r} claims name {record.name!r}"
                )
            if record.speed <= 0:
                raise LifecycleError(
                    f"server {name!r} has non-positive speed {record.speed!r}"
                )

    # ------------------------------------------------------------------
    def _require(self, name: str) -> MemberRecord:
        try:
            return self._members[name]
        except KeyError:
            raise LifecycleError(f"unknown server {name!r}") from None

    def _transition(
        self, name: str, target: ServerState, *legal_from: ServerState
    ) -> MemberRecord:
        record = self._require(name)
        if record.state not in legal_from:
            wanted = " or ".join(s.value for s in legal_from)
            raise LifecycleError(
                f"illegal transition for server {name!r}: "
                f"{record.state.value} -> {target.value} requires {wanted}"
            )
        record.state = target
        return record
