"""Per-server membership lifecycle: an explicit, enforced state machine.

The paper's §4 treats every membership change uniformly — "the framework
treats commissioning or decommissioning servers the same as a recovery or
failure" — but the reproduction historically tracked liveness with ad-hoc
``alive`` flags and ``del services[...]`` mutations, each harness slightly
differently.  This module makes the lifecycle explicit:

.. code-block:: text

          commission
    (absent) ------> UP ---fail---> DOWN
                     | ^            ^  |
        decommission | | recover    |  | recover
                     v |            |  v
                  DRAINING --drained-  UP

Legal transitions (everything else raises :class:`LifecycleError`):

- ``commission``: a previously unknown name joins as ``UP``;
- ``fail``: ``UP -> DOWN`` — a crash; queued work is orphaned;
- ``decommission``: ``UP -> DRAINING`` — graceful removal; no new work is
  routed there, the queue drains, file sets move away flushed;
- ``drained``: ``DRAINING -> DOWN`` — the drain completed;
- ``recover``: ``DOWN | DRAINING -> UP`` — the server rejoins with a cold
  cache.  **Recovering after a decommission is legal**: a drained server
  was removed cleanly, so bringing it back is indistinguishable from a
  recovery (its images are re-acquired from the shared disk).  This is the
  semantics :meth:`~repro.membership.faults.FaultSchedule.validate` has
  always permitted, now stated by the state machine itself.

Orthogonal to the state machine is the **degradation** dimension (gray
failures, ROADMAP item 4): an ``UP`` server can limp at a fraction of its
registered speed without tripping any liveness detector.  ``degrade``
multiplies nothing into the lifecycle — a degraded server is still live,
still counted for placement, still a legal delegate — it only lowers
:meth:`MembershipRoster.effective_speed` (base speed × degradation).
``restore`` lifts the limp; ``recover`` after a crash also resets
degradation to 1.0, because a rebooted server comes back at full speed.

A :class:`MembershipRoster` tracks one :class:`ServerState` per server and
is the single source of truth every harness adapter and the fault-schedule
validator consult, so an illegal event (double fail, recover of an
up server, commission of a known name) is rejected identically everywhere.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

__all__ = ["ServerState", "LifecycleError", "MemberRecord", "MembershipRoster"]


class ServerState(enum.Enum):
    """Where a server is in its membership lifecycle."""

    UP = "up"              #: serving; counted live for routing and placement
    DRAINING = "draining"  #: decommissioned; queue drains, no new work
    DOWN = "down"          #: crashed or fully drained; may recover


class LifecycleError(ValueError):
    """An event requested an illegal lifecycle transition."""


@dataclass
class MemberRecord:
    """One server's roster entry."""

    name: str
    state: ServerState
    speed: float = 1.0
    #: Gray-failure multiplier in (0, 1]; 1.0 means healthy.  Effective
    #: speed is ``speed * degradation``.  Reset to 1.0 on ``recover``.
    degradation: float = 1.0


class MembershipRoster:
    """The per-server state machine behind every membership change.

    The roster never forgets a server: a failed or drained member stays
    ``DOWN`` so a later ``recover`` can validate against its history
    (and a ``commission`` of the same name can be rejected as a
    duplicate).  ``live()`` is always returned sorted, so any iteration
    over membership is deterministic.
    """

    def __init__(
        self, servers: Mapping[str, float] | Iterable[str] = ()
    ) -> None:
        """``servers``: initial ``UP`` members — name -> speed mapping, or
        an iterable of names (speed 1.0)."""
        self._members: dict[str, MemberRecord] = {}
        if isinstance(servers, Mapping):
            for name, speed in servers.items():
                self.commission(name, speed)
        else:
            for name in servers:
                self.commission(name, 1.0)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._members

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._members))

    def __len__(self) -> int:
        return len(self._members)

    def state_of(self, name: str) -> ServerState:
        """Current lifecycle state of ``name`` (raises if unknown)."""
        return self._require(name).state

    def speed_of(self, name: str) -> float:
        """Registered speed of ``name`` (raises if unknown)."""
        return self._require(name).speed

    def degradation_of(self, name: str) -> float:
        """Current gray-failure multiplier of ``name`` (1.0 = healthy)."""
        return self._require(name).degradation

    def effective_speed(self, name: str) -> float:
        """Registered speed × degradation for ``name``."""
        record = self._require(name)
        return record.speed * record.degradation

    def is_degraded(self, name: str) -> bool:
        """True when ``name`` is known and limping (degradation < 1)."""
        record = self._members.get(name)
        return record is not None and record.degradation < 1.0

    def is_live(self, name: str) -> bool:
        """True when ``name`` is known and ``UP``."""
        record = self._members.get(name)
        return record is not None and record.state is ServerState.UP

    def live(self) -> list[str]:
        """Sorted names of every ``UP`` server."""
        return sorted(
            n for n, r in self._members.items() if r.state is ServerState.UP
        )

    @property
    def live_count(self) -> int:
        return sum(
            1 for r in self._members.values() if r.state is ServerState.UP
        )

    def known(self) -> list[str]:
        """Sorted names of every server ever commissioned."""
        return sorted(self._members)

    def speeds(self) -> dict[str, float]:
        """name -> registered (nominal) speed for the live servers."""
        return {
            n: r.speed
            for n, r in sorted(self._members.items())
            if r.state is ServerState.UP
        }

    def effective_speeds(self) -> dict[str, float]:
        """name -> speed × degradation for the live servers."""
        return {
            n: r.speed * r.degradation
            for n, r in sorted(self._members.items())
            if r.state is ServerState.UP
        }

    def degraded(self) -> list[str]:
        """Sorted names of every live server currently limping."""
        return sorted(
            n for n, r in self._members.items()
            if r.state is ServerState.UP and r.degradation < 1.0
        )

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def commission(self, name: str, speed: float = 1.0) -> MemberRecord:
        """A brand-new server joins ``UP``; the name must be unknown."""
        if name in self._members:
            raise LifecycleError(
                f"commission of already-known server {name!r} "
                f"(state {self._members[name].state.value}); "
                f"use recover to bring a former member back"
            )
        if speed <= 0:
            raise LifecycleError(
                f"commissioned server {name!r} needs positive speed, "
                f"got {speed!r}"
            )
        record = MemberRecord(name=name, state=ServerState.UP, speed=speed)
        self._members[name] = record
        return record

    def fail(self, name: str) -> MemberRecord:
        """Crash: ``UP -> DOWN``."""
        return self._transition(name, ServerState.DOWN, ServerState.UP)

    def decommission(self, name: str) -> MemberRecord:
        """Graceful removal begins: ``UP -> DRAINING``."""
        return self._transition(name, ServerState.DRAINING, ServerState.UP)

    def drained(self, name: str) -> MemberRecord:
        """The drain completed: ``DRAINING -> DOWN``."""
        return self._transition(name, ServerState.DOWN, ServerState.DRAINING)

    def recover(self, name: str) -> MemberRecord:
        """Rejoin: ``DOWN | DRAINING -> UP`` (see module docs on
        recover-after-decommission).  A recovered server comes back at
        full speed: any degradation it carried when it went down is
        cleared, matching a reboot curing a limping process."""
        record = self._transition(
            name, ServerState.UP, ServerState.DOWN, ServerState.DRAINING
        )
        record.degradation = 1.0
        return record

    def degrade(self, name: str, factor: float) -> MemberRecord:
        """Gray failure: an ``UP`` server limps at ``factor`` of its speed.

        ``factor`` must lie in (0, 1]; re-degrading an already-limping
        server is legal (slow-then-dead ramps step the factor down), but
        the target must be live — a crashed server cannot limp.
        """
        if not 0.0 < factor <= 1.0:
            raise LifecycleError(
                f"degradation factor for {name!r} must be in (0, 1], "
                f"got {factor!r}"
            )
        record = self._require(name)
        if record.state is not ServerState.UP:
            raise LifecycleError(
                f"cannot degrade server {name!r} in state "
                f"{record.state.value}; only UP servers limp"
            )
        record.degradation = factor
        return record

    def restore(self, name: str) -> MemberRecord:
        """The limp lifts: degradation returns to 1.0.

        The server must be live and actually degraded — restoring a
        healthy server is a schedule bug the roster rejects, exactly as
        it rejects recovering an ``UP`` server.
        """
        record = self._require(name)
        if record.state is not ServerState.UP:
            raise LifecycleError(
                f"cannot restore server {name!r} in state "
                f"{record.state.value}; only UP servers are restorable"
            )
        if record.degradation >= 1.0:
            raise LifecycleError(
                f"restore of server {name!r} which is not degraded"
            )
        record.degradation = 1.0
        return record

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Structural sanity of the roster itself."""
        for name, record in self._members.items():
            if record.name != name:
                raise LifecycleError(
                    f"roster entry {name!r} claims name {record.name!r}"
                )
            if record.speed <= 0:
                raise LifecycleError(
                    f"server {name!r} has non-positive speed {record.speed!r}"
                )
            if not 0.0 < record.degradation <= 1.0:
                raise LifecycleError(
                    f"server {name!r} has degradation "
                    f"{record.degradation!r} outside (0, 1]"
                )

    # ------------------------------------------------------------------
    def _require(self, name: str) -> MemberRecord:
        try:
            return self._members[name]
        except KeyError:
            raise LifecycleError(f"unknown server {name!r}") from None

    def _transition(
        self, name: str, target: ServerState, *legal_from: ServerState
    ) -> MemberRecord:
        record = self._require(name)
        if record.state not in legal_from:
            wanted = " or ".join(s.value for s in legal_from)
            raise LifecycleError(
                f"illegal transition for server {name!r}: "
                f"{record.state.value} -> {target.value} requires {wanted}"
            )
        record.state = target
        return record
