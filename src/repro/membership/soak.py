"""Chaos soak: randomized fault schedules through all three stacks.

Run as a module::

    PYTHONPATH=src python -m repro.membership.soak --seeds 3 --quick

``--profile limp`` layers the gray-failure zoo (sustained limps,
slow-then-dead ramps, I/O-contention coupling) over the same churn and
additionally checks, on every ``SpeedChanged`` record, that the roster's
degradation and the harness's effective speed stay in lockstep.

For each seed, a :class:`~repro.membership.injector.FaultInjector`
generates a valid churn schedule, every harness stack replays it, and
the stack's own invariants are checked *after each membership event*:

- queueing stack — ``ClusterSimulation.check_invariants`` plus
  ownership-targets-live-servers on every ``membership`` telemetry
  record, and request conservation at the end of the run;
- semantic stack — ``MetadataCluster.check_consistency`` and the ANU
  region-map invariants after every director application, plus
  durability of checkpointed files across the whole sequence;
- protocol stack — roster/liveness agreement after every event, then
  delegate agreement and share-map replication once traffic settles.

The soak exits non-zero on the first violated invariant, printing the
seed that triggered it — rerunning with that seed reproduces the exact
schedule (the injector is deterministic per seed).
"""

from __future__ import annotations

import argparse
import dataclasses
from typing import Sequence

from ..units import Seconds
from .faults import FaultKind
from .injector import ChaosProfile, FaultInjector

__all__ = [
    "SOAK_CHURN",
    "SOAK_LIMP",
    "PROTO_CHURN",
    "PROTO_LIMP",
    "soak_cluster",
    "soak_fs",
    "soak_proto",
    "run_soak",
    "main",
]

#: Full-churn profile used by every soak stack (kept gentle enough that
#: quick mode finishes in CI time while still exercising each fault kind).
SOAK_CHURN = ChaosProfile(
    mttf=Seconds(400.0),
    mttr=Seconds(80.0),
    decommission_every=Seconds(650.0),
    commission_every=Seconds(550.0),
    delegate_crash_every=Seconds(800.0),
    min_live=2,
    max_commissions=3,
)

#: Like :data:`SOAK_CHURN` but delegate crashes removed and commissions
#: restricted to recovering drained nodes: the protocol stack realizes
#: ``DELEGATE_CRASH`` by downing the actual delegate, which a
#: pre-validated schedule cannot anticipate (see tests/test_membership_chaos).
PROTO_CHURN = ChaosProfile(
    mttf=Seconds(60.0),
    mttr=Seconds(15.0),
    decommission_every=Seconds(90.0),
    commission_every=Seconds(70.0),
    delegate_crash_every=None,
    min_live=3,
    max_commissions=0,
)

#: :data:`SOAK_CHURN` with the gray-failure zoo switched on: sustained
#: limps, slow-then-dead ramps, and I/O-contention coupling layered over
#: the same crash/commission churn (the CI ``limp-smoke`` job's profile).
SOAK_LIMP = dataclasses.replace(
    SOAK_CHURN,
    degrade_mttd=Seconds(200.0),
    degrade_mttrestore=Seconds(100.0),
    degrade_factor=(0.15, 0.6),
    slow_then_dead=0.2,
    ramp_steps=2,
    ramp_step_every=Seconds(25.0),
    couple_probability=0.25,
    couple_strength=0.5,
)

#: :data:`PROTO_CHURN` with sustained limps (timescales matched to the
#: protocol soak's short horizon).
PROTO_LIMP = dataclasses.replace(
    PROTO_CHURN,
    degrade_mttd=Seconds(30.0),
    degrade_mttrestore=Seconds(15.0),
    degrade_factor=(0.2, 0.6),
)


def soak_cluster(
    seed: int, quick: bool = False, limp: bool = False
) -> dict[str, float]:
    """Chaos-run the queueing stack; returns summary counters."""
    from ..cluster import ClusterConfig, ClusterSimulation, paper_servers
    from ..placement import ANUPolicy
    from ..runtime import CallbackSink
    from ..workloads import SyntheticConfig, generate_synthetic

    n_requests = 1000 if quick else 6000
    trace = generate_synthetic(
        SyntheticConfig(
            n_filesets=30,
            n_requests=n_requests,
            duration=1200.0,
            request_cost=0.3,
            seed=3,
        )
    )
    speeds = {s.name: s.speed for s in paper_servers()}
    profile = SOAK_LIMP if limp else SOAK_CHURN
    faults = FaultInjector(speeds, profile, seed=seed).generate(
        Seconds(trace.duration)
    )
    config = ClusterConfig(
        servers=paper_servers(),
        tuning_interval=120.0,
        sample_window=60.0,
        seed=1,
    )
    policy = ANUPolicy()
    checks = 0

    def _on_record(record) -> None:
        nonlocal checks
        if record.kind == "speed":
            # A gray failure must land on a live server and keep the
            # roster and the harness's effective speed in lockstep.
            server = sim.servers[record.server]
            if not server.alive:
                raise AssertionError(
                    f"SpeedChanged for dead server {record.server!r} "
                    f"(seed {seed})"
                )
            if server.degradation != sim.roster.degradation_of(record.server):
                raise AssertionError(
                    f"roster/harness degradation disagreement on "
                    f"{record.server!r} (seed {seed})"
                )
            checks += 1
            return
        if record.kind != "membership":
            return
        sim.check_invariants()
        live = set(sim.roster.live())
        for owner in sim.planned_assignment().values():
            if owner not in live:
                raise AssertionError(
                    f"fileset owned by non-live server {owner!r} "
                    f"after {record.fault} (seed {seed})"
                )
        checks += 1

    sim = ClusterSimulation(
        config, policy, trace, faults, telemetry=CallbackSink(_on_record)
    )
    result = sim.run()
    if sum(result.completed.values()) != len(trace):
        raise AssertionError(
            f"lost/duplicated requests: completed "
            f"{sum(result.completed.values())} of {len(trace)} (seed {seed})"
        )
    assert policy.placement is not None
    policy.placement.check_invariants()
    return {"events": len(faults), "checks": checks, "requests": len(trace)}


def soak_fs(
    seed: int, quick: bool = False, limp: bool = False
) -> dict[str, float]:
    """Chaos-run the semantic stack; returns summary counters."""
    from ..fs import FileSystemClient, MetadataCluster

    roots = {f"fs{i}": f"/p{i}" for i in range(4 if quick else 8)}
    servers = {f"server{i}": 1.0 for i in range(4)}
    horizon = Seconds(600.0 if quick else 2400.0)
    profile = SOAK_LIMP if limp else SOAK_CHURN
    faults = FaultInjector(servers, profile, seed=seed).generate(horizon)

    cluster = MetadataCluster(sorted(servers), roots)
    client = FileSystemClient(cluster, "soak-client")
    durable = []
    for i, root in enumerate(roots.values()):
        client.mkdir(f"{root}/dir")
        client.create(f"{root}/dir/file{i}")
        durable.append(f"{root}/dir/file{i}")
    cluster.checkpoint()

    for event in faults:
        cluster.director.apply(event, now=event.time)
        cluster.check_consistency()
        cluster.placement.check_invariants()
        cluster.roster.check_invariants()
        for name in cluster.roster.degraded():
            if not cluster.roster.is_live(name):
                raise AssertionError(
                    f"degraded server {name!r} is not live (seed {seed})"
                )
    for path in durable:
        client.stat(path)  # raises if the checkpointed file was lost
    return {"events": len(faults), "checks": len(faults), "files": len(durable)}


def soak_proto(
    seed: int, quick: bool = False, limp: bool = False
) -> dict[str, float]:
    """Chaos-run the protocol stack; returns summary counters."""
    from ..proto import ControlPlane, ProtocolConfig

    fast = ProtocolConfig(
        heartbeat_interval=0.5,
        heartbeat_timeout=1.6,
        election_timeout=0.3,
        report_timeout=0.3,
        tuning_interval=5.0,
    )
    n = 5
    names = {f"node{i:02d}": 1.0 for i in range(n)}
    horizon = Seconds(60.0 if quick else 240.0)
    profile = PROTO_LIMP if limp else PROTO_CHURN
    faults = FaultInjector(names, profile, seed=seed).generate(horizon)

    cp = ControlPlane(n, seed=seed, protocol_config=fast)
    cp.start()
    for event in faults:
        cp.run_until(float(event.time))
        cp.apply_fault(event)
        if set(cp.live_nodes) != set(cp.roster.live()):
            raise AssertionError(
                f"roster/liveness disagreement after {event} (seed {seed})"
            )
        for name in cp.roster.live():
            if cp.nodes[name].speed != cp.roster.degradation_of(name):
                raise AssertionError(
                    f"node/roster speed disagreement on {name!r} "
                    f"after {event} (seed {seed})"
                )
    end = float(faults.events[-1].time) if len(faults) else 0.0
    cp.run_until(end + 15.0)
    delegate = cp.current_delegate()
    if delegate is None or delegate not in cp.live_nodes:
        raise AssertionError(f"no live delegate after settling (seed {seed})")
    if not cp.shares_agree():
        raise AssertionError(f"share maps diverged after chaos (seed {seed})")
    return {"events": len(faults), "checks": len(faults), "live": len(cp.live_nodes)}


STACKS = {"cluster": soak_cluster, "fs": soak_fs, "proto": soak_proto}


def run_soak(
    seeds: Sequence[int],
    quick: bool = False,
    stacks: Sequence[str] | None = None,
    limp: bool = False,
) -> list[dict]:
    """Soak every requested stack with every seed; returns summaries."""
    results = []
    for name in stacks or sorted(STACKS):
        runner = STACKS[name]
        for seed in seeds:
            summary = runner(seed, quick=quick, limp=limp)
            summary |= {"stack": name, "seed": seed}
            print(
                f"[soak] {name:<8} seed={seed:<4} "
                f"events={summary['events']:<4} ok"
            )
            results.append(summary)
    return results


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.membership.soak",
        description="Randomized membership chaos soak over all three stacks.",
    )
    parser.add_argument(
        "--seeds", type=int, default=3, help="number of seeds (default 3)"
    )
    parser.add_argument(
        "--seed-base", type=int, default=0, help="first seed (default 0)"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller traces/horizons for CI"
    )
    parser.add_argument(
        "--stack",
        choices=sorted(STACKS),
        action="append",
        help="restrict to one stack (repeatable; default: all)",
    )
    parser.add_argument(
        "--profile",
        choices=("churn", "limp"),
        default="churn",
        help="fault profile: fail-stop churn only, or churn plus the "
        "gray-failure zoo (sustained limps, slow-then-dead ramps, "
        "I/O-contention coupling)",
    )
    args = parser.parse_args(argv)
    seeds = range(args.seed_base, args.seed_base + args.seeds)
    results = run_soak(
        list(seeds),
        quick=args.quick,
        stacks=args.stack,
        limp=args.profile == "limp",
    )
    events = sum(r["events"] for r in results)
    kinds = len(FaultKind)
    print(
        f"[soak] OK: {len(results)} runs, {events} membership events "
        f"({kinds} fault kinds available), all invariants held"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
