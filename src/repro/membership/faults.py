"""Fault and membership schedules.

The paper treats failure/recovery and decommission/commission uniformly
(§4: "the framework treats commissioning or decommissioning servers the
same as a recovery or failure").  A :class:`FaultSchedule` is a list of
timed membership events a harness applies through its
:class:`~repro.membership.director.MembershipDirector`; tests, the failure
experiments, and the stochastic
:class:`~repro.membership.injector.FaultInjector` build them
declaratively.

Validation is the lifecycle state machine
(:class:`~repro.membership.lifecycle.MembershipRoster`): a schedule is
valid iff replaying it through the roster raises no
:class:`~repro.membership.lifecycle.LifecycleError` and the cluster never
loses its last live server.  Two semantics worth spelling out:

- **recover after decommission is legal** — a decommissioned server
  drains and goes ``DOWN`` but stays *known*, so a later ``recover``
  brings it back exactly like a crashed server (its file-set images are
  re-acquired from the shared disk).  Commissioning the same *name*
  again, by contrast, is always an error;
- **delegate crashes need a successor** — a ``DELEGATE_CRASH`` event is
  only valid while at least two servers are live, since fail-over must
  have a surviving server to elect.

Beyond fail-stop, the vocabulary also speaks **gray failures** (ROADMAP
item 4): ``DEGRADE`` limps an ``UP`` server to ``factor`` of its speed
without tripping any liveness detector, and ``RESTORE`` lifts the limp.
Degradation is orthogonal to the lifecycle — a degraded server stays
live, keeps its mapped share, and remains a legal delegate; only its
effective speed changes.  A schedule with no ``DEGRADE`` events behaves
bit-for-bit as before.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field

from ..units import Seconds
from .lifecycle import LifecycleError, MembershipRoster

__all__ = ["FaultKind", "FaultEvent", "FaultSchedule", "apply_event"]


class FaultKind(enum.Enum):
    """What happens to the server at the scheduled time."""

    FAIL = "fail"          # crash: queued work is lost and re-dispatched
    RECOVER = "recover"    # a previously failed/drained server rejoins
    COMMISSION = "commission"      # a brand-new server joins
    DECOMMISSION = "decommission"  # graceful removal (queue drains first)
    DELEGATE_CRASH = "delegate-crash"  # the tuning delegate fails over
    DEGRADE = "degrade"    # gray failure: limp at `factor` of full speed
    RESTORE = "restore"    # the limp lifts; effective speed returns to base


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled membership/fault event."""

    time: Seconds
    kind: FaultKind
    server: str
    #: Speed for COMMISSION events (ignored otherwise).
    speed: float = 1.0
    #: Speed multiplier for DEGRADE events, in (0, 1] (ignored otherwise).
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"negative event time {self.time!r}")
        if self.kind is FaultKind.COMMISSION and self.speed <= 0:
            raise ValueError(f"commissioned server needs positive speed")
        if self.kind is FaultKind.DEGRADE and not 0.0 < self.factor <= 1.0:
            raise ValueError(
                f"degradation factor must be in (0, 1], got {self.factor!r}"
            )


def _sort_key(event: FaultEvent) -> tuple[Seconds, str]:
    """Stable schedule order: by time, ties broken by server name."""
    return (event.time, event.server)


def apply_event(roster: MembershipRoster, event: FaultEvent) -> None:
    """Replay one event through the lifecycle state machine.

    Raises :class:`LifecycleError` when the transition is illegal in the
    roster's current state.  This is the single dispatch the schedule
    validator, the stochastic injector, and the membership director all
    share, so "valid" means the same thing everywhere.
    """
    kind = event.kind
    if kind is FaultKind.DELEGATE_CRASH:
        if roster.live_count < 2:
            raise LifecycleError(
                f"delegate crash at t={event.time!r} with "
                f"{roster.live_count} live server(s); fail-over needs a "
                f"surviving server to elect"
            )
        return
    if kind is FaultKind.FAIL:
        roster.fail(event.server)
    elif kind is FaultKind.RECOVER:
        roster.recover(event.server)
    elif kind is FaultKind.COMMISSION:
        roster.commission(event.server, event.speed)
    elif kind is FaultKind.DECOMMISSION:
        roster.decommission(event.server)
    elif kind is FaultKind.DEGRADE:
        roster.degrade(event.server, event.factor)
    elif kind is FaultKind.RESTORE:
        roster.restore(event.server)
    else:  # pragma: no cover - enum is closed
        raise AssertionError(f"unhandled fault kind {kind!r}")
    if roster.live_count == 0:
        raise LifecycleError(
            f"schedule leaves the cluster with no servers at t={event.time!r}"
        )


@dataclass
class FaultSchedule:
    """A time-ordered set of fault events."""

    events: list[FaultEvent] = field(default_factory=list)

    def add(self, event: FaultEvent) -> "FaultSchedule":
        """Insert an event, keeping the schedule time-ordered.

        Insertion is a binary search + single list insert (events already
        in order — the common, injector-generated case — append in O(1)
        amortized), not a full re-sort per call.  Ties on ``(time,
        server)`` keep insertion order, matching what the old
        append-then-stable-sort implementation produced.
        """
        bisect.insort(self.events, event, key=_sort_key)
        return self

    def fail(self, time: Seconds, server: str) -> "FaultSchedule":
        """Schedule a crash of ``server`` at ``time``."""
        return self.add(FaultEvent(time, FaultKind.FAIL, server))

    def recover(self, time: Seconds, server: str) -> "FaultSchedule":
        """Schedule a recovery of a failed/decommissioned ``server``."""
        return self.add(FaultEvent(time, FaultKind.RECOVER, server))

    def commission(
        self, time: Seconds, server: str, speed: float
    ) -> "FaultSchedule":
        """Schedule a brand-new server joining at ``time``."""
        return self.add(FaultEvent(time, FaultKind.COMMISSION, server, speed))

    def decommission(self, time: Seconds, server: str) -> "FaultSchedule":
        """Schedule a graceful removal of ``server`` at ``time``."""
        return self.add(FaultEvent(time, FaultKind.DECOMMISSION, server))

    def delegate_crash(self, time: Seconds) -> "FaultSchedule":
        """Schedule a tuning-delegate fail-over at ``time``."""
        return self.add(FaultEvent(time, FaultKind.DELEGATE_CRASH, server="*"))

    def degrade(
        self, time: Seconds, server: str, factor: float
    ) -> "FaultSchedule":
        """Schedule a gray failure: ``server`` limps at ``factor`` of its
        speed from ``time`` until a later ``restore`` (or forever)."""
        return self.add(
            FaultEvent(time, FaultKind.DEGRADE, server, factor=factor)
        )

    def restore(self, time: Seconds, server: str) -> "FaultSchedule":
        """Schedule the limp on ``server`` to lift at ``time``."""
        return self.add(FaultEvent(time, FaultKind.RESTORE, server))

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def validate(self, initial_servers: set[str]) -> None:
        """Check the schedule is consistent (no double-fail, etc.).

        Replays every event — **including** ``DELEGATE_CRASH``, which must
        find at least two live servers — through a fresh
        :class:`MembershipRoster` seeded with ``initial_servers``.
        Raises ``ValueError`` on the first illegal event.
        """
        roster = MembershipRoster(sorted(initial_servers))
        for ev in self.events:
            apply_event(roster, ev)
