"""Stochastic fault injection: seeded chaos schedules for any harness.

Hand-written :class:`~repro.membership.faults.FaultSchedule`\\ s cover the
scenarios we thought of; the ROADMAP's robustness goal ("as many scenarios
as you can imagine") needs the ones we didn't.  :class:`FaultInjector`
generates *valid* random schedules from per-server failure/repair
processes plus commission/decommission churn — the same stochastic
availability methodology Chain Replication uses for its failure/repair
evaluations — while staying a pure function of ``(servers, profile,
seed)``:

- every server draws its times to failure and to repair from **its own
  named stream** (:class:`~repro.sim.rng.StreamFactory`), so adding a
  server to the fleet never perturbs another server's fault trajectory;
- churn (decommissions, commissions, delegate crashes) draws from a
  shared ``churn`` stream;
- the generator replays every candidate event through the
  :class:`~repro.membership.lifecycle.MembershipRoster` state machine,
  skipping candidates that would be illegal (a fail below ``min_live``,
  a delegate crash without a successor), so the schedule always passes
  :meth:`FaultSchedule.validate`;
- commission churn prefers *recovering* a previously drained server over
  inventing a new one half the time, exercising the documented
  recover-after-decommission semantics.

Two consumption modes:

- :meth:`FaultInjector.generate` — materialize the whole schedule up
  front (feeds any harness's ``faults=`` parameter; what
  :class:`~repro.runtime.scenario.Scenario` uses);
- :meth:`FaultInjector.inject` — online mode: lazily walk the same event
  stream on a live engine, sampling each next event only after the
  previous one fired.  Both modes yield the identical sequence for the
  same seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from ..sim.engine import Engine
from ..sim.events import PRIORITY_EARLY
from ..sim.rng import StreamFactory
from ..units import Seconds
from .faults import FaultEvent, FaultKind, FaultSchedule, apply_event
from .lifecycle import MembershipRoster, ServerState

__all__ = [
    "ChaosProfile",
    "FaultInjector",
    "CRASH_ONLY",
    "FULL_CHURN",
    "LIMP_ONLY",
    "LIMP_CHURN",
]


@dataclass(frozen=True)
class ChaosProfile:
    """Rates of the stochastic fault processes (all times in seconds).

    ``None`` disables a process.  ``mttf``/``mttr`` are per-server
    exponential means (time to failure while up, time to repair while
    down); the ``*_every`` fields are exponential means between churn
    events for the whole cluster.
    """

    mttf: Seconds | None = Seconds(300.0)
    mttr: Seconds = Seconds(60.0)
    decommission_every: Seconds | None = None
    commission_every: Seconds | None = None
    delegate_crash_every: Seconds | None = None
    #: Speed of newly commissioned servers, drawn uniformly.
    commission_speed: tuple[float, float] = (1.0, 9.0)
    #: Never drop below this many live servers (>= 1).
    min_live: int = 2
    #: Cap on brand-new servers the injector may invent.
    max_commissions: int = 8
    # -- gray failures (limp profiles) ---------------------------------
    #: Per-server exponential mean time to degradation onset while up and
    #: healthy (the limp-detection literature's MTTD); None disables
    #: gray failures entirely, reproducing the fail-stop-only schedules
    #: bit for bit.
    degrade_mttd: Seconds | None = None
    #: Exponential mean duration of a sustained limp before it lifts.
    degrade_mttrestore: Seconds = Seconds(120.0)
    #: Degradation factor of a fresh limp, drawn uniformly from
    #: [low, high) — both strictly inside (0, 1) so every DEGRADE is a
    #: real slowdown with a legal later RESTORE.
    degrade_factor: tuple[float, float] = (0.1, 0.5)
    #: Probability a limp is a slow-then-dead ramp (factor halves each
    #: step until the server finally crashes) instead of sustained.
    slow_then_dead: float = 0.0
    #: Worsening steps in a slow-then-dead ramp before the crash.
    ramp_steps: int = 3
    #: Exponential mean between ramp steps.
    ramp_step_every: Seconds = Seconds(30.0)
    #: I/O-contention coupling: probability that a fresh limp also
    #: degrades each other healthy sharer of the shared disk.
    couple_probability: float = 0.0
    #: Fraction of the primary's slowdown passed to coupled sharers
    #: (their factor is ``1 - (1 - primary_factor) * couple_strength``).
    couple_strength: float = 0.5

    def __post_init__(self) -> None:
        for name in ("mttf", "decommission_every", "commission_every",
                     "delegate_crash_every", "degrade_mttd"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        for name in ("mttr", "degrade_mttrestore", "ramp_step_every"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        if self.min_live < 1:
            raise ValueError(f"min_live must be >= 1, got {self.min_live!r}")
        if self.max_commissions < 0:
            raise ValueError("max_commissions must be >= 0")
        low, high = self.commission_speed
        if not 0 < low <= high:
            raise ValueError(
                f"need 0 < low <= high commission speed, got "
                f"{self.commission_speed!r}"
            )
        low, high = self.degrade_factor
        if not 0.0 < low <= high < 1.0:
            raise ValueError(
                f"need 0 < low <= high < 1 degrade factor, got "
                f"{self.degrade_factor!r}"
            )
        for name in ("slow_then_dead", "couple_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if not 0.0 < self.couple_strength <= 1.0:
            raise ValueError(
                f"couple_strength must be in (0, 1], got "
                f"{self.couple_strength!r}"
            )
        if self.ramp_steps < 1:
            raise ValueError(
                f"ramp_steps must be >= 1, got {self.ramp_steps!r}"
            )


#: A profile that only crashes and repairs (no churn): pure availability.
CRASH_ONLY = ChaosProfile()

#: Heavy churn: crashes, repairs, commissions and decommissions all active.
FULL_CHURN = ChaosProfile(
    mttf=Seconds(240.0),
    mttr=Seconds(45.0),
    decommission_every=Seconds(400.0),
    commission_every=Seconds(350.0),
    delegate_crash_every=Seconds(500.0),
)

#: Pure gray failures: no crashes, only sustained limps on a stable fleet.
LIMP_ONLY = ChaosProfile(
    mttf=None,
    degrade_mttd=Seconds(150.0),
    degrade_mttrestore=Seconds(90.0),
    degrade_factor=(0.1, 0.5),
)

#: The full gray-failure zoo layered over crash/repair churn: sustained
#: limps, slow-then-dead ramps, and I/O-contention coupling.
LIMP_CHURN = ChaosProfile(
    mttf=Seconds(400.0),
    mttr=Seconds(60.0),
    degrade_mttd=Seconds(180.0),
    degrade_mttrestore=Seconds(120.0),
    degrade_factor=(0.15, 0.6),
    slow_then_dead=0.25,
    ramp_steps=3,
    ramp_step_every=Seconds(20.0),
    couple_probability=0.3,
    couple_strength=0.5,
)


# Candidate-queue tags; the tuple ordering (time, tag, server) makes the
# pop order — and therefore the whole schedule — deterministic.  The
# gray-failure tags sort after the fail-stop ones at equal times, so
# enabling them never reorders a fail-stop candidate.
_FAIL, _RECOVER, _DECOM, _COMMISSION, _DCRASH = (
    "a-fail", "b-recover", "c-decommission", "d-commission", "e-dcrash",
)
_DEGRADE, _RESTORE, _RAMP = ("f-degrade", "g-restore", "h-ramp")


class FaultInjector:
    """Seeded generator of valid random membership-event schedules."""

    def __init__(
        self,
        servers: Mapping[str, float],
        profile: ChaosProfile | None = None,
        seed: int = 0,
    ) -> None:
        """``servers``: the initial fleet, name -> speed."""
        if not servers:
            raise ValueError("need at least one initial server")
        self.servers = dict(servers)
        self.profile = profile if profile is not None else CRASH_ONLY
        self.seed = seed
        if self.profile.min_live > len(servers):
            raise ValueError(
                f"min_live={self.profile.min_live} exceeds the initial "
                f"fleet of {len(servers)}"
            )
        self._streams = StreamFactory(seed).spawn("fault-injector")

    # ------------------------------------------------------------------
    def generate(self, horizon: Seconds) -> FaultSchedule:
        """The full schedule over ``[0, horizon)``; valid by construction
        and identical on every call with the same constructor arguments."""
        schedule = FaultSchedule()
        for event in self.events(horizon):
            schedule.add(event)
        return schedule

    def inject(
        self,
        engine: Engine,
        apply: Callable[[FaultEvent], object],
        horizon: Seconds,
    ) -> None:
        """Online mode: drive ``apply(event)`` on a live engine.

        Each next event is sampled lazily only after the previous one is
        applied, so a soak can outlive any pre-materialized schedule; the
        event sequence is identical to :meth:`generate`'s.
        """
        events = self.events(horizon)

        def _chain() -> None:
            event = next(events, None)
            if event is not None:
                engine.schedule_at(
                    event.time, _fire, event, priority=PRIORITY_EARLY
                )

        def _fire(event: FaultEvent) -> None:
            apply(event)
            _chain()

        _chain()

    # ------------------------------------------------------------------
    def events(self, horizon: Seconds) -> Iterator[FaultEvent]:
        """Lazily yield the schedule's events in time order."""
        profile = self.profile
        roster = MembershipRoster(self.servers)
        server_rng = {
            name: self._streams.stream(f"server:{name}")
            for name in sorted(self.servers)
        }
        churn = self._streams.stream("churn")
        commissioned = 0

        # Candidate heap of (time, tag, server, limp-generation); invalid
        # candidates are re-drawn or dropped when popped, against the
        # live roster.  ``gen`` is 0 for every fail-stop tag; limp tags
        # carry the per-server limp generation so a crash that cuts a
        # limp short invalidates that limp's stale ramp/restore entries.
        heap: list[tuple[float, str, str, int]] = []
        #: Per-server limp generation (bumped at every onset and at
        #: every abnormal limp end).
        limp_gen: dict[str, int] = {}
        #: Remaining worsening steps of an active slow-then-dead ramp.
        ramp_left: dict[str, int] = {}
        #: primary -> sharers currently degraded by I/O-contention
        #: coupling; released when the primary restores or dies.
        coupled_to: dict[str, list[str]] = {}

        def draw(rng, mean: Seconds) -> Seconds:
            return Seconds(float(rng.exponential(mean)))

        def push_fail(name: str, now: Seconds) -> None:
            if profile.mttf is not None:
                heapq.heappush(
                    heap, (now + draw(server_rng[name], profile.mttf),
                           _FAIL, name, 0)
                )

        def push_recover(name: str, now: Seconds) -> None:
            heapq.heappush(
                heap, (now + draw(server_rng[name], profile.mttr),
                       _RECOVER, name, 0)
            )

        def push_churn(tag: str, mean: Seconds | None, now: Seconds) -> None:
            if mean is not None:
                heapq.heappush(heap, (now + draw(churn, mean), tag, "*", 0))

        def push_degrade(name: str, now: Seconds) -> None:
            if profile.degrade_mttd is not None:
                heapq.heappush(
                    heap, (now + draw(server_rng[name], profile.degrade_mttd),
                           _DEGRADE, name, 0)
                )

        def release_coupled(primary: str, now: Seconds) -> list[FaultEvent]:
            """The contention source is gone; its sharers' limps lift."""
            out = []
            for other in coupled_to.pop(primary, []):
                if roster.is_live(other) and roster.is_degraded(other):
                    out.append(FaultEvent(now, FaultKind.RESTORE, other))
            return out

        def end_limp(name: str, now: Seconds) -> list[FaultEvent]:
            """A crash/decommission cut ``name``'s limp short: invalidate
            its pending ramp/restore entries and free its sharers."""
            limp_gen[name] = limp_gen.get(name, 0) + 1
            ramp_left.pop(name, None)
            return release_coupled(name, now)

        for name in sorted(self.servers):
            push_fail(name, Seconds(0.0))
            push_degrade(name, Seconds(0.0))
        push_churn(_DECOM, profile.decommission_every, Seconds(0.0))
        push_churn(_COMMISSION, profile.commission_every, Seconds(0.0))
        push_churn(_DCRASH, profile.delegate_crash_every, Seconds(0.0))

        while heap:
            time, tag, name, gen = heapq.heappop(heap)
            now = Seconds(time)
            if now >= horizon:
                break
            out: list[FaultEvent] = []
            if tag == _FAIL:
                if (
                    roster.is_live(name)
                    and roster.live_count > profile.min_live
                ):
                    out.append(FaultEvent(now, FaultKind.FAIL, name))
                    out.extend(end_limp(name, now))
                    push_recover(name, now)
                elif roster.is_live(name):
                    # Too few live servers to lose one; try again later.
                    push_fail(name, now)
            elif tag == _RECOVER:
                if roster.state_of(name) is ServerState.DOWN:
                    out.append(FaultEvent(now, FaultKind.RECOVER, name))
                    push_fail(name, now)
                    push_degrade(name, now)
            elif tag == _DECOM:
                push_churn(_DECOM, profile.decommission_every, now)
                candidates = (
                    roster.live()
                    if roster.live_count > profile.min_live else []
                )
                if candidates:
                    victim = candidates[int(churn.integers(len(candidates)))]
                    out.append(FaultEvent(now, FaultKind.DECOMMISSION, victim))
                    out.extend(end_limp(victim, now))
            elif tag == _COMMISSION:
                push_churn(_COMMISSION, profile.commission_every, now)
                drained = [
                    s for s in roster.known()
                    if roster.state_of(s) is ServerState.DRAINING
                ]
                if drained and float(churn.random()) < 0.5:
                    # Exercise recover-after-decommission: bring a drained
                    # server back instead of inventing a new one.
                    name = drained[int(churn.integers(len(drained)))]
                    out.append(FaultEvent(now, FaultKind.RECOVER, name))
                    push_fail(name, now)
                    push_degrade(name, now)
                elif commissioned < profile.max_commissions:
                    low, high = profile.commission_speed
                    speed = float(churn.uniform(low, high))
                    fresh = f"chaos{commissioned}"
                    commissioned += 1
                    server_rng[fresh] = self._streams.stream(
                        f"server:{fresh}"
                    )
                    out.append(
                        FaultEvent(now, FaultKind.COMMISSION, fresh,
                                   speed=speed)
                    )
                    push_fail(fresh, now)
                    push_degrade(fresh, now)
            elif tag == _DCRASH:
                push_churn(_DCRASH, profile.delegate_crash_every, now)
                if roster.live_count >= 2:
                    out.append(FaultEvent(now, FaultKind.DELEGATE_CRASH, "*"))
            elif tag == _DEGRADE:
                out.extend(self._limp_onset(
                    roster, server_rng, name, now,
                    limp_gen, ramp_left, coupled_to, heap, push_degrade,
                ))
            elif tag == _RESTORE:
                if limp_gen.get(name, 0) == gen:
                    if roster.is_live(name) and roster.is_degraded(name):
                        out.append(FaultEvent(now, FaultKind.RESTORE, name))
                    out.extend(release_coupled(name, now))
                    push_degrade(name, now)
            elif tag == _RAMP:
                if limp_gen.get(name, 0) == gen and roster.is_live(name):
                    steps = ramp_left.get(name, 0)
                    if steps > 0:
                        ramp_left[name] = steps - 1
                        factor = roster.degradation_of(name) * 0.5
                        out.append(
                            FaultEvent(now, FaultKind.DEGRADE, name,
                                       factor=factor)
                        )
                        heapq.heappush(
                            heap,
                            (now + draw(server_rng[name],
                                        profile.ramp_step_every),
                             _RAMP, name, gen),
                        )
                    elif roster.live_count > profile.min_live:
                        # The ramp bottoms out: the limping server dies.
                        out.append(FaultEvent(now, FaultKind.FAIL, name))
                        out.extend(end_limp(name, now))
                        push_recover(name, now)
                    else:
                        # Cannot afford to lose a server: the ramp ends
                        # in a restore instead of the crash.
                        if roster.is_degraded(name):
                            out.append(
                                FaultEvent(now, FaultKind.RESTORE, name)
                            )
                        out.extend(end_limp(name, now))
                        push_degrade(name, now)
            for event in out:
                apply_event(roster, event)
                yield event

    def _limp_onset(
        self,
        roster: MembershipRoster,
        server_rng: dict,
        name: str,
        now: Seconds,
        limp_gen: dict[str, int],
        ramp_left: dict[str, int],
        coupled_to: dict[str, list[str]],
        heap: list,
        push_degrade: Callable[[str, Seconds], None],
    ) -> list[FaultEvent]:
        """Handle a degradation-onset candidate popping for ``name``.

        Draws (factor, ramp-vs-sustained, coupling picks) from the
        server's own stream, so fail-stop trajectories of other servers
        are unperturbed.  Returns the DEGRADE events to apply (primary
        first, coupled sharers in sorted order), having pushed the
        follow-up ramp/restore candidate.
        """
        profile = self.profile
        if not roster.is_live(name):
            return []  # dropped; recover/commission restarts the process
        if roster.is_degraded(name):
            push_degrade(name, now)  # already limping; try again later
            return []
        rng = server_rng[name]
        low, high = profile.degrade_factor
        factor = float(rng.uniform(low, high))
        is_ramp = (
            profile.slow_then_dead > 0.0
            and float(rng.random()) < profile.slow_then_dead
        )
        gen = limp_gen[name] = limp_gen.get(name, 0) + 1
        out = [FaultEvent(now, FaultKind.DEGRADE, name, factor=factor)]
        if is_ramp:
            ramp_left[name] = profile.ramp_steps
            heapq.heappush(
                heap,
                (now + Seconds(float(rng.exponential(
                    profile.ramp_step_every))), _RAMP, name, gen),
            )
        else:
            heapq.heappush(
                heap,
                (now + Seconds(float(rng.exponential(
                    profile.degrade_mttrestore))), _RESTORE, name, gen),
            )
        if profile.couple_probability > 0.0:
            # I/O contention on the shared disk: the limping server's
            # retries slow co-located sharers down too, milder.
            coupled_factor = 1.0 - (1.0 - factor) * profile.couple_strength
            for other in roster.live():
                if other == name or roster.is_degraded(other):
                    continue
                if float(rng.random()) < profile.couple_probability:
                    out.append(
                        FaultEvent(now, FaultKind.DEGRADE, other,
                                   factor=coupled_factor)
                    )
                    coupled_to.setdefault(name, []).append(other)
        return out
