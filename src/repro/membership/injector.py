"""Stochastic fault injection: seeded chaos schedules for any harness.

Hand-written :class:`~repro.membership.faults.FaultSchedule`\\ s cover the
scenarios we thought of; the ROADMAP's robustness goal ("as many scenarios
as you can imagine") needs the ones we didn't.  :class:`FaultInjector`
generates *valid* random schedules from per-server failure/repair
processes plus commission/decommission churn — the same stochastic
availability methodology Chain Replication uses for its failure/repair
evaluations — while staying a pure function of ``(servers, profile,
seed)``:

- every server draws its times to failure and to repair from **its own
  named stream** (:class:`~repro.sim.rng.StreamFactory`), so adding a
  server to the fleet never perturbs another server's fault trajectory;
- churn (decommissions, commissions, delegate crashes) draws from a
  shared ``churn`` stream;
- the generator replays every candidate event through the
  :class:`~repro.membership.lifecycle.MembershipRoster` state machine,
  skipping candidates that would be illegal (a fail below ``min_live``,
  a delegate crash without a successor), so the schedule always passes
  :meth:`FaultSchedule.validate`;
- commission churn prefers *recovering* a previously drained server over
  inventing a new one half the time, exercising the documented
  recover-after-decommission semantics.

Two consumption modes:

- :meth:`FaultInjector.generate` — materialize the whole schedule up
  front (feeds any harness's ``faults=`` parameter; what
  :class:`~repro.runtime.scenario.Scenario` uses);
- :meth:`FaultInjector.inject` — online mode: lazily walk the same event
  stream on a live engine, sampling each next event only after the
  previous one fired.  Both modes yield the identical sequence for the
  same seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from ..sim.engine import Engine
from ..sim.events import PRIORITY_EARLY
from ..sim.rng import StreamFactory
from ..units import Seconds
from .faults import FaultEvent, FaultKind, FaultSchedule, apply_event
from .lifecycle import MembershipRoster, ServerState

__all__ = ["ChaosProfile", "FaultInjector"]


@dataclass(frozen=True)
class ChaosProfile:
    """Rates of the stochastic fault processes (all times in seconds).

    ``None`` disables a process.  ``mttf``/``mttr`` are per-server
    exponential means (time to failure while up, time to repair while
    down); the ``*_every`` fields are exponential means between churn
    events for the whole cluster.
    """

    mttf: Seconds | None = Seconds(300.0)
    mttr: Seconds = Seconds(60.0)
    decommission_every: Seconds | None = None
    commission_every: Seconds | None = None
    delegate_crash_every: Seconds | None = None
    #: Speed of newly commissioned servers, drawn uniformly.
    commission_speed: tuple[float, float] = (1.0, 9.0)
    #: Never drop below this many live servers (>= 1).
    min_live: int = 2
    #: Cap on brand-new servers the injector may invent.
    max_commissions: int = 8

    def __post_init__(self) -> None:
        for name in ("mttf", "decommission_every", "commission_every",
                     "delegate_crash_every"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        if self.mttr <= 0:
            raise ValueError(f"mttr must be positive, got {self.mttr!r}")
        if self.min_live < 1:
            raise ValueError(f"min_live must be >= 1, got {self.min_live!r}")
        if self.max_commissions < 0:
            raise ValueError("max_commissions must be >= 0")
        low, high = self.commission_speed
        if not 0 < low <= high:
            raise ValueError(
                f"need 0 < low <= high commission speed, got "
                f"{self.commission_speed!r}"
            )


#: A profile that only crashes and repairs (no churn): pure availability.
CRASH_ONLY = ChaosProfile()

#: Heavy churn: crashes, repairs, commissions and decommissions all active.
FULL_CHURN = ChaosProfile(
    mttf=Seconds(240.0),
    mttr=Seconds(45.0),
    decommission_every=Seconds(400.0),
    commission_every=Seconds(350.0),
    delegate_crash_every=Seconds(500.0),
)


# Candidate-queue tags; the tuple ordering (time, tag, server) makes the
# pop order — and therefore the whole schedule — deterministic.
_FAIL, _RECOVER, _DECOM, _COMMISSION, _DCRASH = (
    "a-fail", "b-recover", "c-decommission", "d-commission", "e-dcrash",
)


class FaultInjector:
    """Seeded generator of valid random membership-event schedules."""

    def __init__(
        self,
        servers: Mapping[str, float],
        profile: ChaosProfile | None = None,
        seed: int = 0,
    ) -> None:
        """``servers``: the initial fleet, name -> speed."""
        if not servers:
            raise ValueError("need at least one initial server")
        self.servers = dict(servers)
        self.profile = profile if profile is not None else CRASH_ONLY
        self.seed = seed
        if self.profile.min_live > len(servers):
            raise ValueError(
                f"min_live={self.profile.min_live} exceeds the initial "
                f"fleet of {len(servers)}"
            )
        self._streams = StreamFactory(seed).spawn("fault-injector")

    # ------------------------------------------------------------------
    def generate(self, horizon: Seconds) -> FaultSchedule:
        """The full schedule over ``[0, horizon)``; valid by construction
        and identical on every call with the same constructor arguments."""
        schedule = FaultSchedule()
        for event in self.events(horizon):
            schedule.add(event)
        return schedule

    def inject(
        self,
        engine: Engine,
        apply: Callable[[FaultEvent], object],
        horizon: Seconds,
    ) -> None:
        """Online mode: drive ``apply(event)`` on a live engine.

        Each next event is sampled lazily only after the previous one is
        applied, so a soak can outlive any pre-materialized schedule; the
        event sequence is identical to :meth:`generate`'s.
        """
        events = self.events(horizon)

        def _chain() -> None:
            event = next(events, None)
            if event is not None:
                engine.schedule_at(
                    event.time, _fire, event, priority=PRIORITY_EARLY
                )

        def _fire(event: FaultEvent) -> None:
            apply(event)
            _chain()

        _chain()

    # ------------------------------------------------------------------
    def events(self, horizon: Seconds) -> Iterator[FaultEvent]:
        """Lazily yield the schedule's events in time order."""
        profile = self.profile
        roster = MembershipRoster(self.servers)
        server_rng = {
            name: self._streams.stream(f"server:{name}")
            for name in sorted(self.servers)
        }
        churn = self._streams.stream("churn")
        commissioned = 0

        # Candidate heap of (time, tag, server); invalid candidates are
        # re-drawn or dropped when popped, against the live roster.
        heap: list[tuple[float, str, str]] = []

        def draw(rng, mean: Seconds) -> Seconds:
            return Seconds(float(rng.exponential(mean)))

        def push_fail(name: str, now: Seconds) -> None:
            if profile.mttf is not None:
                heapq.heappush(
                    heap, (now + draw(server_rng[name], profile.mttf),
                           _FAIL, name)
                )

        def push_recover(name: str, now: Seconds) -> None:
            heapq.heappush(
                heap, (now + draw(server_rng[name], profile.mttr),
                       _RECOVER, name)
            )

        def push_churn(tag: str, mean: Seconds | None, now: Seconds) -> None:
            if mean is not None:
                heapq.heappush(heap, (now + draw(churn, mean), tag, "*"))

        for name in sorted(self.servers):
            push_fail(name, Seconds(0.0))
        push_churn(_DECOM, profile.decommission_every, Seconds(0.0))
        push_churn(_COMMISSION, profile.commission_every, Seconds(0.0))
        push_churn(_DCRASH, profile.delegate_crash_every, Seconds(0.0))

        while heap:
            time, tag, name = heapq.heappop(heap)
            now = Seconds(time)
            if now >= horizon:
                break
            event: FaultEvent | None = None
            if tag == _FAIL:
                if (
                    roster.is_live(name)
                    and roster.live_count > profile.min_live
                ):
                    event = FaultEvent(now, FaultKind.FAIL, name)
                    push_recover(name, now)
                elif roster.is_live(name):
                    # Too few live servers to lose one; try again later.
                    push_fail(name, now)
            elif tag == _RECOVER:
                if roster.state_of(name) is ServerState.DOWN:
                    event = FaultEvent(now, FaultKind.RECOVER, name)
                    push_fail(name, now)
            elif tag == _DECOM:
                push_churn(_DECOM, profile.decommission_every, now)
                candidates = [
                    s for s in roster.live()
                    if roster.live_count > profile.min_live
                ]
                if candidates:
                    victim = candidates[int(churn.integers(len(candidates)))]
                    event = FaultEvent(now, FaultKind.DECOMMISSION, victim)
            elif tag == _COMMISSION:
                push_churn(_COMMISSION, profile.commission_every, now)
                drained = [
                    s for s in roster.known()
                    if roster.state_of(s) is ServerState.DRAINING
                ]
                if drained and float(churn.random()) < 0.5:
                    # Exercise recover-after-decommission: bring a drained
                    # server back instead of inventing a new one.
                    name = drained[int(churn.integers(len(drained)))]
                    event = FaultEvent(now, FaultKind.RECOVER, name)
                    push_fail(name, now)
                elif commissioned < profile.max_commissions:
                    low, high = profile.commission_speed
                    speed = float(churn.uniform(low, high))
                    fresh = f"chaos{commissioned}"
                    commissioned += 1
                    server_rng[fresh] = self._streams.stream(
                        f"server:{fresh}"
                    )
                    event = FaultEvent(
                        now, FaultKind.COMMISSION, fresh, speed=speed
                    )
                    push_fail(fresh, now)
            elif tag == _DCRASH:
                push_churn(_DCRASH, profile.delegate_crash_every, now)
                if roster.live_count >= 2:
                    event = FaultEvent(now, FaultKind.DELEGATE_CRASH, "*")
            if event is not None:
                apply_event(roster, event)
                yield event
