"""Unified membership lifecycle subsystem.

One place for everything that changes the server set of a simulated
cluster, shared by all three harness stacks (queueing, semantic file
system, message protocol):

- :mod:`.lifecycle` — the per-server state machine
  (``UP -> DRAINING -> DOWN -> UP``) every membership change is
  validated against;
- :mod:`.faults` — the fault/membership event vocabulary
  (:class:`FaultEvent`, :class:`FaultSchedule`) and the shared
  replay/validation dispatch;
- :mod:`.director` — :class:`MembershipDirector`, which applies events
  to any harness through the :class:`MembershipHost` protocol with
  identical ordering, telemetry, and move classification;
- :mod:`.injector` — :class:`FaultInjector`, a seeded stochastic
  generator of valid fault schedules (per-server exponential MTTF/MTTR
  plus commission/decommission churn) with an online injection mode;
- :mod:`.soak` — a chaos-soak CLI that runs randomized schedules
  through all three stacks and checks cross-stack invariants.
"""

from .director import MembershipChange, MembershipDirector, MembershipHost
from .faults import FaultEvent, FaultKind, FaultSchedule, apply_event
from .injector import (
    CRASH_ONLY,
    FULL_CHURN,
    LIMP_CHURN,
    LIMP_ONLY,
    ChaosProfile,
    FaultInjector,
)
from .lifecycle import (
    LifecycleError,
    MemberRecord,
    MembershipRoster,
    ServerState,
)

__all__ = [
    "ServerState",
    "LifecycleError",
    "MemberRecord",
    "MembershipRoster",
    "FaultKind",
    "FaultEvent",
    "FaultSchedule",
    "apply_event",
    "MembershipHost",
    "MembershipChange",
    "MembershipDirector",
    "ChaosProfile",
    "FaultInjector",
    "CRASH_ONLY",
    "FULL_CHURN",
    "LIMP_ONLY",
    "LIMP_CHURN",
]
