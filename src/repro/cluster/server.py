"""Heterogeneous metadata server.

A server has a *speed* — the paper's processing-power scalar (its five-server
cluster uses speeds 1, 3, 5, 7, 9: "if the least powerful server consumes
time T to complete a metadata request, then the most powerful consumes
T/9").  Service time for a request of cost ``c`` (speed-1 seconds) is
``c * multiplier / speed``, where the multiplier models a cold cache after a
file-set move.  Queueing is FIFO via :class:`repro.sim.resources.Facility`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.engine import Engine
from ..sim.resources import Facility
from .request import MetadataRequest


@dataclass(frozen=True)
class ServerSpec:
    """Static description of a server."""

    name: str
    speed: float

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError(f"speed must be positive, got {self.speed!r}")


class MetadataServer:
    """A metadata server: FIFO facility + speed + liveness."""

    def __init__(self, engine: Engine, spec: ServerSpec) -> None:
        self.engine = engine
        self.spec = spec
        self.facility = Facility(engine, name=spec.name)
        self.alive = True
        #: Gray-failure multiplier in (0, 1] over the frozen spec speed;
        #: 1.0 means healthy.  Mutated only via :meth:`set_degradation`.
        self.degradation = 1.0
        #: Requests dispatched here and not yet completed (for failure
        #: re-dispatch).
        self.outstanding: dict[int, MetadataRequest] = {}

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def base_speed(self) -> float:
        """The nominal (spec) speed, ignoring any gray failure."""
        return self.spec.speed

    @property
    def speed(self) -> float:
        """Effective speed: spec speed × current degradation."""
        return self.spec.speed * self.degradation

    def set_degradation(self, factor: float) -> None:
        """Limp at ``factor`` of spec speed (1.0 restores full speed).

        Applies to service times computed from now on; work already in
        the facility keeps the duration it was enqueued with, modelling a
        disk slowdown that hits new I/Os.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(
                f"degradation factor must be in (0, 1], got {factor!r}"
            )
        self.degradation = factor

    def service_time(self, request: MetadataRequest, multiplier: float = 1.0) -> float:
        """Seconds this server needs to serve ``request``."""
        return request.cost * multiplier / self.speed

    def submit(
        self,
        request: MetadataRequest,
        multiplier: float,
        on_complete,
    ) -> None:
        """Enqueue ``request``; ``on_complete(request)`` fires at completion."""
        if not self.alive:
            raise RuntimeError(f"submit to dead server {self.name!r}")
        self.outstanding[request.rid] = request

        def _done() -> None:
            self.outstanding.pop(request.rid, None)
            on_complete(request)

        self.facility.request(self.service_time(request, multiplier), _done)

    def fail(self) -> list[MetadataRequest]:
        """Crash: abort all queued/in-service work; returns the orphans."""
        if not self.alive:
            raise RuntimeError(f"server {self.name!r} already dead")
        self.alive = False
        self.facility.fail()
        orphans = sorted(self.outstanding.values(), key=lambda r: (r.arrival, r.rid))
        self.outstanding.clear()
        for request in orphans:
            request.retries += 1
        return orphans

    def drain(self) -> None:
        """Graceful decommission: stop accepting new work, keep serving.

        Unlike :meth:`fail`, the facility stays up so already-queued
        requests drain naturally; routing simply stops sending work here
        (``alive`` is the routing gate).
        """
        if not self.alive:
            raise RuntimeError(f"server {self.name!r} already dead")
        self.alive = False

    def recover(self) -> None:
        """Come back up with an empty queue (cache cold; the placement layer
        charges cold-cache penalties per gained file set).  A reboot also
        cures any limp: degradation resets to 1.0, mirroring
        :meth:`repro.membership.lifecycle.MembershipRoster.recover`."""
        if self.alive:
            raise RuntimeError(f"server {self.name!r} already alive")
        self.alive = True
        self.degradation = 1.0
        self.facility.resume_service()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"MetadataServer({self.name!r}, speed={self.speed}, {state})"
