"""Shared-disk file-system cluster model.

- :class:`~repro.cluster.cluster.ClusterSimulation` — one policy vs. one
  trace on a heterogeneous server cluster;
- :class:`~repro.cluster.cluster.ClusterConfig` /
  :func:`~repro.cluster.cluster.paper_servers` — configuration (the paper's
  speeds 1, 3, 5, 7, 9);
- :class:`~repro.cluster.mover.MoveCostModel` — 5–10 s flush/init delay and
  cold-cache penalties;
- :class:`~repro.membership.faults.FaultSchedule` — failure/recovery and
  (de)commission events (re-exported here for compatibility).
"""

from .cluster import ClusterConfig, ClusterSimulation, RunResult, paper_servers
from .protocol_driver import (
    PassiveANUPolicy,
    ProtocolDrivenCluster,
    ProtocolRunResult,
)
from ..membership.faults import FaultEvent, FaultKind, FaultSchedule
from .fileset import FileSetState
from .mover import FREE_MOVES, FileSetMover, MoveCostModel
from .request import MetadataRequest
from .server import MetadataServer, ServerSpec

__all__ = [
    "ClusterConfig",
    "ClusterSimulation",
    "RunResult",
    "paper_servers",
    "ProtocolDrivenCluster",
    "ProtocolRunResult",
    "PassiveANUPolicy",
    "FaultSchedule",
    "FaultEvent",
    "FaultKind",
    "FileSetState",
    "FileSetMover",
    "MoveCostModel",
    "FREE_MOVES",
    "MetadataRequest",
    "MetadataServer",
    "ServerSpec",
]
