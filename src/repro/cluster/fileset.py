"""File-set runtime state.

A file set is the paper's indivisible unit of workload assignment: a
subtree of the global namespace owned by exactly one metadata server at a
time.  At simulation runtime a file set is either *settled* on its owner or
*in flight* between servers (the shared-disk move: source flushes its
cache, destination initializes).

While in flight the *source* keeps serving requests — in a shared-disk
system ownership transfers only once the flush completes — so a planned
move costs the destination a cold cache (and delays the load shift by the
move duration) but does not black out service.  Only when the owner is
*dead* (failure-triggered moves) do requests buffer here until the move
completes; those requests pay the full recovery delay, which is how
failures surface in the latency plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .request import MetadataRequest


@dataclass
class FileSetState:
    """Runtime state of one file set."""

    name: str
    owner: str
    #: True while the file set is moving between servers.
    moving: bool = False
    #: Destination of the in-flight move (None when settled).
    move_target: str | None = None
    #: Requests buffered during the move.
    buffer: list[MetadataRequest] = field(default_factory=list)
    #: Cold-cache grace: number of upcoming requests served at the cold
    #: multiplier after a move.
    cold_remaining: int = 0
    #: Total times this file set has been moved (for movement accounting).
    moves: int = 0

    def begin_move(self, target: str) -> None:
        """Mark the file set in flight toward ``target``."""
        if self.moving:
            raise ValueError(f"file set {self.name!r} is already moving")
        if target == self.owner:
            raise ValueError(f"move of {self.name!r} to its current owner")
        self.moving = True
        self.move_target = target

    def finish_move(self, cold_requests: int) -> list[MetadataRequest]:
        """Settle on the destination; returns the buffered requests."""
        if not self.moving or self.move_target is None:
            raise ValueError(f"file set {self.name!r} is not moving")
        self.owner = self.move_target
        self.moving = False
        self.move_target = None
        self.moves += 1
        self.cold_remaining = cold_requests
        drained, self.buffer = self.buffer, []
        return drained

    def redirect_move(self, target: str) -> None:
        """Change the in-flight destination (destination server failed)."""
        if not self.moving:
            raise ValueError(f"file set {self.name!r} is not moving")
        self.move_target = target

    def next_cost_multiplier(self, cold_multiplier: float) -> float:
        """Service-cost multiplier for the next request (cold cache decay)."""
        if self.cold_remaining > 0:
            self.cold_remaining -= 1
            return cold_multiplier
        return 1.0
