"""Cluster simulation tuned through the message-level delegate protocol.

:class:`repro.cluster.ClusterSimulation` normally invokes its policy's
tuner by direct call — fine for the figures, where protocol latencies
(milliseconds) vanish against the 2-minute tuning interval.  This module
closes the loop for the availability story: the same queueing simulation,
but with tuning driven end-to-end by :mod:`repro.proto` on the *same*
event engine — heartbeats, elections, report requests and versioned config
updates all travel the simulated network, and a delegate crash mid-run is
healed by a real election.

Composition: the cluster runs a passive ANU policy (it owns the placement
but never tunes); one protocol node per server reads that server's latency
from the simulation's collector and the elected delegate's config updates
are applied — exactly once per epoch — as share rescales + file-set moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.anu import ANUPlacement
from ..core.hashing import HashFamily
from ..core.tuning import TuningConfig
from ..membership.faults import FaultEvent, FaultKind, FaultSchedule
from ..placement.base import PlacementPolicy, TuningContext
from ..proto.network import Network, NetworkConfig
from ..proto.node import ProtocolConfig, ServerNode
from ..runtime.routing import RequestRouter
from ..runtime.telemetry import TelemetrySink
from ..sim.events import PRIORITY_EARLY
from ..sim.rng import StreamFactory
from ..workloads.trace import Trace
from .cluster import ClusterConfig, ClusterSimulation, RunResult


class PassiveANUPolicy(PlacementPolicy):
    """ANU placement whose tuning is driven externally (by the protocol)."""

    name = "anu-protocol"

    def __init__(self, hash_family: HashFamily | None = None) -> None:
        self._hash_family = hash_family
        self.placement: ANUPlacement | None = None

    def initial_assignment(
        self, filesets: Sequence[str], servers: Sequence[str]
    ) -> dict[str, str]:
        self.placement = ANUPlacement(servers, hash_family=self._hash_family)
        return self.placement.assignment(filesets)

    def update(self, context: TuningContext) -> dict[str, str] | None:
        return None  # tuning arrives via ConfigUpdate messages instead

    def on_membership_change(
        self,
        filesets: Sequence[str],
        servers: Sequence[str],
        assignment: Mapping[str, str],
    ) -> dict[str, str]:
        placement = self.placement
        assert placement is not None
        current = set(placement.servers)
        target = set(servers)
        for name in sorted(current - target):
            placement.remove_server(name)
        for name in sorted(target - current):
            placement.add_server(name)
        return placement.assignment(filesets)


@dataclass
class ProtocolRunResult:
    """Queueing results plus protocol-level observations."""

    run: RunResult
    delegate_history: list[tuple[float, str]]
    config_updates_applied: int
    messages_sent: int
    messages_dropped: int


class ProtocolDrivenCluster:
    """Queueing cluster + §4 control plane on one engine."""

    def __init__(
        self,
        config: ClusterConfig,
        trace: Trace,
        tuning: TuningConfig | None = None,
        protocol: ProtocolConfig | None = None,
        network: NetworkConfig | None = None,
        delegate_crash_times: Sequence[float] = (),
        telemetry: TelemetrySink | None = None,
        faults: FaultSchedule | None = None,
        router: RequestRouter | None = None,
        replication: int = 1,
    ) -> None:
        self.config = config
        self.policy = PassiveANUPolicy()
        # The sink sees the queueing stream (arrivals, moves) from the
        # simulation plus protocol-level records (elections, delegate
        # rounds) from the nodes.  Dispatch happens inside the wrapped
        # simulation, so forwarding router + replication there puts the
        # routing plane under the protocol-driven stack too.
        self.sim = ClusterSimulation(
            config,
            self.policy,
            trace,
            faults=faults,
            telemetry=telemetry,
            router=router,
            replication=replication,
        )
        factory = StreamFactory(config.seed).spawn("protocol")
        self.network = Network(self.sim.engine, factory.stream("network"), network)
        self.protocol = protocol or ProtocolConfig(
            tuning_interval=config.tuning_interval
        )
        self._tuning = tuning
        self._telemetry = telemetry
        self._applied_epoch = -1
        self.config_updates_applied = 0
        self.delegate_history: list[tuple[float, str]] = []
        self.nodes: dict[str, ServerNode] = {}
        server_names = sorted(self.sim.servers)
        for i, name in enumerate(server_names):
            node = ServerNode(
                name=name,
                priority=i,
                engine=self.sim.engine,
                network=self.network,
                report_source=self._make_report_source(name),
                on_config=self._apply_config,
                config=self.protocol,
                tuning=tuning,
                initial_shares={s: 1.0 for s in server_names},
                telemetry=telemetry,
                queue_source=self._make_queue_source(name),
            )
            self.nodes[name] = node
        for t in delegate_crash_times:
            self.sim.engine.schedule_at(t, self._crash_current_delegate)
        # Mirror membership events onto the protocol nodes.  The queueing
        # side is handled by the simulation's own membership director;
        # these callbacks (scheduled first, so they fire first at equal
        # times) keep the control plane's node set in step.
        if faults is not None:
            for ev in faults:
                self.sim.engine.schedule_at(
                    ev.time, self._mirror_fault, ev, priority=PRIORITY_EARLY
                )

    # ------------------------------------------------------------------
    def _make_report_source(self, name: str):
        def source():
            now = self.sim.engine.now
            interval = self.protocol.tuning_interval
            return self.sim.collector.interval_report(
                name, max(0.0, now - interval), now
            )

        return source

    def _make_queue_source(self, name: str):
        """Expose the server's instantaneous queue depth to its node —
        the routing plane's signal, piggybacked on report replies."""

        def source() -> int:
            server = self.sim.servers.get(name)
            return server.facility.queue_length if server is not None else 0

        return source

    def _apply_config(self, shares: Mapping[str, float], epoch: int) -> None:
        """Exactly-once application of a config update to the placement."""
        if epoch <= self._applied_epoch:
            return
        self._applied_epoch = epoch
        placement = self.policy.placement
        assert placement is not None
        live = set(placement.servers)
        relevant = {k: v for k, v in shares.items() if k in live}
        # Servers missing from the update keep their current share.
        current = placement.shares()
        total_current = sum(current.values()) or 1.0
        merged = {
            s: relevant.get(s, current[s] / total_current * len(current))
            for s in live
        }
        if sum(merged.values()) <= 0:
            return
        placement.set_shares(merged)
        placement.check_invariants()
        self.config_updates_applied += 1
        old = self.sim.planned_assignment()
        new = placement.assignment(list(self.sim.trace.fileset_names))
        self.sim.realize(old, new)

    def _shutdown_protocol(self) -> None:
        for node in self.nodes.values():
            if node.alive:
                node.shutdown()

    def _crash_current_delegate(self) -> None:
        for name, node in self.nodes.items():
            if node.is_delegate:
                node.crash()
                return

    def _mirror_fault(self, event: FaultEvent) -> None:
        """Reflect one schedule event on the protocol node set."""
        kind = event.kind
        if kind is FaultKind.FAIL:
            self.nodes[event.server].crash()
        elif kind is FaultKind.RECOVER:
            self.nodes[event.server].recover()
        elif kind is FaultKind.DECOMMISSION:
            self.nodes[event.server].shutdown()
        elif kind is FaultKind.COMMISSION:
            priority = max(n.priority for n in self.nodes.values()) + 1
            node = ServerNode(
                name=event.server,
                priority=priority,
                engine=self.sim.engine,
                network=self.network,
                report_source=self._make_report_source(event.server),
                on_config=self._apply_config,
                config=self.protocol,
                tuning=self._tuning,
                initial_shares={s: 1.0 for s in sorted(self.nodes)}
                | {event.server: 1.0},
                telemetry=self._telemetry,
                queue_source=self._make_queue_source(event.server),
            )
            self.nodes[event.server] = node
            node.start()
        elif kind is FaultKind.DELEGATE_CRASH:
            self._crash_current_delegate()
        elif kind in (FaultKind.DEGRADE, FaultKind.RESTORE):
            # Gray failures change service times on the queueing side
            # (the simulation's own director realizes them via
            # set_speed); protocol nodes model no service speed, and the
            # limp must not perturb elections or heartbeats — mirror the
            # factor onto the node for observability and nothing else.
            node = self.nodes.get(event.server)
            if node is not None:
                node.speed = (
                    event.factor if kind is FaultKind.DEGRADE else 1.0
                )

    # ------------------------------------------------------------------
    def run(self) -> ProtocolRunResult:
        """Start the protocol nodes and execute the full trace."""
        for node in self.nodes.values():
            node.start()
        self._watch_delegate()
        # Stop the protocol's self-rescheduling timers when the trace ends
        # so the queueing drain phase terminates.
        self.sim.engine.schedule_at(
            self.sim.trace.duration, self._shutdown_protocol
        )
        result = self.sim.run()
        return ProtocolRunResult(
            run=result,
            delegate_history=self.delegate_history,
            config_updates_applied=self.config_updates_applied,
            messages_sent=self.network.sent,
            messages_dropped=self.network.dropped,
        )

    def _watch_delegate(self) -> None:
        """Sample the elected delegate once per tuning interval (log)."""
        current = next(
            (n for n, node in self.nodes.items() if node.is_delegate), None
        )
        if current is not None and (
            not self.delegate_history or self.delegate_history[-1][1] != current
        ):
            self.delegate_history.append((self.sim.engine.now, current))
        if self.sim.engine.now <= self.sim.trace.duration:
            self.sim.engine.schedule(
                self.protocol.tuning_interval / 2, self._watch_delegate
            )
