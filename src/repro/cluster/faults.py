"""Compatibility re-export of the membership fault vocabulary.

The fault/membership event types grew into a harness-independent
subsystem and now live in :mod:`repro.membership.faults`; this module
keeps the historical ``repro.cluster.faults`` import path working.  New
code should import from :mod:`repro.membership` directly.
"""

from ..membership.faults import (  # noqa: F401
    FaultEvent,
    FaultKind,
    FaultSchedule,
    apply_event,
)

__all__ = ["FaultKind", "FaultEvent", "FaultSchedule", "apply_event"]
