"""Fault and membership schedules.

The paper treats failure/recovery and decommission/commission uniformly
(§4: "the framework treats commissioning or decommissioning servers the
same as a recovery or failure").  A :class:`FaultSchedule` is a list of
timed membership events the cluster simulation applies; tests and the
failure experiments build them declaratively.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FaultKind(enum.Enum):
    """What happens to the server at the scheduled time."""

    FAIL = "fail"          # crash: queued work is lost and re-dispatched
    RECOVER = "recover"    # a previously failed server rejoins
    COMMISSION = "commission"      # a brand-new server joins
    DECOMMISSION = "decommission"  # graceful removal (queue drains first)
    DELEGATE_CRASH = "delegate-crash"  # the tuning delegate fails over


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled membership/fault event."""

    time: float
    kind: FaultKind
    server: str
    #: Speed for COMMISSION events (ignored otherwise).
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"negative event time {self.time!r}")
        if self.kind is FaultKind.COMMISSION and self.speed <= 0:
            raise ValueError(f"commissioned server needs positive speed")


@dataclass
class FaultSchedule:
    """A time-ordered set of fault events."""

    events: list[FaultEvent] = field(default_factory=list)

    def add(self, event: FaultEvent) -> "FaultSchedule":
        """Insert an event, keeping the schedule time-ordered."""
        self.events.append(event)
        self.events.sort(key=lambda e: (e.time, e.server))
        return self

    def fail(self, time: float, server: str) -> "FaultSchedule":
        """Schedule a crash of ``server`` at ``time``."""
        return self.add(FaultEvent(time, FaultKind.FAIL, server))

    def recover(self, time: float, server: str) -> "FaultSchedule":
        """Schedule a recovery of a failed/decommissioned ``server``."""
        return self.add(FaultEvent(time, FaultKind.RECOVER, server))

    def commission(self, time: float, server: str, speed: float) -> "FaultSchedule":
        """Schedule a brand-new server joining at ``time``."""
        return self.add(FaultEvent(time, FaultKind.COMMISSION, server, speed))

    def decommission(self, time: float, server: str) -> "FaultSchedule":
        """Schedule a graceful removal of ``server`` at ``time``."""
        return self.add(FaultEvent(time, FaultKind.DECOMMISSION, server))

    def delegate_crash(self, time: float) -> "FaultSchedule":
        """Schedule a tuning-delegate fail-over at ``time``."""
        return self.add(FaultEvent(time, FaultKind.DELEGATE_CRASH, server="*"))

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def validate(self, initial_servers: set[str]) -> None:
        """Check the schedule is consistent (no double-fail, etc.)."""
        up = set(initial_servers)
        known = set(initial_servers)
        for ev in self.events:
            if ev.kind is FaultKind.FAIL or ev.kind is FaultKind.DECOMMISSION:
                if ev.server not in up:
                    raise ValueError(f"{ev.kind.value} of down/unknown {ev.server!r}")
                up.remove(ev.server)
            elif ev.kind is FaultKind.RECOVER:
                if ev.server not in known or ev.server in up:
                    raise ValueError(f"recover of unknown/up server {ev.server!r}")
                up.add(ev.server)
            elif ev.kind is FaultKind.COMMISSION:
                if ev.server in known:
                    raise ValueError(f"commission of existing server {ev.server!r}")
                known.add(ev.server)
                up.add(ev.server)
            if not up:
                raise ValueError("schedule leaves the cluster with no servers")
