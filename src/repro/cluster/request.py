"""Metadata request lifecycle.

A request is born when a client issues it (the trace arrival time), is
routed to the owner of its file set, possibly waits in a move buffer while
the file set is in flight between servers, queues at a server's FIFO
facility, is served, and completes.  Latency — the paper's sole performance
metric ("we use request latency, because all requests are short and service
time variance is low", §2) — is completion time minus arrival time, so it
includes move-buffering, queueing, and service.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_REQUEST_IDS = itertools.count()


@dataclass(slots=True)
class MetadataRequest:
    """One metadata operation against a file set."""

    arrival: float
    fileset: str
    cost: float
    rid: int = field(default_factory=lambda: next(_REQUEST_IDS))
    #: Server that ultimately completed the request (None while pending).
    served_by: str | None = None
    completion: float | None = None
    #: How many times the request was re-dispatched (server failures).
    retries: int = 0

    @property
    def latency(self) -> float:
        """Completion minus arrival; raises if the request is pending."""
        if self.completion is None:
            raise ValueError(f"request {self.rid} has not completed")
        return self.completion - self.arrival

    def complete(self, server: str, now: float) -> float:
        """Mark done at ``now`` on ``server``; returns latency."""
        if self.completion is not None:
            raise ValueError(f"request {self.rid} completed twice")
        if now < self.arrival:
            raise ValueError(
                f"completion {now} precedes arrival {self.arrival}"
            )
        self.served_by = server
        self.completion = now
        return self.latency
