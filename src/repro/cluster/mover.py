"""Shared-disk file-set movement.

"It takes five to ten seconds to move a file set from one server to
another in our target system.  The releasing server needs to flush its
cache, writing all dirty data back to stable storage.  The acquiring server
must initialize the file set.  Furthermore, the acquiring file server
starts with a cold cache, which hinders performance initially." (§7)

The mover draws each move's delay uniformly from [min_delay, max_delay],
marks the file set in flight (requests buffer at
:class:`repro.cluster.fileset.FileSetState`), and on completion releases
the buffer to the destination with a cold-cache penalty on the first
``cold_requests`` requests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.engine import Engine
from ..units import Seconds
from .fileset import FileSetState


@dataclass(frozen=True)
class MoveCostModel:
    """Cost parameters for moving a file set over the shared disk."""

    min_delay: Seconds = Seconds(5.0)
    max_delay: Seconds = Seconds(10.0)
    cold_requests: int = 32
    cold_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if not 0 <= self.min_delay <= self.max_delay:
            raise ValueError(
                f"need 0 <= min_delay <= max_delay, got "
                f"[{self.min_delay!r}, {self.max_delay!r}]"
            )
        if self.cold_requests < 0 or self.cold_multiplier < 1.0:
            raise ValueError("cold_requests >= 0 and cold_multiplier >= 1 required")


#: A zero-cost model for pure-placement experiments (no simulator effects).
FREE_MOVES = MoveCostModel(
    min_delay=Seconds(0.0), max_delay=Seconds(0.0), cold_requests=0
)


class FileSetMover:
    """Schedules and completes file-set moves on the engine."""

    def __init__(
        self,
        engine: Engine,
        cost_model: MoveCostModel,
        rng: np.random.Generator,
    ) -> None:
        self.engine = engine
        self.cost = cost_model
        self.rng = rng
        self.moves_started = 0
        self.moves_completed = 0

    def sample_delay(self) -> Seconds:
        """One flush+initialize delay draw from the cost model."""
        if self.cost.max_delay == self.cost.min_delay:
            return self.cost.min_delay
        return Seconds(
            float(self.rng.uniform(self.cost.min_delay, self.cost.max_delay))
        )

    def start_move(self, state: FileSetState, target: str, on_complete) -> None:
        """Begin moving ``state`` to ``target``.

        ``on_complete(state, buffered_requests)`` fires after the move
        delay; the caller re-dispatches the buffered requests.
        """
        state.begin_move(target)
        self.moves_started += 1
        delay = self.sample_delay()

        def _finish() -> None:
            self.moves_completed += 1
            drained = state.finish_move(self.cost.cold_requests)
            on_complete(state, drained)

        self.engine.schedule(delay, _finish)
