"""The shared-disk file-system cluster simulation.

Wires together the discrete-event engine, heterogeneous metadata servers,
a placement policy, a request trace, the shared-disk file-set mover, and an
optional fault schedule — the simulator of the paper's §7, on our YACSIM
substitute.

Timeline of one run:

- trace arrivals are replayed in order; each request is routed to a live
  owner of its file set — at ``replication=1`` always the single owner, at
  higher r whichever live replica the :class:`RequestRouter` picks — and
  buffers only when every owner is down;
- every ``tuning_interval`` seconds the delegate round fires: per-server
  latency reports for the elapsed interval are computed and handed to the
  policy, whose new assignment (if any) is realized as shared-disk moves
  with flush/init delay and cold-cache penalties;
- fault events fail/recover/commission/decommission servers; queued work on
  a crashed server is re-dispatched and follows its file set through
  recovery moves.

Since the ``repro.runtime`` refactor this class is a thin adapter: arrival
scheduling, tuning cadence, report history, and membership handling come
from :class:`repro.runtime.loop.TuningLoop` /
:class:`repro.runtime.arrivals.ArrivalPump`; this module contributes only
what is specific to the queueing model (server facilities, the file-set
mover, fault realization).  A structured telemetry stream
(:mod:`repro.runtime.telemetry`) reports arrivals, dispatches,
completions, tuning decisions, moves, and faults to any sink passed in.

The simulation is a pure function of ``(config, policy, trace, faults)``:
all randomness derives from ``config.seed`` via named streams, and
telemetry is purely observational.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..contracts import checks_invariants
from ..core.movement import MovementLedger, diff_assignment
from ..core.tuning import ServerReport, TuningDecision
from ..membership.director import MembershipDirector
from ..membership.faults import FaultEvent, FaultSchedule
from ..membership.lifecycle import MembershipRoster
from ..metrics.latency import LatencyCollector
from ..placement.base import PlacementPolicy, TuningContext, validate_assignment
from ..placement.replicated import derive_owner_sets
from ..runtime.arrivals import ArrivalPump
from ..runtime.loop import TuningLoop
from ..runtime.routing import RequestRouter, SingleOwnerRouter
from ..runtime.result import SimResult, summarize_collector
from ..runtime.telemetry import (
    NULL_SINK,
    MoveFinished,
    MoveStarted,
    RequestArrived,
    RequestCompleted,
    RequestDispatched,
    TelemetrySink,
)
from ..sim.engine import Engine
from ..sim.events import PRIORITY_EARLY
from ..sim.rng import StreamFactory
from ..units import Seconds
from ..workloads.trace import Trace, TraceRecord
from .fileset import FileSetState
from .mover import FileSetMover, MoveCostModel
from .request import MetadataRequest
from .server import MetadataServer, ServerSpec


@dataclass(frozen=True)
class ClusterConfig:
    """Static configuration of a simulated cluster run."""

    servers: tuple[ServerSpec, ...]
    tuning_interval: float = 120.0
    sample_window: float = 60.0
    move_cost: MoveCostModel = field(default_factory=MoveCostModel)
    seed: int = 0
    #: How far ahead the prescient oracle looks when reading per-file-set
    #: demand (seconds).  ``None`` means one tuning interval — the right
    #: choice for non-stationary traces.  For stationary workloads set it
    #: to the trace duration: the oracle then sees the true rates instead
    #: of per-window Poisson noise, and the prescient policy "retains the
    #: same configuration for the duration of the experiment" (§7).
    oracle_horizon: float | None = None
    #: Which latency the figures and delegate reports use.  ``"wait"`` is
    #: time from arrival to start of service (queueing + move buffering);
    #: ``"response"`` additionally includes service time.  The paper's
    #: figures are consistent only with a queueing-dominated metric — an
    #: idle server shows *zero* latency and balanced runs sit far below the
    #: slow server's raw service time — so ``"wait"`` is the default (see
    #: EXPERIMENTS.md).
    latency_metric: str = "wait"

    def __post_init__(self) -> None:
        if not self.servers:
            raise ValueError("need at least one server")
        names = [s.name for s in self.servers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate server names in {names!r}")
        if self.tuning_interval <= 0 or self.sample_window <= 0:
            raise ValueError("tuning_interval and sample_window must be positive")
        if self.latency_metric not in ("wait", "response"):
            raise ValueError(f"unknown latency_metric {self.latency_metric!r}")

    @property
    def speeds(self) -> dict[str, float]:
        return {s.name: s.speed for s in self.servers}


#: The paper's five-server heterogeneous cluster (speeds 1, 3, 5, 7, 9).
def paper_servers() -> tuple[ServerSpec, ...]:
    """Server set used throughout the paper's §7 experiments."""
    return tuple(
        ServerSpec(name=f"server{i}", speed=float(speed))
        for i, speed in enumerate([1, 3, 5, 7, 9])
    )


class RunResult(SimResult):
    """Legacy name for the queueing harness's :class:`SimResult`."""


class ClusterSimulation:
    """One simulated run of a placement policy against a trace.

    Implements :class:`repro.runtime.loop.TuningHost` (the shared
    :class:`TuningLoop` drives its delegate rounds) and
    :class:`repro.membership.director.MembershipHost` (the
    :class:`MembershipDirector` applies fault/membership events through
    the lifecycle state machine).
    """

    def __init__(
        self,
        config: ClusterConfig,
        policy: PlacementPolicy,
        trace: Trace,
        faults: FaultSchedule | None = None,
        telemetry: TelemetrySink | None = None,
        router: RequestRouter | None = None,
        replication: int = 1,
    ) -> None:
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication!r}")
        self.config = config
        self.policy = policy
        self.trace = trace
        self.faults = faults or FaultSchedule()
        self.faults.validate({s.name for s in config.servers})
        self.telemetry = telemetry if telemetry is not None else NULL_SINK
        self.replication = replication
        self.router = router if router is not None else SingleOwnerRouter()

        self.engine = Engine()
        factory = StreamFactory(config.seed)
        self.mover = FileSetMover(
            self.engine, config.move_cost, factory.stream("mover")
        )
        self._policy_rng = factory.stream("policy")
        # Named stream: adding it perturbs no other stream, so r=1 runs
        # replay byte-identically even though the router is always bound.
        self.router.bind(factory.stream("request-router"))

        self.servers: dict[str, MetadataServer] = {
            spec.name: MetadataServer(self.engine, spec) for spec in config.servers
        }
        self.roster = MembershipRoster(
            {spec.name: spec.speed for spec in config.servers}
        )
        self.director = MembershipDirector(
            self.roster,
            host=self,
            telemetry=self.telemetry,
            clock=lambda: Seconds(self.engine.now),
        )
        self.collector = LatencyCollector()
        for name in self.servers:
            self.collector.ensure_server(name)
        self.ledger = MovementLedger()
        self.completed: dict[str, int] = {name: 0 for name in self.servers}
        self.retries = 0
        self.loop = TuningLoop(
            engine=self.engine,
            interval=config.tuning_interval,
            duration=trace.duration,
            host=self,
            telemetry=self.telemetry,
        )

        initial = policy.initial_assignment(
            list(trace.fileset_names), sorted(self.servers)
        )
        validate_assignment(initial, trace.fileset_names, sorted(self.servers))
        self.filesets: dict[str, FileSetState] = {
            name: FileSetState(name=name, owner=initial[name])
            for name in trace.fileset_names
        }
        #: Replica slots 1..r-1 per file set (empty at r=1).  Derived from
        #: the planned primary over the live set; refreshed whenever either
        #: changes.  Shared disk makes these pure routing-table entries —
        #: updating them moves no data.
        self._replica_owners: dict[str, tuple[str, ...]] = {}
        self._refresh_replicas()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def live_servers(self) -> list[str]:
        return self.roster.live()

    @property
    def tuning_rounds(self) -> int:
        """Delegate rounds run so far (owned by the shared loop)."""
        return self.loop.rounds

    def planned_assignment(self) -> dict[str, str]:
        """Where each file set is (or is headed, if mid-move)."""
        return {
            name: (st.move_target if st.moving else st.owner)  # type: ignore[misc]
            for name, st in self.filesets.items()
        }

    def owner_sets(self) -> dict[str, tuple[str, ...]]:
        """Current owner set per file set: slot 0 is the settled owner,
        later slots the derived replicas (r=1 yields 1-tuples)."""
        return {
            name: (
                state.owner,
                *(
                    s
                    for s in self._replica_owners.get(name, ())
                    if s != state.owner
                ),
            )
            for name, state in self.filesets.items()
        }

    def _refresh_replicas(self) -> None:
        """Re-derive replica slots from the planned primary + live set.

        Called after initial assignment and after every realize (tuning or
        membership).  At r=1 this is a constant-time no-op, preserving the
        classic single-owner run exactly.
        """
        if self.replication == 1:
            return
        owner_sets = derive_owner_sets(
            self.planned_assignment(),
            self.live_servers,
            self.replication,
            placement=getattr(self.policy, "placement", None),
        )
        self._replica_owners = {
            name: owners[1:] for name, owners in owner_sets.items()
        }

    def check_invariants(self) -> None:
        """Assert ownership uniqueness and referential integrity.

        Every file set in the trace has exactly one state entry; its owner
        (and in-flight move target, if any) name a registered server.  A
        dead owner is legal — requests buffer until the recovery move — but
        an owner that was never commissioned is a routing bug.
        """
        if set(self.filesets) != set(self.trace.fileset_names):
            raise ValueError(
                "file-set states do not match the trace universe: "
                f"{sorted(set(self.filesets) ^ set(self.trace.fileset_names))}"
            )
        for name, state in self.filesets.items():
            if state.name != name:
                raise ValueError(f"state for {name!r} claims name {state.name!r}")
            if state.owner not in self.servers:
                raise ValueError(
                    f"{name!r} owned by unregistered server {state.owner!r}"
                )
            if state.moving:
                if state.move_target not in self.servers:
                    raise ValueError(
                        f"{name!r} moving to unregistered server "
                        f"{state.move_target!r}"
                    )
            elif state.move_target is not None:
                raise ValueError(
                    f"{name!r} is settled but records move target "
                    f"{state.move_target!r}"
                )
            for replica in self._replica_owners.get(name, ()):
                if replica not in self.servers:
                    raise ValueError(
                        f"{name!r} lists unregistered replica {replica!r}"
                    )

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the full trace, then drain queues; returns the results."""
        pump = ArrivalPump(
            self.engine,
            self.trace.records(),
            self._on_arrival,
            time_of=lambda record: record.time,
        )
        pump.start()
        for ev in self.faults:
            self.engine.schedule_at(
                ev.time, self._on_fault, ev, priority=PRIORITY_EARLY
            )
        if self.config.tuning_interval <= self.trace.duration:
            self.loop.start(self.config.tuning_interval)
        self.engine.run(until=self.trace.duration)
        self.engine.run()  # drain: arrivals are done, tuning stops rescheduling
        return self._result()

    # ------------------------------------------------------------------
    # Arrivals and service
    # ------------------------------------------------------------------
    def _on_arrival(self, record: TraceRecord) -> None:
        request = MetadataRequest(
            arrival=record.time, fileset=record.fileset, cost=record.cost
        )
        sink = self.telemetry
        if sink.enabled:
            sink.emit(
                RequestArrived(
                    time=self.engine.now, fileset=record.fileset, cost=record.cost
                )
            )
        self._route(request)

    def _route(self, request: MetadataRequest) -> None:
        state = self.filesets[request.fileset]
        # During a planned move the source keeps serving (ownership hands
        # over at flush completion); a request buffers only when *every*
        # owner of its file set is down.
        slot, server = self._pick_owner(request.fileset, state)
        if server is None:
            state.buffer.append(request)
            return
        multiplier = state.next_cost_multiplier(self.config.move_cost.cold_multiplier)
        service_time = server.service_time(request, multiplier)
        server.submit(request, multiplier, self._make_completion(server, service_time))
        sink = self.telemetry
        if sink.enabled:
            sink.emit(
                RequestDispatched(
                    time=self.engine.now,
                    fileset=request.fileset,
                    server=server.name,
                    service_time=service_time,
                    router=self.router.name,
                    replica=slot,
                )
            )

    def _pick_owner(
        self, fileset: str, state: FileSetState
    ) -> tuple[int, MetadataServer | None]:
        """The (slot, server) the router picks among live owners.

        ``(0, None)`` means every owner is down and the request must
        buffer.  The r=1 path never consults the router, preserving the
        pre-refactor dispatch exactly.
        """
        primary = self.servers.get(state.owner)
        primary_up = primary is not None and primary.alive
        if self.replication == 1:
            return 0, (primary if primary_up else None)
        candidates: list[tuple[int, MetadataServer]] = []
        if primary_up:
            assert primary is not None
            candidates.append((0, primary))
        # Slot numbering matches owner_sets(): replicas that coincide with
        # the current owner (possible mid-move) are compacted out, not
        # skipped-with-a-gap, so the telemetry slot indexes the owner set.
        slot = 0
        for name in self._replica_owners.get(fileset, ()):
            if name == state.owner:
                continue
            slot += 1
            replica = self.servers.get(name)
            if replica is not None and replica.alive:
                candidates.append((slot, replica))
        if not candidates:
            return 0, None
        if len(candidates) == 1:
            return candidates[0]
        index = self.router.choose(
            fileset,
            [server.name for _, server in candidates],
            lambda name: self.servers[name].facility.queue_length,
        )
        return candidates[index]

    def _make_completion(self, server: MetadataServer, service_time: float):
        def _on_complete(request: MetadataRequest) -> None:
            response = request.complete(server.name, self.engine.now)
            if self.config.latency_metric == "wait":
                latency = max(response - service_time, 0.0)
            else:
                latency = response
            if self.router.observes:
                # Latency-learning routers get the same response-time
                # signal the delegate tuner sees — never the true speed.
                self.router.observe(server.name, response)
            self.collector.record(server.name, self.engine.now, latency)
            self.completed[server.name] = self.completed.get(server.name, 0) + 1
            sink = self.telemetry
            if sink.enabled:
                sink.emit(
                    RequestCompleted(
                        time=self.engine.now, server=server.name, latency=latency
                    )
                )

        return _on_complete

    # ------------------------------------------------------------------
    # Tuning rounds (TuningHost protocol, driven by self.loop)
    # ------------------------------------------------------------------
    def build_tuning_context(
        self,
        now: float,
        interval: float,
        previous_reports: Sequence[ServerReport] | None,
    ) -> TuningContext:
        """This round's context: live servers, window reports, oracle."""
        live = self.live_servers
        return TuningContext(
            time=now,
            filesets=list(self.trace.fileset_names),
            servers=live,
            assignment=self.planned_assignment(),
            reports=self.collector.reports(live, now - interval, now),
            previous_reports=previous_reports,
            # Nominal spec speeds, deliberately NOT effective speeds: a
            # gray failure is invisible to the policies — speed-aware
            # ones (prescient, two-choice) keep planning with the
            # registered capacity, and only observed latency can betray
            # a limping server.
            server_speeds={n: self.servers[n].base_speed for n in live},
            oracle_demand=self.trace.demand_by_fileset(
                now, now + (self.config.oracle_horizon or interval)
            ),
            rng=self._policy_rng,
        )

    def decide(
        self, context: TuningContext
    ) -> tuple[dict[str, str] | None, TuningDecision | None]:
        """Ask the placement policy for a new (validated) assignment."""
        new_assignment = self.policy.update(context)
        if new_assignment is not None:
            validate_assignment(
                new_assignment, self.trace.fileset_names, list(context.servers)
            )
        return new_assignment, None

    @checks_invariants
    def realize(self, old: Mapping[str, str], new: Mapping[str, str]) -> None:
        """Turn an assignment change into shared-disk moves."""
        diff = diff_assignment(old, new)
        self.ledger.record(diff)
        sink = self.telemetry
        for move in diff.moves:
            state = self.filesets[move.fileset]
            if sink.enabled:
                sink.emit(
                    MoveStarted(
                        time=self.engine.now,
                        fileset=move.fileset,
                        source=move.source,
                        destination=move.destination,
                    )
                )
            if state.moving:
                state.redirect_move(move.destination)
            else:
                self.mover.start_move(state, move.destination, self._on_move_done)
        # Replica slots follow the new primary plan instantly: shared disk
        # means a replica-slot change is a routing-table update, not a move.
        self._refresh_replicas()

    #: Backwards-compatible alias (pre-runtime name, used by older drivers).
    _realize = realize

    def _on_move_done(
        self, state: FileSetState, drained: list[MetadataRequest]
    ) -> None:
        sink = self.telemetry
        if sink.enabled:
            sink.emit(
                MoveFinished(
                    time=self.engine.now,
                    fileset=state.name,
                    destination=state.owner,
                )
            )
        owner = self.servers.get(state.owner)
        if owner is None or not owner.alive:
            # Destination died while the move was in flight; the fault
            # handler has already retargeted other file sets — re-route this
            # one to wherever the policy now wants it.
            target = self.planned_assignment()[state.name]
            if target != state.owner and not state.moving:
                state.buffer.extend(drained)
                if sink.enabled:
                    sink.emit(
                        MoveStarted(
                            time=self.engine.now,
                            fileset=state.name,
                            source=state.owner,
                            destination=target,
                        )
                    )
                self.mover.start_move(state, target, self._on_move_done)
                return
        for request in sorted(drained, key=lambda r: (r.arrival, r.rid)):
            self._route(request)

    # ------------------------------------------------------------------
    # Faults and membership (MembershipHost protocol, driven by director)
    # ------------------------------------------------------------------
    @checks_invariants
    def _on_fault(self, event: FaultEvent) -> None:
        self.director.apply(event)

    def crash_server(self, server: str, now: Seconds) -> list[MetadataRequest]:
        """Hard-kill ``server``; queued work is orphaned for re-dispatch."""
        orphans = self.servers[server].fail()
        self.retries += len(orphans)
        return orphans

    def drain_server(self, server: str, now: Seconds) -> None:
        """Graceful: stop routing new work there (membership change moves
        its file sets away); the queue drains naturally."""
        self.servers[server].drain()

    def restart_server(self, server: str, now: Seconds) -> None:
        """A failed/drained server rejoins with an empty, cold facility."""
        self.servers[server].recover()

    @checks_invariants
    def install_server(self, server: str, speed: float, now: Seconds) -> None:
        """Register a newly commissioned server (membership change follows)."""
        spec = ServerSpec(name=server, speed=speed)
        self.servers[spec.name] = MetadataServer(self.engine, spec)
        self.collector.ensure_server(spec.name)
        self.completed.setdefault(spec.name, 0)

    def set_speed(self, server: str, factor: float, now: Seconds) -> None:
        """Gray failure: ``server`` serves new work at ``factor`` of its
        spec speed (1.0 restores it).  No routing state changes — the
        limp is observable only through rising latencies."""
        self.servers[server].set_degradation(factor)

    def delegate_failover(self, now: Seconds) -> None:
        """The tuning delegate fails over: history dies with it (the
        queueing model elects no concrete node, so no server crashes)."""
        self.loop.reset_history()
        fail_delegate = getattr(self.policy, "fail_delegate", None)
        if fail_delegate is not None:
            fail_delegate()
        return None

    def membership_assignment(self) -> tuple[dict[str, str], dict[str, str]]:
        """(old, new) assignments after the server set changed."""
        live = self.live_servers
        old = self.planned_assignment()
        new = self.policy.on_membership_change(
            list(self.trace.fileset_names), live, old
        )
        validate_assignment(new, self.trace.fileset_names, live)
        return old, new

    def reset_round_history(self) -> None:
        """Latency history straddles the change; the next round is fresh."""
        self.loop.reset_history()

    def realize_membership(
        self, old: dict[str, str], new: dict[str, str], now: Seconds
    ) -> None:
        """Membership-triggered moves realize exactly like tuning moves."""
        self.realize(old, new)

    def reinject(self, orphans: list[MetadataRequest], now: Seconds) -> None:
        """Re-dispatch crash orphans (after re-placement, so they follow
        their file sets to the new owners)."""
        for request in orphans:
            self._route(request)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def _result(self) -> RunResult:
        duration = self.trace.duration
        series, mean_latency, total = summarize_collector(
            self.collector, duration, self.config.sample_window, self.completed
        )
        return RunResult(
            policy_name=self.policy.name,
            duration=duration,
            series=series,
            ledger=self.ledger,
            completed=dict(self.completed),
            utilization={
                name: server.facility.monitor.utilization(self.engine.now)
                for name, server in self.servers.items()
            },
            mean_latency=mean_latency,
            total_requests=total,
            moves_started=self.mover.moves_started,
            moves_completed=self.mover.moves_completed,
            retries=self.retries,
            final_assignment=self.planned_assignment(),
            tuning_rounds=self.loop.rounds,
            collector=self.collector,
        )
