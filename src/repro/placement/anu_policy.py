"""ANU randomization wrapped as a placement policy.

This adapter connects the pure core (:class:`repro.core.anu.ANUPlacement`
plus a tuner) to the policy protocol the cluster simulation drives.  Two
tuner flavours are supported:

- :class:`ANUPolicy` — the paper's algorithm: a central elected delegate
  (:class:`repro.core.tuning.DelegateTuner`) rescales mapped regions from
  latency reports each interval;
- :class:`DecentralizedANUPolicy` — the §5 future-work variant using
  pair-wise exchanges (:class:`repro.core.decentralized.PairwiseTuner`).

The policy models delegate failure: if ``delegate_failed`` is set for an
interval, the previous reports are discarded (the replacement delegate is
stateless), which disables the divergent gate for that round exactly as the
paper describes.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.anu import ANUPlacement
from ..core.decentralized import PairwiseConfig, PairwiseTuner
from ..core.hashing import HashFamily
from ..core.tuning import DelegateTuner, ServerReport, TuningConfig
from .base import PlacementPolicy, TuningContext


class ANUPolicy(PlacementPolicy):
    """Adaptive non-uniform randomization with a central delegate."""

    name = "anu"

    def __init__(
        self,
        config: TuningConfig | None = None,
        hash_family: HashFamily | None = None,
    ) -> None:
        self.tuner = DelegateTuner(config)
        self._hash_family = hash_family
        self.placement: ANUPlacement | None = None
        self._previous_reports: Sequence[ServerReport] | None = None
        self.delegate_failed = False
        self.decisions: list[float] = []  # average latency per round, for tests
        #: (time, server -> share fraction) after each tuning round —
        #: the region-evolution record behind Figures 3-5's dynamics.
        self.share_history: list[tuple[float, dict[str, float]]] = []

    # ------------------------------------------------------------------
    def initial_assignment(
        self, filesets: Sequence[str], servers: Sequence[str]
    ) -> dict[str, str]:
        # "ANU randomization has no a-priori knowledge and therefore assumes
        # initially that all file sets and all servers are uniform."
        self.placement = ANUPlacement(servers, hash_family=self._hash_family)
        self._previous_reports = None
        return self.placement.assignment(filesets)

    def update(self, context: TuningContext) -> dict[str, str] | None:
        placement = self._require_placement()
        previous = None if self.delegate_failed else self._previous_reports
        self.delegate_failed = False
        decision = self.tuner.compute(
            placement.shares(), context.reports, previous
        )
        self.decisions.append(decision.average)
        self._previous_reports = list(context.reports)
        if not decision.tuned:
            return None
        placement.set_shares(decision.new_shares)
        placement.check_invariants()
        self.share_history.append((
            context.time,
            {s: placement.interval.share_fraction(s) for s in placement.servers},
        ))
        return placement.assignment(context.filesets)

    def on_membership_change(
        self,
        filesets: Sequence[str],
        servers: Sequence[str],
        assignment: Mapping[str, str],
    ) -> dict[str, str]:
        placement = self._require_placement()
        current = set(placement.servers)
        target = set(servers)
        for name in sorted(current - target):
            placement.remove_server(name)
        for name in sorted(target - current):
            placement.add_server(name)
        placement.check_invariants()
        # A membership change invalidates latency history: the region scales
        # changed for a non-workload reason.
        self._previous_reports = None
        return placement.assignment(filesets)

    # ------------------------------------------------------------------
    def fail_delegate(self) -> None:
        """Simulate the delegate crashing before the next tuning round."""
        self.delegate_failed = True

    def _require_placement(self) -> ANUPlacement:
        if self.placement is None:
            raise RuntimeError("policy used before initial_assignment()")
        return self.placement


class DecentralizedANUPolicy(PlacementPolicy):
    """ANU with pair-wise peer-to-peer tuning instead of a delegate."""

    name = "anu-decentralized"

    def __init__(
        self,
        config: PairwiseConfig | None = None,
        hash_family: HashFamily | None = None,
        rounds_per_interval: int = 1,
    ) -> None:
        if rounds_per_interval < 1:
            raise ValueError(
                f"rounds_per_interval must be >= 1, got {rounds_per_interval!r}"
            )
        self.tuner = PairwiseTuner(config)
        self._hash_family = hash_family
        self.rounds_per_interval = rounds_per_interval
        self.placement: ANUPlacement | None = None
        self.exchange_log: list[int] = []

    def initial_assignment(
        self, filesets: Sequence[str], servers: Sequence[str]
    ) -> dict[str, str]:
        self.placement = ANUPlacement(servers, hash_family=self._hash_family)
        return self.placement.assignment(filesets)

    def update(self, context: TuningContext) -> dict[str, str] | None:
        placement = self.placement
        if placement is None:
            raise RuntimeError("policy used before initial_assignment()")
        shares: dict[str, float] = {
            k: float(v) for k, v in placement.shares().items()
        }
        exchanged = 0
        for _ in range(self.rounds_per_interval):
            shares, exchanges = self.tuner.compute(
                shares, context.reports, context.rng
            )
            exchanged += len(exchanges)
        self.exchange_log.append(exchanged)
        if exchanged == 0:
            return None
        placement.set_shares(shares)
        placement.check_invariants()
        return placement.assignment(context.filesets)

    def on_membership_change(
        self,
        filesets: Sequence[str],
        servers: Sequence[str],
        assignment: Mapping[str, str],
    ) -> dict[str, str]:
        placement = self.placement
        if placement is None:
            raise RuntimeError("policy used before initial_assignment()")
        current = set(placement.servers)
        target = set(servers)
        for name in sorted(current - target):
            placement.remove_server(name)
        for name in sorted(target - current):
            placement.add_server(name)
        return placement.assignment(filesets)
