"""Simple randomization: the paper's first static baseline.

"Simple randomization ... assigns each file set to a randomly-chosen
server" (§7).  The choice is by deterministic hash of the file-set name so
every node computes the same placement without coordination — this is the
scheme peer-to-peer systems rely on, and the paper's point is that it
cannot cope with server or workload heterogeneity because the expected
number of file sets per server is uniform regardless of server speed.
"""

from __future__ import annotations

from typing import Sequence

from ..core.hashing import hash_to_choice
from .base import PlacementPolicy


class SimpleRandomPolicy(PlacementPolicy):
    """Static uniform-random placement by hashing file-set names."""

    name = "simple-random"

    def __init__(self, namespace: str = "simple-random") -> None:
        self.namespace = namespace

    def initial_assignment(
        self, filesets: Sequence[str], servers: Sequence[str]
    ) -> dict[str, str]:
        ordered = sorted(servers)
        if not ordered:
            raise ValueError("no servers")
        return {
            name: ordered[hash_to_choice(name, 0, len(ordered), self.namespace)]
            for name in filesets
        }
