"""Replicated ownership: the assignment-plane half of the two-plane split.

The paper's model (and every policy in this package) assigns each file
set to exactly one owner.  The JSQ(d)-over-replicas competition from the
Mukhopadhyay & Mazumdar line of work instead gives each file set ``r``
owners and routes every request to the least-loaded replica.  This module
generalizes any single-owner policy to that model without touching the
policy itself:

- the policy keeps producing its classic primary assignment (slot 0 of
  every owner set), so tuning, movement cost, and the mover are exactly
  the single-owner machinery;
- replica slots 1..r-1 are *derived*: distinct-hash draws over the other
  live servers (:func:`derive_owner_sets`), or — when the policy exposes
  an :class:`~repro.core.anu.ANUPlacement` — the probe-native
  :meth:`~repro.core.anu.ANUPlacement.locate_owner_set` walk, so ANU's
  replicas inherit its capacity-weighted interval;
- in a shared-disk system a replica owner serves reads of the same
  on-disk image, so gaining or losing a *replica* slot moves no data —
  only primary (slot 0) moves pay the flush/initialize cost.  The
  harnesses realize slot-0 moves through the mover as before and treat
  replica-slot changes as instant routing-table updates.

``r = 1`` reduces every function here to the identity on the primary
assignment, which is how the golden-replay guard proves the refactor
changed nothing for classic runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from ..core.hashing import hash_to_distinct_choices
from .base import OwnerSet, PlacementPolicy, TuningContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.anu import ANUPlacement

__all__ = ["ReplicatedPolicy", "derive_owner_set", "derive_owner_sets"]

#: Hash namespace for derived replica slots — disjoint from every probe
#: and orphan namespace so replica draws never correlate with placement.
REPLICA_NAMESPACE = "replica"


def derive_owner_sets(
    primary: Mapping[str, str],
    servers: Sequence[str],
    replication: int,
    placement: "ANUPlacement | None" = None,
) -> dict[str, OwnerSet]:
    """Expand a primary assignment into owner sets of size ``replication``.

    Slot 0 is always ``primary[name]`` — the assignment plane the policy
    owns.  Replica slots come from the probe-native ANU walk when a
    ``placement`` is given (and it still agrees on the primary), else
    from distinct hashing over the other live servers, so the expansion
    is a pure function of ``(primary, servers)`` and every node computes
    the same owner sets.  Fleets smaller than ``replication`` yield
    correspondingly shorter tuples.
    """
    if replication < 1:
        raise ValueError(f"replication must be >= 1, got {replication!r}")
    if replication == 1:
        return {name: (owner,) for name, owner in primary.items()}
    ordered = sorted(set(servers))
    return {
        name: derive_owner_set(
            name, primary[name], ordered, replication, placement=placement
        )
        for name in sorted(primary)
    }


def derive_owner_set(
    name: str,
    owner: str,
    ordered_servers: Sequence[str],
    replication: int,
    placement: "ANUPlacement | None" = None,
) -> OwnerSet:
    """One file set's owner set: ``owner`` at slot 0, derived replicas after.

    ``ordered_servers`` must be the sorted live-server list (callers that
    expand whole assignments sort once via :func:`derive_owner_sets`).
    """
    if replication < 1:
        raise ValueError(f"replication must be >= 1, got {replication!r}")
    if replication == 1:
        return (owner,)
    if placement is not None:
        probed = placement.locate_owner_set(name, replication)
        if probed and probed[0] == owner:
            return probed
    others = [s for s in ordered_servers if s != owner]
    picks = hash_to_distinct_choices(
        name, replication - 1, len(others), namespace=REPLICA_NAMESPACE
    )
    return (owner, *(others[i] for i in picks))


class ReplicatedPolicy(PlacementPolicy):
    """Wrap a single-owner policy with derived ``r``-way owner sets.

    The wrapper is transparent on the classic protocol — initial
    assignment, tuning updates, and membership re-placement all pass
    straight through to the base policy — and adds :meth:`owner_sets`,
    the assignment-plane expansion the harnesses call when replication
    is on.  Policy name becomes ``"<base>+r<r>"`` so sweep rows and
    figures distinguish replication levels.
    """

    def __init__(self, base: PlacementPolicy, replication: int) -> None:
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication!r}")
        self.base = base
        self.replication = replication
        self.name = f"{base.name}+r{replication}"

    @property
    def placement(self) -> "ANUPlacement | None":
        """The base policy's ANU placement, when it exposes one."""
        return getattr(self.base, "placement", None)

    def initial_assignment(
        self, filesets: Sequence[str], servers: Sequence[str]
    ) -> dict[str, str]:
        """The base policy's primary assignment (slot 0 of every set)."""
        return self.base.initial_assignment(filesets, servers)

    def update(self, context: TuningContext) -> dict[str, str] | None:
        """Delegate the tuning decision to the base policy."""
        return self.base.update(context)

    def on_membership_change(
        self,
        filesets: Sequence[str],
        servers: Sequence[str],
        assignment: Mapping[str, str],
    ) -> dict[str, str]:
        """Delegate orphan re-placement to the base policy."""
        return self.base.on_membership_change(filesets, servers, assignment)

    def fail_delegate(self) -> None:
        """Forward delegate-failover resets to the base policy."""
        fail = getattr(self.base, "fail_delegate", None)
        if fail is not None:
            fail()

    def owner_sets(
        self, primary: Mapping[str, str], servers: Sequence[str]
    ) -> dict[str, OwnerSet]:
        """Expand ``primary`` to this policy's ``r``-way owner sets."""
        return derive_owner_sets(
            primary, servers, self.replication, placement=self.placement
        )
