"""Placement policies: ANU randomization and the paper's baselines.

- :class:`~repro.placement.anu_policy.ANUPolicy` — the paper's algorithm;
- :class:`~repro.placement.anu_policy.DecentralizedANUPolicy` — §5 variant;
- :class:`~repro.placement.simple_random.SimpleRandomPolicy` — static random;
- :class:`~repro.placement.round_robin.RoundRobinPolicy` — static equal-count;
- :class:`~repro.placement.prescient.PrescientPolicy` — perfect-knowledge LPT;
- :class:`~repro.placement.consistent_hash.ConsistentHashPolicy` — related-work
  baseline;
- :class:`~repro.placement.replicated.ReplicatedPolicy` — r-way owner-set
  wrapper over any of the above (the assignment plane of the two-plane
  placement split; see :mod:`repro.runtime.routing` for the other plane).
"""

from .anu_policy import ANUPolicy, DecentralizedANUPolicy
from .base import (
    OwnerSet,
    PlacementPolicy,
    TuningContext,
    normalize_owner_set,
    normalize_owner_sets,
    validate_assignment,
    validate_owner_sets,
)
from .consistent_hash import ConsistentHashPolicy, ConsistentHashRing
from .prescient import PrescientPolicy, lpt_assign, predicted_makespan
from .replicated import ReplicatedPolicy, derive_owner_set, derive_owner_sets
from .round_robin import RoundRobinPolicy
from .simple_random import SimpleRandomPolicy
from .two_choice import TwoChoicePolicy

__all__ = [
    "OwnerSet",
    "PlacementPolicy",
    "TuningContext",
    "normalize_owner_set",
    "normalize_owner_sets",
    "validate_assignment",
    "validate_owner_sets",
    "ReplicatedPolicy",
    "derive_owner_set",
    "derive_owner_sets",
    "ANUPolicy",
    "DecentralizedANUPolicy",
    "SimpleRandomPolicy",
    "TwoChoicePolicy",
    "RoundRobinPolicy",
    "PrescientPolicy",
    "lpt_assign",
    "predicted_makespan",
    "ConsistentHashPolicy",
    "ConsistentHashRing",
]
