"""Placement policies: ANU randomization and the paper's baselines.

- :class:`~repro.placement.anu_policy.ANUPolicy` — the paper's algorithm;
- :class:`~repro.placement.anu_policy.DecentralizedANUPolicy` — §5 variant;
- :class:`~repro.placement.simple_random.SimpleRandomPolicy` — static random;
- :class:`~repro.placement.round_robin.RoundRobinPolicy` — static equal-count;
- :class:`~repro.placement.prescient.PrescientPolicy` — perfect-knowledge LPT;
- :class:`~repro.placement.consistent_hash.ConsistentHashPolicy` — related-work
  baseline.
"""

from .anu_policy import ANUPolicy, DecentralizedANUPolicy
from .base import PlacementPolicy, TuningContext, validate_assignment
from .consistent_hash import ConsistentHashPolicy, ConsistentHashRing
from .prescient import PrescientPolicy, lpt_assign, predicted_makespan
from .round_robin import RoundRobinPolicy
from .simple_random import SimpleRandomPolicy
from .two_choice import TwoChoicePolicy

__all__ = [
    "PlacementPolicy",
    "TuningContext",
    "validate_assignment",
    "ANUPolicy",
    "DecentralizedANUPolicy",
    "SimpleRandomPolicy",
    "TwoChoicePolicy",
    "RoundRobinPolicy",
    "PrescientPolicy",
    "lpt_assign",
    "predicted_makespan",
    "ConsistentHashPolicy",
    "ConsistentHashRing",
]
