"""Two-choices randomized placement: the §3 Mitzenmacher baseline.

The paper's related work cites "the power of two choices in randomized
load balancing" (Mitzenmacher): assign each ball to the less-loaded of two
random bins, collapsing the max load from ``Θ(log n / log log n)`` to
``Θ(log log n)``.  As a placement policy it needs a *placement-time* load
table (unlike pure hashing), but remains static afterwards and — like all
load-oblivious schemes — cannot react to server speed or per-file-set
workload heterogeneity.  It slots between simple randomization and ANU:
better initial spread, same inability to adapt.

Two flavours:

- count-balanced (classic): pick the candidate with fewer file sets;
- weight-aware: pick by (count / speed) when speeds are granted, the
  static-knowledge analogue of capacity-weighted placement.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.hashing import hash_to_distinct_choices
from .base import PlacementPolicy


class TwoChoicePolicy(PlacementPolicy):
    """d=2 balanced-allocation placement (static after placement)."""

    name = "two-choice"

    def __init__(self, namespace: str = "two-choice") -> None:
        self.namespace = namespace
        self._weights: Mapping[str, float] | None = None

    def grant_weights(self, weights: Mapping[str, float]) -> None:
        """Optional static capacity weights (e.g. server speeds)."""
        if any(v <= 0 for v in weights.values()):
            raise ValueError("weights must be positive")
        self._weights = dict(weights)

    def _candidates(self, name: str, ordered: Sequence[str]) -> tuple[str, str]:
        """Two *distinct* candidate servers for ``name``.

        ``ordered`` must already be sorted (callers hoist the sort out of
        their per-file-set loops).  Rounds 0 and 1 of
        :func:`~repro.core.hashing.hash_to_choice` are independent draws,
        so they can land on the same server — which silently collapses
        d=2 to d=1 (single-choice) for the affected names.  Sampling
        without replacement keeps both choices real; a one-server fleet
        degenerately returns it twice.
        """
        picks = hash_to_distinct_choices(name, 2, len(ordered), self.namespace)
        if len(picks) == 1:
            return ordered[picks[0]], ordered[picks[0]]
        return ordered[picks[0]], ordered[picks[1]]

    def initial_assignment(
        self, filesets: Sequence[str], servers: Sequence[str]
    ) -> dict[str, str]:
        if not servers:
            raise ValueError("no servers")
        load: dict[str, float] = {s: 0.0 for s in servers}
        weights = self._weights or {}
        assignment: dict[str, str] = {}
        ordered = sorted(servers)
        for name in sorted(filesets):
            a, b = self._candidates(name, ordered)
            wa = weights.get(a, 1.0)
            wb = weights.get(b, 1.0)
            # Less (capacity-normalized) load wins; ties to the first.
            chosen = a if load[a] / wa <= load[b] / wb else b
            assignment[name] = chosen
            load[chosen] += 1.0
        return assignment

    def on_membership_change(
        self,
        filesets: Sequence[str],
        servers: Sequence[str],
        assignment: Mapping[str, str],
    ) -> dict[str, str]:
        """Re-place orphans only, by two-choices over the survivors with
        the surviving loads as the starting point."""
        live = set(servers)
        load: dict[str, float] = {s: 0.0 for s in servers}
        weights = self._weights or {}
        new = {}
        orphans = []
        for name in sorted(filesets):
            owner = assignment.get(name)
            if owner in live:
                new[name] = owner
                load[owner] += 1.0
            else:
                orphans.append(name)
        # Hoisted: sorting the survivors per orphan made this loop
        # O(k·n log n); the live set is fixed for the whole change.
        survivors = sorted(live)
        for name in orphans:
            a, b = self._candidates(name, survivors)
            wa = weights.get(a, 1.0)
            wb = weights.get(b, 1.0)
            chosen = a if load[a] / wa <= load[b] / wb else b
            new[name] = chosen
            load[chosen] += 1.0
        return new
