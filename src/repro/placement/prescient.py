"""Dynamic prescient placement: the paper's upper-bound comparator.

"The dynamic prescient system ... knows the processing capabilities of each
server and the workload characteristics of each file set ... it identifies
the permutation of file sets onto servers that minimizes load skew" (§7).
"The adaptive prescient algorithm looks forward into the trace, identifying
the best load balance before the workload occurs."

We realize the oracle as the context's ``oracle_demand`` — the true demand
each file set will generate in the *next* tuning interval — combined with
the true ``server_speeds``.  Minimizing makespan with indivisible jobs is
NP-hard, so (like every practical bin-packing comparator) we use LPT
(longest-processing-time-first) greedy, which is a 4/3-approximation and, at
the paper's file-set/server ratios, indistinguishable from optimal.

To mirror the paper's observation that "the prescient policy retains the
same configuration for the duration of the experiment" when workload is
stable, the policy keeps the current assignment unless the new one improves
predicted makespan by more than ``hysteresis`` (relative).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .base import PlacementPolicy, TuningContext


def lpt_assign(
    demand: Mapping[str, float], speeds: Mapping[str, float]
) -> dict[str, str]:
    """LPT greedy min-makespan assignment of indivisible demands to servers.

    Uniform-machines (Q||Cmax) greedy: jobs in decreasing demand, each
    placed on the server whose completion time after receiving the job —
    ``(load + demand) / speed`` — is smallest.  (Popping the least-loaded
    server from a heap, the identical-machines shortcut, is wrong here: on
    an empty heterogeneous cluster it hands the largest job to an arbitrary
    server instead of the fastest.)  Ties break toward the faster server,
    then by name, so the result is deterministic.
    """
    if not speeds:
        raise ValueError("no servers")
    if any(v <= 0 for v in speeds.values()):
        raise ValueError(f"non-positive speed in {speeds!r}")
    servers = sorted(speeds, key=lambda s: (-speeds[s], s))
    loads: dict[str, float] = {s: 0.0 for s in speeds}
    assignment: dict[str, str] = {}
    for name in sorted(demand, key=lambda k: (-demand[k], k)):
        d = demand[name]
        best = min(servers, key=lambda s: (loads[s] + d) / speeds[s])
        assignment[name] = best
        loads[best] += d
    return assignment


def predicted_makespan(
    assignment: Mapping[str, str],
    demand: Mapping[str, float],
    speeds: Mapping[str, float],
) -> float:
    """Max over servers of (assigned demand / speed)."""
    loads: dict[str, float] = {s: 0.0 for s in speeds}
    for name, server in assignment.items():
        if server in loads:
            loads[server] += demand.get(name, 0.0)
    return max((loads[s] / speeds[s] for s in speeds), default=0.0)


class PrescientPolicy(PlacementPolicy):
    """LPT bin-packing with a perfect lookahead oracle."""

    name = "prescient"

    def __init__(self, hysteresis: float = 0.05) -> None:
        if hysteresis < 0:
            raise ValueError(f"hysteresis must be >= 0, got {hysteresis!r}")
        self.hysteresis = hysteresis
        self._speeds: Mapping[str, float] | None = None
        self._initial_demand: Mapping[str, float] | None = None

    def grant_oracle(
        self,
        speeds: Mapping[str, float],
        initial_demand: Mapping[str, float] | None = None,
    ) -> None:
        """Give the policy its perfect knowledge.

        ``initial_demand`` lets the policy "begin in a load-balanced state
        at time 0" as the paper's prescient comparator does.
        """
        self._speeds = dict(speeds)
        self._initial_demand = dict(initial_demand) if initial_demand else None

    # ------------------------------------------------------------------
    def initial_assignment(
        self, filesets: Sequence[str], servers: Sequence[str]
    ) -> dict[str, str]:
        speeds = self._live_speeds(servers)
        if self._initial_demand is not None:
            demand = {n: self._initial_demand.get(n, 0.0) for n in filesets}
        else:
            demand = {n: 1.0 for n in filesets}
        return lpt_assign(demand, speeds)

    def update(self, context: TuningContext) -> dict[str, str] | None:
        if context.oracle_demand is None:
            return None
        speeds = self._live_speeds(context.servers, context.server_speeds)
        demand = {n: context.oracle_demand.get(n, 0.0) for n in context.filesets}
        candidate = lpt_assign(demand, speeds)
        current = predicted_makespan(context.assignment, demand, speeds)
        proposed = predicted_makespan(candidate, demand, speeds)
        # Keep the configuration unless the improvement beats hysteresis;
        # also recompute if any file set is currently on a dead server.
        orphaned = any(s not in speeds for s in context.assignment.values())
        if not orphaned and proposed >= current * (1.0 - self.hysteresis):
            return None
        return candidate

    def on_membership_change(
        self,
        filesets: Sequence[str],
        servers: Sequence[str],
        assignment: Mapping[str, str],
    ) -> dict[str, str]:
        # With perfect knowledge, re-pack from scratch over the survivors.
        speeds = self._live_speeds(servers)
        if self._initial_demand is not None:
            demand = {n: self._initial_demand.get(n, 1.0) for n in filesets}
        else:
            demand = {n: 1.0 for n in filesets}
        return lpt_assign(demand, speeds)

    # ------------------------------------------------------------------
    def _live_speeds(
        self,
        servers: Sequence[str],
        speeds: Mapping[str, float] | None = None,
    ) -> dict[str, float]:
        src = speeds if speeds is not None else self._speeds
        if src is None:
            raise RuntimeError(
                "PrescientPolicy used before grant_oracle(); it needs perfect "
                "knowledge of server speeds"
            )
        return {s: src[s] for s in servers}
