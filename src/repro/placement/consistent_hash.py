"""Consistent hashing with virtual nodes: a related-work baseline.

The paper's §3/§5 relate ANU randomization to the distributed directories of
peer-to-peer systems (Chord, Pastry), which place objects with consistent
hashing.  Like ANU, consistent hashing gives deterministic hash-only
addressing and minimal movement on membership change; unlike ANU it is
*not tunable* — virtual-node counts can encode static capacity weights but
nothing reacts to observed load, so workload heterogeneity defeats it.

Including it lets the benchmarks separate the two claims the paper makes:
(1) hashing-style addressing scales (consistent hashing also has this), and
(2) adaptivity is required for heterogeneity (consistent hashing lacks it).
"""

from __future__ import annotations

import bisect
from typing import Mapping, Sequence

from ..core.hashing import hash_to_unit
from .base import PlacementPolicy


class ConsistentHashRing:
    """A hash ring with ``vnodes`` virtual nodes per unit of server weight."""

    def __init__(
        self,
        servers: Sequence[str],
        vnodes: int = 64,
        weights: Mapping[str, float] | None = None,
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes!r}")
        self.vnodes = vnodes
        self._weights = dict(weights) if weights else {}
        self._points: list[float] = []
        self._owners: list[str] = []
        for server in sorted(servers):
            self._insert(server)

    def _vnode_count(self, server: str) -> int:
        weight = self._weights.get(server, 1.0)
        if weight <= 0:
            raise ValueError(f"non-positive weight for {server!r}")
        return max(1, round(self.vnodes * weight))

    def _insert(self, server: str) -> None:
        for v in range(self._vnode_count(server)):
            point = hash_to_unit(f"{server}#{v}", 0, namespace="chash-ring")
            idx = bisect.bisect_left(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, server)

    # ------------------------------------------------------------------
    @property
    def servers(self) -> list[str]:
        return sorted(set(self._owners))

    def add_server(self, server: str, weight: float | None = None) -> None:
        """Insert a server's virtual nodes into the ring."""
        if server in self._owners:
            raise ValueError(f"server {server!r} already on ring")
        if weight is not None:
            self._weights[server] = weight
        self._insert(server)

    def remove_server(self, server: str) -> None:
        """Remove all of a server's virtual nodes."""
        if server not in self._owners:
            raise ValueError(f"unknown server {server!r}")
        keep = [(p, o) for p, o in zip(self._points, self._owners) if o != server]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]
        if not self._points:
            raise ValueError("cannot remove the last server")

    def locate(self, name: str) -> str:
        """Owner of ``name``: the first vnode clockwise of its hash point."""
        if not self._points:
            raise ValueError("empty ring")
        point = hash_to_unit(name, 0, namespace="chash-key")
        idx = bisect.bisect_right(self._points, point)
        if idx == len(self._points):
            idx = 0  # wrap around
        return self._owners[idx]


class ConsistentHashPolicy(PlacementPolicy):
    """Placement by consistent hashing (static; minimal-movement membership)."""

    name = "consistent-hash"

    def __init__(
        self, vnodes: int = 64, weights: Mapping[str, float] | None = None
    ) -> None:
        self.vnodes = vnodes
        self.weights = dict(weights) if weights else None
        self.ring: ConsistentHashRing | None = None

    def initial_assignment(
        self, filesets: Sequence[str], servers: Sequence[str]
    ) -> dict[str, str]:
        self.ring = ConsistentHashRing(servers, self.vnodes, self.weights)
        return {name: self.ring.locate(name) for name in filesets}

    def on_membership_change(
        self,
        filesets: Sequence[str],
        servers: Sequence[str],
        assignment: Mapping[str, str],
    ) -> dict[str, str]:
        if self.ring is None:
            raise RuntimeError("policy used before initial_assignment()")
        current = set(self.ring.servers)
        target = set(servers)
        for name in sorted(current - target):
            self.ring.remove_server(name)
        for name in sorted(target - current):
            self.ring.add_server(name)
        return {name: self.ring.locate(name) for name in filesets}
