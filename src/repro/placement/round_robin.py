"""Round-robin placement: the paper's second static baseline.

"Round-robin placement ... assigns the same number of file sets to each
server" (§7).  Counts are equal to within one, but the policy is blind to
both server speed and per-file-set workload, so heterogeneity defeats it
exactly as simple randomization is defeated — the comparison isolates the
effect of hashing variance (round-robin has none) from the effect of
heterogeneity (which neither handles).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .base import PlacementPolicy


class RoundRobinPolicy(PlacementPolicy):
    """Static equal-count placement, file sets dealt in sorted order."""

    name = "round-robin"

    def initial_assignment(
        self, filesets: Sequence[str], servers: Sequence[str]
    ) -> dict[str, str]:
        ordered_servers = sorted(servers)
        if not ordered_servers:
            raise ValueError("no servers")
        return {
            name: ordered_servers[i % len(ordered_servers)]
            for i, name in enumerate(sorted(filesets))
        }

    def on_membership_change(
        self,
        filesets: Sequence[str],
        servers: Sequence[str],
        assignment: Mapping[str, str],
    ) -> dict[str, str]:
        # Equal counts are positional: a membership change re-deals the
        # whole table.  This is exactly the movement cost the paper holds
        # against table-based placement (§5) and what the movement
        # ablation measures.
        return self.initial_assignment(filesets, servers)
