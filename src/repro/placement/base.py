"""The placement-policy protocol shared by ANU and all baselines.

A policy owns the file-set → server assignment.  The cluster simulation
drives it through three entry points:

- :meth:`PlacementPolicy.initial_assignment` — called once at t=0;
- :meth:`PlacementPolicy.update` — called at every tuning interval with a
  :class:`TuningContext`; returning ``None`` means "no change" (static
  policies always return ``None``);
- :meth:`PlacementPolicy.on_membership_change` — called when servers fail,
  recover, or are (de)commissioned.

Policies must be deterministic given the context (any randomness must come
from ``context.rng``), so whole simulations replay exactly from a seed.
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.tuning import ServerReport
from ..sim.rng import StreamFactory


@dataclass
class TuningContext:
    """Everything a policy may consult when updating the assignment.

    Only the prescient policy is allowed to read ``server_speeds`` and
    ``oracle_demand`` — they represent the perfect knowledge the paper
    grants its upper-bound comparator.  Honest policies use only the
    latency ``reports``.
    """

    time: float
    filesets: Sequence[str]
    servers: Sequence[str]
    assignment: Mapping[str, str]
    reports: Sequence[ServerReport]
    previous_reports: Sequence[ServerReport] | None = None
    server_speeds: Mapping[str, float] | None = None
    oracle_demand: Mapping[str, float] | None = None
    #: Policy randomness MUST come from here so runs replay from a seed.
    #: Harnesses built on :mod:`repro.runtime` always pass an explicit
    #: stream derived from the run's seed; contexts built without one get
    #: a deprecated seed-0 fallback (see ``__post_init__``).
    rng: np.random.Generator | None = None
    #: Replicated-ownership view (assignment plane, r > 1): file set ->
    #: its full owner tuple, slot 0 being the primary in ``assignment``.
    #: ``None`` under classic single ownership — policies may ignore it.
    owner_sets: Mapping[str, "OwnerSet"] | None = None

    def __post_init__(self) -> None:
        if self.rng is None:
            # The old default_factory silently handed every context the
            # SAME seed-0 stream, so two simulations with different seeds
            # shared policy randomness — a determinism trap.  Keep the
            # fallback for hand-built contexts, but make it loud.
            warnings.warn(
                "TuningContext built without an explicit rng; falling back "
                "to the seed-0 'tuning-context' stream. Pass a stream "
                "derived from the run's seed (the repro.runtime harnesses "
                "do this automatically).",
                DeprecationWarning,
                stacklevel=3,
            )
            self.rng = StreamFactory(0).stream("tuning-context")


class PlacementPolicy(abc.ABC):
    """Abstract file-set placement policy."""

    #: Human-readable policy name (used in figures and reports).
    name: str = "abstract"

    @abc.abstractmethod
    def initial_assignment(
        self, filesets: Sequence[str], servers: Sequence[str]
    ) -> dict[str, str]:
        """Assignment at simulation start (no workload knowledge unless
        the policy is prescient)."""

    def update(self, context: TuningContext) -> dict[str, str] | None:
        """New assignment for this tuning interval, or ``None`` to keep the
        current one.  Static policies inherit this no-op."""
        return None

    def on_membership_change(
        self,
        filesets: Sequence[str],
        servers: Sequence[str],
        assignment: Mapping[str, str],
    ) -> dict[str, str]:
        """Re-place after a server set change.

        The default reassigns only *orphans* — file sets whose owner left —
        uniformly at random-by-hash over the survivors, leaving everything
        else in place.  Adaptive policies override this.
        """
        live = set(servers)
        new = dict(assignment)
        orphans = sorted(n for n, s in assignment.items() if s not in live)
        ordered = sorted(live)
        for i, nm in enumerate(orphans):
            new[nm] = ordered[hash_mod(nm, len(ordered))]
        for nm in filesets:
            if nm not in new:
                new[nm] = ordered[hash_mod(nm, len(ordered))]
        return new

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def hash_mod(name: str, n: int) -> int:
    """Deterministic (non-salted) index in [0, n) from a name."""
    from ..core.hashing import hash_to_choice

    return hash_to_choice(name, 0, n, namespace="policy-orphan")


def validate_assignment(
    assignment: Mapping[str, str],
    filesets: Sequence[str],
    servers: Sequence[str],
) -> None:
    """Raise ValueError unless every file set maps to a live server."""
    live = set(servers)
    missing = [n for n in filesets if n not in assignment]
    if missing:
        raise ValueError(f"unassigned file sets: {missing[:5]}...")
    bad = [n for n, s in assignment.items() if s not in live]
    if bad:
        raise ValueError(f"file sets assigned to dead servers: {bad[:5]}...")


#: The assignment-plane value under replicated ownership: the tuple of a
#: file set's ``r`` owners, slot 0 being the primary (the classic single
#: owner — r=1 is exactly the old ``dict[str, str]`` semantics).
OwnerSet = tuple[str, ...]


def normalize_owner_set(value: "str | OwnerSet") -> OwnerSet:
    """Coerce a single-owner ``str`` or owner tuple to a valid OwnerSet.

    Owner sets must be non-empty and duplicate-free — one server serving
    two replica slots of the same file set is a bookkeeping bug, not
    extra capacity.
    """
    owners = (value,) if isinstance(value, str) else tuple(value)
    if not owners:
        raise ValueError("an owner set needs at least one owner")
    if len(set(owners)) != len(owners):
        raise ValueError(f"duplicate owners in owner set {owners!r}")
    return owners


def normalize_owner_sets(
    mapping: Mapping[str, "str | OwnerSet"],
) -> dict[str, OwnerSet]:
    """Normalize every value of an assignment-or-owner-set mapping."""
    return {name: normalize_owner_set(value) for name, value in mapping.items()}


def validate_owner_sets(
    owner_sets: Mapping[str, "str | OwnerSet"],
    filesets: Sequence[str],
    servers: Sequence[str],
    replication: int | None = None,
) -> None:
    """Owner-set analogue of :func:`validate_assignment`.

    Every file set must carry a duplicate-free owner tuple of live
    servers; when ``replication`` is given, every tuple must have exactly
    that many slots (the fleet permitting — a tuple may be shorter only
    when fewer live servers exist than replicas requested).
    """
    live = set(servers)
    missing = [n for n in filesets if n not in owner_sets]
    if missing:
        raise ValueError(f"unassigned file sets: {missing[:5]}...")
    for name, value in owner_sets.items():
        owners = normalize_owner_set(value)
        dead = [s for s in owners if s not in live]
        if dead:
            raise ValueError(
                f"file set {name!r} has dead owner(s) {dead!r} in {owners!r}"
            )
        if replication is not None:
            expected = min(replication, len(live))
            if len(owners) != expected:
                raise ValueError(
                    f"file set {name!r} has {len(owners)} owner(s), "
                    f"expected {expected} (r={replication}, "
                    f"{len(live)} live)"
                )
