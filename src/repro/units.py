"""Static time/share unit markers, checked by ``repro-lint`` (RPL102).

The repository juggles two incompatible scalar units:

- **Seconds** — simulated wall-clock time (the engine clock, event delays,
  latencies, sample windows);
- **Ticks** — exact integer subdivisions of the ANU unit interval
  (``repro.core.interval.RESOLUTION`` ticks make up the whole interval).

Both are plain numbers at runtime, so nothing stops a share-tick count
from being scheduled as a delay or a latency from being added to a share.
These ``NewType`` aliases exist to make the unit part of a function's
signature; the whole-program rule RPL102 reads the annotations and flags
mixed-unit arithmetic, comparisons, arguments, and returns across
function boundaries.  At runtime they are identity functions — zero cost,
no behavior change.

Convention (see CONTRIBUTING): annotate parameters and returns that carry
a unit with ``Seconds``/``Ticks`` (bare, ``Optional``, or inside
``list``/``dict`` element positions).  Use ``Seconds(x)`` / ``Ticks(x)``
to assert the unit of a value whose provenance the checker cannot see
(e.g. numbers parsed from a trace file).
"""

from __future__ import annotations

from typing import NewType

#: Simulated wall-clock seconds (engine clock, delays, latencies).
Seconds = NewType("Seconds", float)

#: Exact integer ticks of the ANU unit interval (share sizes).
Ticks = NewType("Ticks", int)
