"""Analytic bounds and Monte-Carlo checks for the §4 balance claims."""

from .bounds import (
    BinsExperiment,
    anu_normalized_max_after_tuning,
    max_load_simple_randomization,
    normalized_max_load,
    simulate_simple_randomization,
)

__all__ = [
    "BinsExperiment",
    "anu_normalized_max_after_tuning",
    "max_load_simple_randomization",
    "normalized_max_load",
    "simulate_simple_randomization",
]
