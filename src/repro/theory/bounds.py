"""Balls-into-bins bounds behind the paper's §4 load-balance claims.

The paper states that for ``n`` servers and ``m`` file sets, ANU
randomization keeps each server's load at ``m/n + O(...)`` with high
probability — "as small as any known bound" — whereas simple randomization
is bounded by ``Θ(m/n · log n / log log n)`` in the heavily-loaded regime
(and ``Θ(log n / log log n)`` for ``m = n``).

This module provides the analytic expressions and Monte-Carlo machinery to
check them empirically (the ``bench_abl_bounds`` ablation): simple
randomization's normalized max load grows with ``n`` like the classic
bound, while ANU after tuning holds the max within a small constant of the
mean independent of ``n``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..sim.rng import StreamFactory


def max_load_simple_randomization(n_bins: int, n_balls: int) -> float:
    """Expected max load under uniform random placement (leading terms).

    For ``m >= n log n`` (heavily loaded): ``m/n + sqrt(2 (m/n) log n)``.
    For ``m ~ n``: ``log n / log log n`` scaling.  Both are classic results
    (Raab & Steger 1998); we return the heavily-loaded form when it
    applies, else the sparse form.
    """
    if n_bins < 2 or n_balls < 1:
        raise ValueError("need n_bins >= 2 and n_balls >= 1")
    mean = n_balls / n_bins
    log_n = math.log(n_bins)
    if n_balls >= n_bins * log_n:
        return mean + math.sqrt(2.0 * mean * log_n)
    loglog = math.log(max(log_n, math.e))
    return mean * (log_n / loglog)


def normalized_max_load(counts: np.ndarray) -> float:
    """max/mean of observed per-bin counts (1.0 = perfect balance)."""
    counts = np.asarray(counts, dtype=float)
    mean = counts.mean() if len(counts) else 0.0
    return float(counts.max() / mean) if mean > 0 else 1.0


@dataclass(frozen=True)
class BinsExperiment:
    """Monte-Carlo result for one (n_bins, n_balls) configuration."""

    n_bins: int
    n_balls: int
    trials: int
    mean_normalized_max: float
    predicted_normalized_max: float


def simulate_simple_randomization(
    n_bins: int, n_balls: int, trials: int, seed: int = 0
) -> BinsExperiment:
    """Monte-Carlo the normalized max load of uniform random placement."""
    rng = StreamFactory(seed).stream("theory.bins")
    maxes = np.empty(trials)
    for t in range(trials):
        counts = np.bincount(
            rng.integers(0, n_bins, size=n_balls), minlength=n_bins
        )
        maxes[t] = normalized_max_load(counts)
    predicted = max_load_simple_randomization(n_bins, n_balls) / (n_balls / n_bins)
    return BinsExperiment(
        n_bins=n_bins,
        n_balls=n_balls,
        trials=trials,
        mean_normalized_max=float(maxes.mean()),
        predicted_normalized_max=predicted,
    )


def anu_normalized_max_after_tuning(
    n_servers: int, n_filesets: int, rounds: int = 20, seed: int = 0
) -> float:
    """Normalized max file-set count under ANU after count-driven tuning.

    Uses file-set count as the latency proxy (uniform file sets, uniform
    servers): each round the delegate shrinks over-counted servers.  The
    result should approach a small constant independent of ``n_servers``,
    in contrast to simple randomization's growth with ``n``.
    """
    from ..core.anu import ANUPlacement
    from ..core.tuning import DelegateTuner, ServerReport, TuningConfig

    placement = ANUPlacement([f"s{i}" for i in range(n_servers)])
    names = [f"fs{i}-{seed}" for i in range(n_filesets)]
    tuner = DelegateTuner(
        TuningConfig(use_thresholding=True, threshold=0.05,
                     use_top_off=False, use_divergent=False, max_step=2.0)
    )
    for _ in range(rounds):
        assignment = placement.assignment(names)
        counts = {s: 0 for s in placement.servers}
        for server in assignment.values():
            counts[server] += 1
        reports = [
            ServerReport(s, float(counts[s]), counts[s]) for s in placement.servers
        ]
        decision = tuner.compute(placement.shares(), reports)
        if not decision.tuned:
            break
        placement.set_shares(decision.new_shares)
    assignment = placement.assignment(names)
    final = np.bincount(
        [sorted(placement.servers).index(s) for s in assignment.values()],
        minlength=n_servers,
    )
    return normalized_max_load(final)
