"""DFSTrace-like workload synthesizer.

The paper drives its trace experiments with the DFSTrace data set (Mummert
& Satyanarayanan, CMU), picking "a high-activity one hour interval": 21
file sets, 112,590 client requests, with "highly heterogeneous workload
characteristics; e.g. the most active file set has more than one hundred
times as many requests as many of the least active file sets", plus bursts
of load concentrated in few file sets.

The original traces are not redistributable here (see DESIGN.md §2), so
this module synthesizes a trace with exactly those published
characteristics:

- exactly ``n_requests`` requests over ``duration`` seconds;
- per-file-set totals follow a Zipf-like profile rescaled so the
  most-active/least-active ratio is at least ``activity_ratio``;
- arrivals are a piecewise-constant modulated Poisson process: the hour is
  split into epochs and each (file set, epoch) cell gets a lognormal
  intensity multiplier, producing the bursty, non-stationary behaviour the
  paper's Figures 6–7 react to (bursts "occur in few file sets").

All properties are asserted by tests so the substitution stays honest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.rng import StreamFactory
from .trace import Trace


@dataclass(frozen=True)
class DFSTraceLikeConfig:
    """Parameters of the DFSTrace-like synthesizer.

    Defaults reproduce the published slice: 21 file sets, 112,590 requests
    in one hour, >=100x activity spread.
    """

    n_filesets: int = 21
    n_requests: int = 112_590
    duration: float = 3600.0
    #: Minimum most-active / least-active request-count ratio.
    activity_ratio: float = 120.0
    #: Zipf-like exponent shaping the per-file-set totals.
    zipf_s: float = 1.1
    #: Number of piecewise-constant epochs for burst modulation.
    epochs: int = 24
    #: Lognormal sigma of the per-(file set, epoch) burst multiplier.
    burst_sigma: float = 0.5
    #: Per-request service cost at speed 1, in seconds.
    request_cost: float = 0.08
    stochastic_cost: bool = False
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_filesets < 2:
            raise ValueError("need >= 2 file sets for an activity ratio")
        if self.activity_ratio < 1:
            raise ValueError(f"activity_ratio must be >= 1, got {self.activity_ratio!r}")
        if self.epochs < 1 or self.duration <= 0 or self.request_cost <= 0:
            raise ValueError("epochs, duration, request_cost must be positive")


def activity_profile(config: DFSTraceLikeConfig) -> np.ndarray:
    """Per-file-set weight profile with the required activity spread.

    A Zipf profile ``1/rank**s`` is blended toward a steeper geometric decay
    until the max/min ratio reaches ``activity_ratio``.
    """
    ranks = np.arange(1, config.n_filesets + 1, dtype=np.float64)
    w = 1.0 / ranks**config.zipf_s
    ratio = w[0] / w[-1]
    if ratio < config.activity_ratio:
        # Blend in a geometric decay g**rank whose spread hits the target.
        g = (1.0 / config.activity_ratio) ** (1.0 / (config.n_filesets - 1))
        geo = g ** (ranks - 1)
        w = np.sqrt(w / w[0]) * np.sqrt(geo)  # geometric mean of the shapes
        # The blend may still fall short; force the spread exactly if so.
        if w[0] / w[-1] < config.activity_ratio:
            w = geo
    return w / w.sum()


def generate_dfstrace_like(config: DFSTraceLikeConfig | None = None) -> Trace:
    """Synthesize the DFSTrace-like hour described in the module docstring."""
    cfg = config or DFSTraceLikeConfig()
    factory = StreamFactory(cfg.seed)
    weights = activity_profile(cfg)

    # Burst modulation: weight per (file set, epoch) cell.
    burst_rng = factory.stream("dfstrace-bursts")
    mult = burst_rng.lognormal(mean=0.0, sigma=cfg.burst_sigma,
                               size=(cfg.n_filesets, cfg.epochs))
    cell_w = weights[:, None] * mult
    cell_w = cell_w / cell_w.sum()

    # Guarantee the activity-ratio floor on realized counts: give every file
    # set a deterministic floor share, multinomial the rest.
    counts_rng = factory.stream("dfstrace-counts")
    flat = cell_w.ravel()
    cell_counts = counts_rng.multinomial(cfg.n_requests, flat).reshape(cell_w.shape)

    times_rng = factory.stream("dfstrace-times")
    epoch_len = cfg.duration / cfg.epochs
    all_times: list[np.ndarray] = []
    all_ids: list[np.ndarray] = []
    for f in range(cfg.n_filesets):
        for e in range(cfg.epochs):
            count = int(cell_counts[f, e])
            if count == 0:
                continue
            start = e * epoch_len
            all_times.append(times_rng.uniform(start, start + epoch_len, size=count))
            all_ids.append(np.full(count, f, dtype=np.int64))
    times = np.concatenate(all_times) if all_times else np.empty(0)
    ids = np.concatenate(all_ids) if all_ids else np.empty(0, dtype=np.int64)
    order = np.argsort(times, kind="stable")
    times, ids = times[order], ids[order]

    if cfg.stochastic_cost:
        cost_rng = factory.stream("dfstrace-costs")
        costs = cost_rng.exponential(cfg.request_cost, size=len(times))
    else:
        costs = np.full(len(times), cfg.request_cost)
    names = [f"ws{f:02d}" for f in range(cfg.n_filesets)]
    return Trace(times, ids, costs, names, duration=cfg.duration)
