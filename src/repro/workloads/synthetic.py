"""The paper's synthetic workload (§7).

"The synthetic workload consists of 100,000 client requests against 500
file sets during a period of 10,000 seconds.  Although workload
inter-arrival times in each file set are governed by a Poisson process, the
distribution of requests from each file set is stable for the duration of
the simulation.  To ensure file set workload heterogeneity, the workload of
each file set is defined as [s * x^alpha] where x is randomly chosen from
[an] interval and s is a scaling factor."

We realize this exactly: per-file-set weights ``w_f = x_f ** alpha`` with
``x_f ~ U(x_min, 1)``; the request count is split multinomially across file
sets in proportion to the weights, and within each file set arrival times
are i.i.d. uniform over the duration — the order statistics of a Poisson
process conditioned on its count, so each file set's stream is a stationary
Poisson process as specified.

Calibration: ``tune_scale_below_peak`` picks the request cost so that
aggregate offered load sits at a chosen fraction of the cluster's total
capacity ("we tune s so that the system is below peak load").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..sim.rng import StreamFactory
from .trace import Trace


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the paper's synthetic workload."""

    n_filesets: int = 500
    n_requests: int = 100_000
    duration: float = 10_000.0
    #: Heterogeneity exponent ``alpha``; larger -> more skew.
    alpha: float = 4.0
    #: Lower bound of the uniform draw for ``x`` (0 excluded to bound skew).
    x_min: float = 0.05
    #: Per-request service cost at speed 1, in seconds.
    request_cost: float = 0.35
    #: When True, costs are exponential with the given mean instead of
    #: deterministic (the paper's workload is "short ... low variance").
    stochastic_cost: bool = False
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_filesets < 1 or self.n_requests < 0:
            raise ValueError("need >=1 file set and >=0 requests")
        if not 0 < self.x_min <= 1:
            raise ValueError(f"x_min must be in (0, 1], got {self.x_min!r}")
        if self.duration <= 0 or self.request_cost <= 0:
            raise ValueError("duration and request_cost must be positive")


def fileset_weights(config: SyntheticConfig) -> np.ndarray:
    """The stable per-file-set workload weights ``w_f = x_f ** alpha``."""
    rng = StreamFactory(config.seed).stream("synthetic-weights")
    x = rng.uniform(config.x_min, 1.0, size=config.n_filesets)
    # Negative of alpha would invert the skew; we follow the paper's form
    # with x < 1, so larger alpha compresses most weights toward zero while
    # a few file sets near x=1 dominate -> heterogeneity.
    w = x**config.alpha
    return w / w.sum()


def generate_synthetic(config: SyntheticConfig | None = None) -> Trace:
    """Generate the synthetic trace of §7."""
    cfg = config or SyntheticConfig()
    factory = StreamFactory(cfg.seed)
    weights = fileset_weights(cfg)
    counts = factory.stream("synthetic-counts").multinomial(cfg.n_requests, weights)
    times_rng = factory.stream("synthetic-times")
    cost_rng = factory.stream("synthetic-costs")
    all_times: list[np.ndarray] = []
    all_ids: list[np.ndarray] = []
    for f, count in enumerate(counts):
        if count == 0:
            continue
        all_times.append(times_rng.uniform(0.0, cfg.duration, size=count))
        all_ids.append(np.full(count, f, dtype=np.int64))
    if all_times:
        times = np.concatenate(all_times)
        ids = np.concatenate(all_ids)
        order = np.argsort(times, kind="stable")
        times, ids = times[order], ids[order]
    else:
        times = np.empty(0)
        ids = np.empty(0, dtype=np.int64)
    if cfg.stochastic_cost:
        costs = cost_rng.exponential(cfg.request_cost, size=len(times))
    else:
        costs = np.full(len(times), cfg.request_cost)
    names = [f"fs{f:04d}" for f in range(cfg.n_filesets)]
    return Trace(times, ids, costs, names, duration=cfg.duration)


def tune_scale_below_peak(
    config: SyntheticConfig,
    server_speeds: Mapping[str, float],
    target_utilization: float = 0.5,
) -> SyntheticConfig:
    """Return a config whose request cost puts offered load at the target.

    Mirrors the paper's "we tune [the scaling factor] so that the system is
    below peak load": offered work per second divided by aggregate cluster
    speed equals ``target_utilization``.
    """
    if not 0 < target_utilization < 1:
        raise ValueError(
            f"target_utilization must be in (0, 1), got {target_utilization!r}"
        )
    total_speed = float(sum(server_speeds.values()))
    if total_speed <= 0:
        raise ValueError("total server speed must be positive")
    rate = config.n_requests / config.duration
    cost = target_utilization * total_speed / rate
    return SyntheticConfig(
        n_filesets=config.n_filesets,
        n_requests=config.n_requests,
        duration=config.duration,
        alpha=config.alpha,
        x_min=config.x_min,
        request_cost=cost,
        stochastic_cost=config.stochastic_cost,
        seed=config.seed,
    )
