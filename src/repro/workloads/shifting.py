"""Shifting workload: temporal heterogeneity.

The paper's §1 claims ANU handles *temporal heterogeneity* — "changing
load placement in response to workload shifts" — but no figure isolates
it.  This generator produces the cleanest instrument for that claim: the
per-file-set weight profile is a power law whose *identity* rotates every
``phase_length`` seconds (the hot file sets become cold and vice versa),
while the aggregate arrival rate stays constant.

A static policy tuned (or lucky) for one phase is wrong in the next; an
adaptive policy must detect the shift from latency alone and re-place.
The prescient policy with a per-interval oracle tracks shifts perfectly,
bounding what adaptivity can achieve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.rng import StreamFactory
from .trace import Trace


@dataclass(frozen=True)
class ShiftingConfig:
    """Parameters of the phase-rotating workload."""

    n_filesets: int = 100
    n_requests: int = 50_000
    duration: float = 5_000.0
    #: Seconds per phase; the weight profile rotates at each boundary.
    phase_length: float = 1_250.0
    #: Power-law exponent of the per-phase weights.
    alpha: float = 4.0
    x_min: float = 0.05
    #: How far the profile rotates per phase (file-set index offset).
    rotation: int | None = None  # default: n_filesets // n_phases
    request_cost: float = 0.35
    seed: int = 21

    def __post_init__(self) -> None:
        if self.n_filesets < 2 or self.n_requests < 0:
            raise ValueError("need >= 2 file sets and >= 0 requests")
        if not 0 < self.phase_length <= self.duration:
            raise ValueError("need 0 < phase_length <= duration")
        if self.request_cost <= 0:
            raise ValueError("request_cost must be positive")

    @property
    def n_phases(self) -> int:
        return int(np.ceil(self.duration / self.phase_length))


def phase_weights(config: ShiftingConfig) -> np.ndarray:
    """(n_phases, n_filesets) weight matrix; each row sums to 1.

    Row p is row 0 rotated by ``p * rotation`` file sets, so total demand
    is constant while the hot set moves.
    """
    rng = StreamFactory(config.seed).stream("shifting-weights")
    x = rng.uniform(config.x_min, 1.0, size=config.n_filesets)
    base = x**config.alpha
    base = base / base.sum()
    rotation = config.rotation
    if rotation is None:
        rotation = max(1, config.n_filesets // max(config.n_phases, 1))
    rows = [
        np.roll(base, p * rotation) for p in range(config.n_phases)
    ]
    return np.stack(rows)


def generate_shifting(config: ShiftingConfig | None = None) -> Trace:
    """Generate the phase-rotating trace."""
    cfg = config or ShiftingConfig()
    factory = StreamFactory(cfg.seed)
    weights = phase_weights(cfg)

    # Requests per phase proportional to phase coverage of the duration.
    phase_bounds = [
        (p * cfg.phase_length, min((p + 1) * cfg.phase_length, cfg.duration))
        for p in range(cfg.n_phases)
    ]
    spans = np.array([hi - lo for lo, hi in phase_bounds])
    phase_counts = np.floor(
        cfg.n_requests * spans / spans.sum()
    ).astype(int)
    shortfall = cfg.n_requests - int(phase_counts.sum())
    for i in range(shortfall):
        phase_counts[i % len(phase_counts)] += 1

    counts_rng = factory.stream("shifting-counts")
    times_rng = factory.stream("shifting-times")
    all_times: list[np.ndarray] = []
    all_ids: list[np.ndarray] = []
    for p, (lo, hi) in enumerate(phase_bounds):
        per_fs = counts_rng.multinomial(int(phase_counts[p]), weights[p])
        for f, count in enumerate(per_fs):
            if count == 0:
                continue
            all_times.append(times_rng.uniform(lo, hi, size=count))
            all_ids.append(np.full(count, f, dtype=np.int64))
    times = np.concatenate(all_times) if all_times else np.empty(0)
    ids = np.concatenate(all_ids) if all_ids else np.empty(0, dtype=np.int64)
    order = np.argsort(times, kind="stable")
    times, ids = times[order], ids[order]
    costs = np.full(len(times), cfg.request_cost)
    names = [f"fs{f:04d}" for f in range(cfg.n_filesets)]
    return Trace(times, ids, costs, names, duration=cfg.duration)
