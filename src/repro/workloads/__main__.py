"""``python -m repro.workloads`` — see :mod:`repro.workloads.cli`."""

import sys

from .cli import main

sys.exit(main())
