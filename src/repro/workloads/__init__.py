"""Workload generation and trace handling.

- :class:`~repro.workloads.trace.Trace` — columnar request trace;
- :func:`~repro.workloads.synthetic.generate_synthetic` — the paper's §7
  synthetic workload (500 file sets, 100k requests, power-law weights);
- :func:`~repro.workloads.dfstrace.generate_dfstrace_like` — DFSTrace
  substitute with the published trace characteristics (see DESIGN.md §2).
"""

from .dfstrace import DFSTraceLikeConfig, activity_profile, generate_dfstrace_like
from .shifting import ShiftingConfig, generate_shifting, phase_weights
from .synthetic import (
    SyntheticConfig,
    fileset_weights,
    generate_synthetic,
    tune_scale_below_peak,
)
from .trace import Trace, TraceRecord

__all__ = [
    "Trace",
    "TraceRecord",
    "SyntheticConfig",
    "fileset_weights",
    "generate_synthetic",
    "tune_scale_below_peak",
    "DFSTraceLikeConfig",
    "activity_profile",
    "generate_dfstrace_like",
    "ShiftingConfig",
    "generate_shifting",
    "phase_weights",
]
