"""Trace container: the request stream that drives a simulation.

A :class:`Trace` is a time-ordered sequence of metadata requests, each
belonging to a *file set* and carrying a service *cost* in work units —
the seconds a speed-1 server needs to serve it (a speed-``k`` server takes
``cost / k``, the paper's server-heterogeneity model).

Storage is columnar (NumPy arrays) so traces with 10^5–10^7 requests slice
and aggregate in vectorized time; the per-record view
(:class:`TraceRecord`) is materialized lazily for the simulator's event
loop.  Traces round-trip through ``.npz`` files for reuse across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from ..sim.rng import StreamFactory


@dataclass(frozen=True)
class TraceRecord:
    """One metadata request."""

    time: float
    fileset: str
    cost: float


class Trace:
    """A time-ordered columnar request trace."""

    def __init__(
        self,
        times: np.ndarray,
        fileset_ids: np.ndarray,
        costs: np.ndarray,
        fileset_names: list[str],
        duration: float | None = None,
    ) -> None:
        times = np.asarray(times, dtype=np.float64)
        fileset_ids = np.asarray(fileset_ids, dtype=np.int64)
        costs = np.asarray(costs, dtype=np.float64)
        if not (len(times) == len(fileset_ids) == len(costs)):
            raise ValueError("column lengths differ")
        if len(times) and np.any(np.diff(times) < 0):
            raise ValueError("trace times must be non-decreasing")
        if len(times) and (times[0] < 0):
            raise ValueError("negative request time")
        if np.any(costs < 0):
            raise ValueError("negative request cost")
        if len(fileset_ids) and (
            fileset_ids.min() < 0 or fileset_ids.max() >= len(fileset_names)
        ):
            raise ValueError("fileset id out of range")
        if len(set(fileset_names)) != len(fileset_names):
            raise ValueError("duplicate file-set names")
        self.times = times
        self.fileset_ids = fileset_ids
        self.costs = costs
        self.fileset_names = list(fileset_names)
        self.duration = float(duration) if duration is not None else (
            float(times[-1]) if len(times) else 0.0
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.times)

    @property
    def n_filesets(self) -> int:
        return len(self.fileset_names)

    def records(self) -> Iterator[TraceRecord]:
        """Lazy per-record view in time order."""
        names = self.fileset_names
        for t, f, c in zip(self.times, self.fileset_ids, self.costs):
            yield TraceRecord(time=float(t), fileset=names[int(f)], cost=float(c))

    # ------------------------------------------------------------------
    # Aggregations (vectorized)
    # ------------------------------------------------------------------
    def window(self, start: float, end: float) -> "Trace":
        """Sub-trace of requests with ``start <= time < end``."""
        lo = int(np.searchsorted(self.times, start, side="left"))
        hi = int(np.searchsorted(self.times, end, side="left"))
        return Trace(
            self.times[lo:hi],
            self.fileset_ids[lo:hi],
            self.costs[lo:hi],
            self.fileset_names,
            duration=end - start,
        )

    def demand_by_fileset(
        self, start: float | None = None, end: float | None = None
    ) -> dict[str, float]:
        """Total work (cost sum) per file set inside [start, end).

        This is the quantity the prescient oracle reads for its lookahead.
        File sets with no requests in the window report 0.
        """
        sub = self if start is None and end is None else self.window(
            start or 0.0, end if end is not None else float("inf")
        )
        sums = np.bincount(
            sub.fileset_ids, weights=sub.costs, minlength=self.n_filesets
        )
        return {name: float(sums[i]) for i, name in enumerate(self.fileset_names)}

    def counts_by_fileset(self) -> dict[str, int]:
        """Request count per file set over the whole trace."""
        counts = np.bincount(self.fileset_ids, minlength=self.n_filesets)
        return {name: int(counts[i]) for i, name in enumerate(self.fileset_names)}

    def total_work(self) -> float:
        """Sum of all request costs (speed-1 seconds)."""
        return float(self.costs.sum())

    def offered_load(self, total_speed: float) -> float:
        """Offered utilization against a cluster of given aggregate speed."""
        if total_speed <= 0:
            raise ValueError(f"total_speed must be positive, got {total_speed!r}")
        if self.duration <= 0:
            return 0.0
        return self.total_work() / (self.duration * total_speed)

    def heterogeneity_ratio(self) -> float:
        """Most-active over least-active file-set request count.

        Infinite when some file set has no requests at all.
        """
        counts = np.bincount(self.fileset_ids, minlength=self.n_filesets)
        if counts.max(initial=0) == 0:
            return 1.0
        low = counts.min()
        return float("inf") if low == 0 else float(counts.max() / low)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the trace to an ``.npz`` file."""
        np.savez_compressed(
            Path(path),
            times=self.times,
            fileset_ids=self.fileset_ids,
            costs=self.costs,
            fileset_names=np.array(self.fileset_names, dtype=object),
            duration=np.array([self.duration]),
        )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=True) as data:
            return cls(
                times=data["times"],
                fileset_ids=data["fileset_ids"],
                costs=data["costs"],
                fileset_names=[str(x) for x in data["fileset_names"]],
                duration=float(data["duration"][0]),
            )

    @classmethod
    def from_records(
        cls, records: list[TraceRecord], duration: float | None = None
    ) -> "Trace":
        """Build a trace from explicit records (sorted by time first)."""
        ordered = sorted(records, key=lambda r: r.time)
        names = sorted({r.fileset for r in ordered})
        index = {n: i for i, n in enumerate(names)}
        return cls(
            times=np.array([r.time for r in ordered]),
            fileset_ids=np.array([index[r.fileset] for r in ordered]),
            costs=np.array([r.cost for r in ordered]),
            fileset_names=names,
            duration=duration,
        )

    def thin(self, fraction: float, seed: int = 0) -> "Trace":
        """Random sub-sample keeping ~``fraction`` of requests.

        Used for cheap what-if runs (e.g. capacity planning) on long
        measured traces: thinning a Poisson stream by independent coin
        flips yields a Poisson stream at the scaled rate, so per-file-set
        rate ratios (the heterogeneity that matters) are preserved.
        """
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")
        if fraction == 1.0 or len(self) == 0:
            return Trace(self.times, self.fileset_ids, self.costs,
                         self.fileset_names, duration=self.duration)
        rng = StreamFactory(seed).stream("trace.thin")
        keep = rng.random(len(self)) < fraction
        return Trace(
            self.times[keep], self.fileset_ids[keep], self.costs[keep],
            self.fileset_names, duration=self.duration,
        )

    @classmethod
    def concatenate(cls, traces: list["Trace"]) -> "Trace":
        """Append traces end-to-end along the time axis.

        Each trace's times are shifted by the cumulative duration of its
        predecessors; the file-set universe is the union (by name).  Used
        to build piecewise workloads (e.g. diurnal rate profiles) from
        independently generated segments.
        """
        if not traces:
            raise ValueError("nothing to concatenate")
        names = sorted({n for t in traces for n in t.fileset_names})
        index = {n: i for i, n in enumerate(names)}
        times_parts: list[np.ndarray] = []
        id_parts: list[np.ndarray] = []
        cost_parts: list[np.ndarray] = []
        offset = 0.0
        for t in traces:
            remap = np.array(
                [index[n] for n in t.fileset_names], dtype=np.int64
            )
            times_parts.append(t.times + offset)
            id_parts.append(
                remap[t.fileset_ids] if len(t) else t.fileset_ids
            )
            cost_parts.append(t.costs)
            offset += t.duration
        return cls(
            np.concatenate(times_parts),
            np.concatenate(id_parts),
            np.concatenate(cost_parts),
            names,
            duration=offset,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace({len(self)} requests, {self.n_filesets} file sets, "
            f"duration={self.duration:.1f}s)"
        )
