"""Workload tooling: generate, describe, and slice trace files.

Usage::

    python -m repro.workloads gen --kind synthetic --out trace.npz
    python -m repro.workloads gen --kind dfstrace --requests 50000 --out t.npz
    python -m repro.workloads gen --kind shifting --duration 4000 --out s.npz
    python -m repro.workloads describe trace.npz
    python -m repro.workloads slice trace.npz --start 100 --end 200 --out sub.npz

Traces round-trip through ``.npz`` (see :meth:`repro.workloads.Trace.save`),
so generated workloads can be reused across experiments and shared.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import fields, replace
from typing import Sequence

import numpy as np

from .dfstrace import DFSTraceLikeConfig, generate_dfstrace_like
from .shifting import ShiftingConfig, generate_shifting
from .synthetic import SyntheticConfig, generate_synthetic
from .trace import Trace

_KINDS = {
    "synthetic": (SyntheticConfig, generate_synthetic),
    "dfstrace": (DFSTraceLikeConfig, generate_dfstrace_like),
    "shifting": (ShiftingConfig, generate_shifting),
}


def _build_config(kind: str, args: argparse.Namespace):
    config_cls, _ = _KINDS[kind]
    cfg = config_cls()
    overrides = {}
    mapping = {
        "filesets": "n_filesets",
        "requests": "n_requests",
        "duration": "duration",
        "seed": "seed",
    }
    valid = {f.name for f in fields(config_cls)}
    for arg_name, field_name in mapping.items():
        value = getattr(args, arg_name)
        if value is not None and field_name in valid:
            overrides[field_name] = value
    return replace(cfg, **overrides)


def describe(trace: Trace) -> str:
    """Human-readable summary of a trace (the `describe` subcommand)."""
    lines = [
        f"requests:  {len(trace)}",
        f"file sets: {trace.n_filesets}",
        f"duration:  {trace.duration:.1f} s",
        f"total work: {trace.total_work():.1f} speed-1 seconds "
        f"({trace.total_work() / max(trace.duration, 1e-9):.3f} demand units/s)",
        f"heterogeneity (max/min requests): {trace.heterogeneity_ratio():.1f}",
    ]
    counts = trace.counts_by_fileset()
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
    lines.append("hottest file sets: "
                 + ", ".join(f"{k}={v}" for k, v in top))
    if len(trace):
        rate_per_min = np.bincount(
            (trace.times // 60.0).astype(int)
        )
        lines.append(
            f"arrival rate (req/min): min={rate_per_min.min()}, "
            f"mean={rate_per_min.mean():.0f}, max={rate_per_min.max()}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Generate and inspect workload traces",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen", help="generate a trace file")
    gen.add_argument("--kind", choices=sorted(_KINDS), required=True)
    gen.add_argument("--out", required=True)
    gen.add_argument("--filesets", type=int, default=None)
    gen.add_argument("--requests", type=int, default=None)
    gen.add_argument("--duration", type=float, default=None)
    gen.add_argument("--seed", type=int, default=None)

    desc = sub.add_parser("describe", help="summarize a trace file")
    desc.add_argument("path")

    sl = sub.add_parser("slice", help="cut a time window out of a trace")
    sl.add_argument("path")
    sl.add_argument("--start", type=float, required=True)
    sl.add_argument("--end", type=float, required=True)
    sl.add_argument("--out", required=True)

    args = parser.parse_args(argv)
    if args.command == "gen":
        config = _build_config(args.kind, args)
        _, generator = _KINDS[args.kind]
        trace = generator(config)
        trace.save(args.out)
        print(f"wrote {args.out}:")
        print(describe(trace))
        return 0
    if args.command == "describe":
        print(describe(Trace.load(args.path)))
        return 0
    if args.command == "slice":
        if args.end <= args.start:
            parser.error("--end must exceed --start")
        trace = Trace.load(args.path)
        sub_trace = trace.window(args.start, args.end)
        sub_trace.save(args.out)
        print(f"wrote {args.out} ({len(sub_trace)} requests)")
        return 0
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
