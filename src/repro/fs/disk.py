"""The shared disk: file-set metadata images accessible from all servers.

"Metadata are stored on shared disks accessible to all servers" (§2) —
this is what makes file-set movement cheap: the releasing server *flushes*
its in-memory namespace to the shared disk, and the acquiring server
*loads* it.  No data travels between servers.

The :class:`SharedDisk` enforces the consistency discipline of that
protocol: images are versioned by the namespace generation; a load returns
the most recently flushed image; flushing a generation older than what the
disk holds is rejected (a stale server must not clobber a newer image —
the fencing that shared-disk file systems rely on).
"""

from __future__ import annotations

from dataclasses import dataclass

from .namespace import Namespace


class DiskError(Exception):
    """Illegal shared-disk operation (missing image, stale flush...)."""


@dataclass
class ImageRecord:
    """One stored file-set image plus bookkeeping."""

    image: dict
    generation: int
    flushed_at: float
    flushed_by: str


class SharedDisk:
    """Block-store abstraction holding one image per file set."""

    def __init__(self) -> None:
        self._images: dict[str, ImageRecord] = {}
        self.flushes = 0
        self.loads = 0

    # ------------------------------------------------------------------
    def format_fileset(self, namespace: Namespace, now: float = 0.0) -> None:
        """Create the initial image for a brand-new file set."""
        if namespace.fileset in self._images:
            raise DiskError(f"file set {namespace.fileset!r} already formatted")
        self._images[namespace.fileset] = ImageRecord(
            image=namespace.to_image(),
            generation=namespace.generation,
            flushed_at=now,
            flushed_by="mkfs",
        )

    def flush(self, namespace: Namespace, server: str, now: float = 0.0) -> None:
        """Write the namespace image (the releasing server's cache flush).

        Rejects flushing a generation older than the stored one: a server
        that lost ownership must not overwrite the new owner's updates.
        """
        record = self._images.get(namespace.fileset)
        if record is None:
            raise DiskError(f"file set {namespace.fileset!r} was never formatted")
        if namespace.generation < record.generation:
            raise DiskError(
                f"stale flush of {namespace.fileset!r}: generation "
                f"{namespace.generation} < stored {record.generation} "
                f"(fenced out)"
            )
        self._images[namespace.fileset] = ImageRecord(
            image=namespace.to_image(),
            generation=namespace.generation,
            flushed_at=now,
            flushed_by=server,
        )
        self.flushes += 1

    def load(self, fileset: str) -> Namespace:
        """Read the image (the acquiring server's initialization)."""
        record = self._images.get(fileset)
        if record is None:
            raise DiskError(f"no image for file set {fileset!r}")
        self.loads += 1
        return Namespace.from_image(record.image)

    # ------------------------------------------------------------------
    def generation(self, fileset: str) -> int:
        """Stored image generation of ``fileset``."""
        record = self._images.get(fileset)
        if record is None:
            raise DiskError(f"no image for file set {fileset!r}")
        return record.generation

    def filesets(self) -> list[str]:
        """Names of every formatted file set."""
        return sorted(self._images)

    def record(self, fileset: str) -> ImageRecord:
        """The stored image record (image + bookkeeping)."""
        record = self._images.get(fileset)
        if record is None:
            raise DiskError(f"no image for file set {fileset!r}")
        return record
