"""A functional shared-disk metadata cluster.

This ties the file-system substrate together into the system of Figure 1:
a global namespace partitioned into file sets (subtrees), a shared disk
holding every file set's metadata image, one :class:`MetadataService` per
server, and ANU randomization as the routing/ownership layer.  Unlike
:mod:`repro.cluster` (which models queueing *timing*), this cluster
executes *real* metadata operations — create/stat/rename/locks — and
really moves namespace images over the shared disk when ownership changes,
so the end-to-end correctness of placement + movement + recovery is
testable: every operation lands on exactly the server that owns its file
set, and no update is ever lost across tuning, failure, and recovery.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..contracts import checks_invariants, invariant
from ..core.anu import ANUPlacement
from ..core.hashing import HashFamily
from ..core.movement import MovementLedger, diff_assignment
from ..core.tuning import DelegateTuner, ServerReport, TuningConfig
from ..membership.director import MembershipDirector
from ..membership.faults import FaultEvent, FaultKind
from ..membership.lifecycle import MembershipRoster
from ..placement.replicated import derive_owner_set
from ..runtime.telemetry import NULL_SINK, TelemetrySink
from ..units import Seconds
from . import paths
from .disk import SharedDisk
from .namespace import FSError, Namespace
from .ops import Operation, OpResult
from .service import MetadataService


class FileSetRegistry:
    """Maps global paths to file sets (deepest enclosing subtree root)."""

    def __init__(self, roots: Mapping[str, str]) -> None:
        """``roots``: file-set name -> global root path of its subtree."""
        if not roots:
            raise FSError("need at least one file set")
        self._root_of: dict[str, str] = {}
        for name, root in roots.items():
            norm = paths.normalize(root)
            if norm in self._root_of.values():
                raise FSError(f"duplicate file-set root {norm!r}")
            self._root_of[name] = norm
        # Longest-prefix order for resolution.
        self._ordered = sorted(
            self._root_of.items(), key=lambda kv: -len(paths.components(kv[1]))
        )

    @property
    def filesets(self) -> list[str]:
        return sorted(self._root_of)

    def root_of(self, fileset: str) -> str:
        """Global root path of ``fileset``."""
        try:
            return self._root_of[fileset]
        except KeyError:
            raise FSError(f"unknown file set {fileset!r}") from None

    def fileset_of(self, path: str) -> str:
        """The file set owning ``path`` (deepest enclosing root)."""
        norm = paths.normalize(path)
        for name, root in self._ordered:
            if paths.is_ancestor(root, norm):
                return name
        raise FSError(f"{path!r} is outside every file set")

    def relative(self, fileset: str, path: str) -> str:
        """``path`` relative to the file set's root, as an absolute path
        within the file-set namespace."""
        root = self.root_of(fileset)
        comps = paths.components(path)
        root_comps = paths.components(root)
        if comps[: len(root_comps)] != root_comps:
            raise FSError(f"{path!r} is not inside file set {fileset!r}")
        rest = comps[len(root_comps):]
        return paths.ROOT + "/".join(rest) if rest else paths.ROOT


class MetadataCluster:
    """Servers + shared disk + ANU routing for real metadata operations."""

    def __init__(
        self,
        servers: Iterable[str],
        fileset_roots: Mapping[str, str],
        tuning: TuningConfig | None = None,
        hash_family: HashFamily | None = None,
        telemetry: TelemetrySink | None = None,
    ) -> None:
        self.registry = FileSetRegistry(fileset_roots)
        self.disk = SharedDisk()
        self.services: dict[str, MetadataService] = {
            name: MetadataService(name, self.disk) for name in servers
        }
        if not self.services:
            raise FSError("need at least one server")
        self.roster = MembershipRoster(sorted(self.services))
        self.director = MembershipDirector(
            self.roster,
            host=self,
            telemetry=telemetry if telemetry is not None else NULL_SINK,
        )
        self.placement = ANUPlacement(sorted(self.services), hash_family=hash_family)
        self.tuner = DelegateTuner(tuning)
        self.ledger = MovementLedger()
        self._previous_reports: Sequence[ServerReport] | None = None
        # Format every file set and hand it to its initial owner.
        for fileset in self.registry.filesets:
            self.disk.format_fileset(Namespace(fileset))
        self._ownership: dict[str, str] = {}
        self._apply_assignment(
            self.placement.assignment(self.registry.filesets)
        )

    # ------------------------------------------------------------------
    # Ownership realization over the shared disk
    # ------------------------------------------------------------------
    def _apply_assignment(self, new: Mapping[str, str], now: float = 0.0) -> int:
        diff = diff_assignment(self._ownership, new)
        for move in diff.moves:
            if move.source is not None:
                source = self.services.get(move.source)
                if source is not None and source.owns(move.fileset):
                    source.release_fileset(move.fileset, now=now)
            self.services[move.destination].acquire_fileset(move.fileset)
        self._ownership = dict(new)
        if diff.total:
            self.ledger.record(diff)
        return diff.moved

    @invariant(
        lambda self: all(
            owner in self.services and self.services[owner].owns(fileset)
            for fileset, owner in self._ownership.items()
        ),
        "ownership transfer broke service referential integrity",
    )
    def transfer_ownership(
        self, fileset: str, destination: str, now: float = 0.0
    ) -> bool:
        """Move one file set's image to ``destination`` over the shared disk.

        Returns True when an image actually moved.  Asynchronous drivers
        schedule moves with a delay, so the full :meth:`check_consistency`
        (which also demands placement agreement) may legitimately not hold
        until every in-flight move lands; this mutator therefore asserts
        only that services and the ownership map stay in step.
        """
        source = self.owner_of(fileset)
        if source == destination:
            return False
        self.services[source].release_fileset(fileset, now=now)
        self.services[destination].acquire_fileset(fileset)
        self._ownership[fileset] = destination
        return True

    def owner_of(self, fileset: str) -> str:
        """The server currently owning ``fileset``."""
        try:
            return self._ownership[fileset]
        except KeyError:
            raise FSError(f"unknown file set {fileset!r}") from None

    def ownership(self) -> dict[str, str]:
        """file set -> owner map (copy)."""
        return dict(self._ownership)

    def owner_set_of(self, fileset: str, replication: int) -> tuple[str, ...]:
        """``fileset``'s r-way owner set: the authoritative owner at
        slot 0, derived replicas after it.

        Replicas are the routing plane only — :meth:`submit` still
        executes on the slot-0 owner (exactly-once semantics and
        :meth:`check_consistency` both hinge on the single authoritative
        ownership map); a replica merely *serves* the request off the
        shared-disk image, which is what the timed harness accounts.
        """
        return derive_owner_set(
            fileset,
            self.owner_of(fileset),
            sorted(self.services),
            replication,
            placement=self.placement,
        )

    # ------------------------------------------------------------------
    # Client entry point
    # ------------------------------------------------------------------
    def submit(self, operation: Operation) -> tuple[str, OpResult]:
        """Route one operation by hashing and execute it on the owner.

        Returns ``(server_name, result)``.  Cross-file-set renames are
        rejected here — file sets are indivisible ownership units, so a
        rename may not span two of them (real systems return EXDEV).
        """
        fileset = self.registry.fileset_of(operation.path)
        local_args = dict(operation.args)
        if "dst" in local_args:
            dst_fileset = self.registry.fileset_of(local_args["dst"])
            if dst_fileset != fileset:
                return self.owner_of(fileset), OpResult.failure(
                    "cross-fileset rename (EXDEV)"
                )
            local_args["dst"] = self.registry.relative(fileset, local_args["dst"])
        server = self.owner_of(fileset)
        local = Operation(
            op=operation.op,
            path=self.registry.relative(fileset, operation.path),
            client=operation.client,
            time=operation.time,
            args=local_args,
        )
        return server, self.services[server].execute(fileset, local)

    # ------------------------------------------------------------------
    # Tuning and membership
    # ------------------------------------------------------------------
    @checks_invariants
    def retune(self, reports: Sequence[ServerReport], now: float = 0.0) -> int:
        """One delegate round: rescale regions, move images; returns the
        number of file sets moved."""
        decision = self.tuner.compute(
            self.placement.shares(), reports, self._previous_reports
        )
        self._previous_reports = list(reports)
        if not decision.tuned:
            return 0
        self.placement.set_shares(decision.new_shares)
        self.placement.check_invariants()
        return self._apply_assignment(
            self.placement.assignment(self.registry.filesets), now=now
        )

    @checks_invariants
    def fail_server(self, name: str, now: float = 0.0) -> int:
        """Crash a server: its unflushed updates are lost; its file sets
        are re-hashed to survivors, which load the last flushed images."""
        if name not in self.services:
            raise FSError(f"unknown server {name!r}")
        change = self.director.apply(
            FaultEvent(Seconds(now), FaultKind.FAIL, name), now=Seconds(now)
        )
        return change.moved

    @checks_invariants
    def add_server(self, name: str, now: float = 0.0) -> int:
        """Commission a brand-new server, or recover a former member.

        The membership roster distinguishes the two: a name this cluster
        has seen before rejoins as a ``RECOVER`` (legal from both crashed
        and drained states), an unknown name joins as a ``COMMISSION``.
        """
        if name in self.services:
            raise FSError(f"server {name!r} already present")
        if name in self.roster:
            kind = FaultKind.RECOVER
        else:
            kind = FaultKind.COMMISSION
        change = self.director.apply(
            FaultEvent(Seconds(now), kind, name), now=Seconds(now)
        )
        return change.moved

    @checks_invariants
    def remove_server(self, name: str, now: float = 0.0) -> int:
        """Graceful decommission: flush everything, then re-own."""
        if name not in self.services:
            raise FSError(f"unknown server {name!r}")
        change = self.director.apply(
            FaultEvent(Seconds(now), FaultKind.DECOMMISSION, name),
            now=Seconds(now),
        )
        return change.moved

    # ------------------------------------------------------------------
    # MembershipHost protocol (driven by self.director)
    #
    # These primitives run mid-membership-change, between the roster
    # transition and the re-placement, so the full check_consistency
    # (which demands placement agreement) legitimately does not hold yet;
    # they guarantee the weaker service/ownership referential integrity.
    # ------------------------------------------------------------------
    @invariant(
        lambda self: all(
            owner in self.services and self.services[owner].owns(fileset)
            for fileset, owner in self._ownership.items()
        ),
        "membership primitive broke service referential integrity",
    )
    def crash_server(self, server: str, now: Seconds) -> None:
        """Hard-kill: unflushed updates die with the in-memory namespace.

        The crashed server's file sets must be re-owned even though the
        crash lost the in-memory copies; ownership diff handles it (the
        source no longer owns them, so only acquire happens).
        """
        self.services[server].crash()
        del self.services[server]
        self.placement.remove_server(server)
        self._ownership = {
            fs: owner for fs, owner in self._ownership.items() if owner != server
        }
        return None

    @invariant(
        lambda self: all(
            owner in self.services and self.services[owner].owns(fileset)
            for fileset, owner in self._ownership.items()
        ),
        "membership primitive broke service referential integrity",
    )
    def drain_server(self, server: str, now: Seconds) -> None:
        """Graceful: flush every namespace, release ownership cleanly."""
        service = self.services[server]
        service.flush_all(now=now)
        for fileset in service.owned_filesets():
            service.release_fileset(fileset, now=now)
        del self.services[server]
        self.placement.remove_server(server)
        self._ownership = {
            fs: owner for fs, owner in self._ownership.items() if owner != server
        }

    @invariant(
        lambda self: all(
            owner in self.services and self.services[owner].owns(fileset)
            for fileset, owner in self._ownership.items()
        ),
        "membership primitive broke service referential integrity",
    )
    def restart_server(self, server: str, now: Seconds) -> None:
        """A former member rejoins empty; images reload from the disk."""
        self.services[server] = MetadataService(server, self.disk)
        self.placement.add_server(server)

    @invariant(
        lambda self: all(
            owner in self.services and self.services[owner].owns(fileset)
            for fileset, owner in self._ownership.items()
        ),
        "membership primitive broke service referential integrity",
    )
    def install_server(self, server: str, speed: float, now: Seconds) -> None:
        """A brand-new server joins (this harness models no speeds; the
        placement shares carry any heterogeneity)."""
        self.services[server] = MetadataService(server, self.disk)
        self.placement.add_server(server)

    def set_speed(self, server: str, factor: float, now: Seconds) -> None:
        """Gray failure: pure bookkeeping here.  This harness models no
        timing, so a limp changes nothing the semantic layer can see —
        the roster carries the authoritative degradation, and the
        consistency check below asserts the service set still matches
        the (unchanged) live set."""
        if server not in self.services:
            raise FSError(f"set_speed for unknown service {server!r}")

    def delegate_failover(self, now: Seconds) -> None:
        """Tuning here is delegate-less (callers invoke :meth:`retune`
        directly), so a delegate crash only clears report history."""
        self._previous_reports = None
        return None

    def membership_assignment(
        self,
    ) -> tuple[dict[str, str], dict[str, str]]:
        """(old, new): current ownership vs the re-probed placement."""
        return (
            dict(self._ownership),
            self.placement.assignment(self.registry.filesets),
        )

    def reset_round_history(self) -> None:
        """Report history straddles the membership change; drop it."""
        self._previous_reports = None

    def realize_membership(
        self, old: dict[str, str], new: dict[str, str], now: Seconds
    ) -> None:
        """Move namespace images over the shared disk per the new map."""
        self._apply_assignment(new, now=now)

    def reinject(self, orphans: object, now: Seconds) -> None:
        """Nothing to re-dispatch: operations here are synchronous."""

    def checkpoint(self, now: float = 0.0) -> None:
        """Flush every owned namespace on every server (periodic sync)."""
        for service in self.services.values():
            service.flush_all(now=now)

    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Assert the ownership map, services, placement, and the
        membership roster all agree."""
        live = set(self.roster.live())
        if live != set(self.services):
            raise FSError(
                f"roster says {sorted(live)!r} live, services are "
                f"{sorted(self.services)!r}"
            )
        for fileset, owner in self._ownership.items():
            if owner not in self.services:
                raise FSError(f"{fileset!r} owned by unknown server {owner!r}")
            if not self.services[owner].owns(fileset):
                raise FSError(f"{owner!r} does not hold {fileset!r} in memory")
            located = self.placement.locate(fileset)
            if located != owner:
                raise FSError(
                    f"placement locates {fileset!r} at {located!r}, "
                    f"ownership says {owner!r}"
                )
        for name, service in self.services.items():
            for fileset in service.owned_filesets():
                if self._ownership.get(fileset) != name:
                    raise FSError(
                        f"{name!r} holds {fileset!r} but ownership says "
                        f"{self._ownership.get(fileset)!r}"
                    )
