"""File/data lock management.

Storage Tank servers "grant file/data locks, and detect and recover failed
clients" (§2): before a client touches data on the SAN it acquires a lock
from the metadata server that owns the file's file set.  This module
implements that lock table:

- shared (read) and exclusive (write) locks per path, per client session;
- FIFO fairness: a queued exclusive waiter blocks later shared requests
  (no writer starvation);
- client failure recovery: :meth:`LockManager.release_client` drops every
  lock and queued request of a failed session and promotes waiters;
- the lock table is part of the file set's volatile server state — it is
  *not* written to the shared disk, so file-set moves implicitly discard
  it (clients re-acquire, which is how Storage Tank recovery behaves).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field


class LockError(Exception):
    """Illegal lock-table operation (double release, unknown holder...)."""


class LockMode(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class _PathLocks:
    """Lock state for one path."""

    holders: dict[str, LockMode] = field(default_factory=dict)
    waiters: deque = field(default_factory=deque)  # of (client, mode)

    @property
    def mode(self) -> LockMode | None:
        if not self.holders:
            return None
        if any(m is LockMode.EXCLUSIVE for m in self.holders.values()):
            return LockMode.EXCLUSIVE
        return LockMode.SHARED


class LockManager:
    """Lock table for the file sets one server currently owns."""

    def __init__(self) -> None:
        self._table: dict[str, _PathLocks] = {}
        self.grants = 0
        self.waits = 0

    # ------------------------------------------------------------------
    def acquire(self, client: str, path: str, mode: LockMode) -> bool:
        """Try to acquire; returns True if granted now, False if queued.

        Re-acquiring a mode already held is idempotent (returns True).
        Upgrades (shared -> exclusive by the sole holder) are granted
        immediately; otherwise the request queues FIFO.
        """
        state = self._table.setdefault(path, _PathLocks())
        held = state.holders.get(client)
        if held is mode:
            return True
        if held is LockMode.EXCLUSIVE and mode is LockMode.SHARED:
            return True  # exclusive subsumes shared
        if self._grantable(state, client, mode):
            state.holders[client] = mode
            self.grants += 1
            return True
        state.waiters.append((client, mode))
        self.waits += 1
        return False

    def _grantable(self, state: _PathLocks, client: str, mode: LockMode) -> bool:
        others = {c: m for c, m in state.holders.items() if c != client}
        if mode is LockMode.EXCLUSIVE:
            return not others and not state.waiters
        # Shared: compatible with shared holders, but FIFO fairness makes a
        # queued exclusive waiter block later shared requests.
        if any(m is LockMode.EXCLUSIVE for m in others.values()):
            return False
        exclusive_waiting = any(m is LockMode.EXCLUSIVE for _, m in state.waiters)
        return not exclusive_waiting

    # ------------------------------------------------------------------
    def release(self, client: str, path: str) -> list[tuple[str, LockMode]]:
        """Release ``client``'s lock on ``path``; returns promoted waiters."""
        state = self._table.get(path)
        if state is None or client not in state.holders:
            raise LockError(f"{client!r} holds no lock on {path!r}")
        del state.holders[client]
        promoted = self._promote(state)
        if not state.holders and not state.waiters:
            del self._table[path]
        return promoted

    def _promote(self, state: _PathLocks) -> list[tuple[str, LockMode]]:
        promoted: list[tuple[str, LockMode]] = []
        while state.waiters:
            client, mode = state.waiters[0]
            others = {c: m for c, m in state.holders.items() if c != client}
            if mode is LockMode.EXCLUSIVE and others:
                break
            if mode is LockMode.SHARED and any(
                m is LockMode.EXCLUSIVE for m in others.values()
            ):
                break
            state.waiters.popleft()
            state.holders[client] = mode
            self.grants += 1
            promoted.append((client, mode))
            if mode is LockMode.EXCLUSIVE:
                break
        return promoted

    # ------------------------------------------------------------------
    def release_client(self, client: str) -> list[tuple[str, str, LockMode]]:
        """Failed-client recovery: drop every lock and queued request of
        ``client``; returns the (path, client, mode) grants it unblocked."""
        all_promoted: list[tuple[str, str, LockMode]] = []
        for path in list(self._table):
            state = self._table[path]
            state.waiters = deque(
                (c, m) for c, m in state.waiters if c != client
            )
            if client in state.holders:
                del state.holders[client]
            for c, m in self._promote(state):
                all_promoted.append((path, c, m))
            if not state.holders and not state.waiters:
                del self._table[path]
        return all_promoted

    # ------------------------------------------------------------------
    def holders(self, path: str) -> dict[str, LockMode]:
        """Current holders of ``path`` (client -> mode)."""
        state = self._table.get(path)
        return dict(state.holders) if state else {}

    def waiting(self, path: str) -> list[tuple[str, LockMode]]:
        """Queued requests on ``path``, FIFO order."""
        state = self._table.get(path)
        return list(state.waiters) if state else []

    def locked_paths(self) -> list[str]:
        """Paths with holders or waiters, sorted."""
        return sorted(self._table)

    def __len__(self) -> int:
        return len(self._table)
