"""Metadata operations and their service costs.

The server workload is "the single class of metadata operations — small
reads and writes" (§2).  Each operation targets one path (rename: two,
constrained to one file set) and carries a relative *cost weight* used by
the workload adapter to derive queueing service demands: directory scans
cost more than a stat, namespace mutations more than reads.  Weights are
relative; the adapter scales them to a configured mean request cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class OpType(enum.Enum):
    """Metadata operation types with relative cost weights."""

    STAT = ("stat", 0.6)
    LOOKUP = ("lookup", 0.6)
    READDIR = ("readdir", 1.6)
    CREATE = ("create", 1.4)
    MKDIR = ("mkdir", 1.4)
    SETATTR = ("setattr", 1.0)
    UNLINK = ("unlink", 1.2)
    RMDIR = ("rmdir", 1.2)
    RENAME = ("rename", 1.8)
    LOCK = ("lock", 0.8)
    UNLOCK = ("unlock", 0.6)

    def __init__(self, label: str, weight: float) -> None:
        self.label = label
        self.weight = weight

    @property
    def mutates(self) -> bool:
        return self in (
            OpType.CREATE, OpType.MKDIR, OpType.SETATTR,
            OpType.UNLINK, OpType.RMDIR, OpType.RENAME,
        )


#: Mean of all op weights; used to normalize costs so that a uniform op
#: mix has mean cost equal to the adapter's configured request cost.
MEAN_WEIGHT = sum(t.weight for t in OpType) / len(OpType)


@dataclass(frozen=True)
class Operation:
    """One client metadata operation."""

    op: OpType
    path: str
    client: str = "client0"
    time: float = 0.0
    #: Secondary path (rename destination) or lock mode, by op type.
    args: dict[str, Any] = field(default_factory=dict)

    def cost(self, mean_cost: float) -> float:
        """Service demand in speed-1 seconds for a given mean request cost."""
        return mean_cost * self.op.weight / MEAN_WEIGHT


@dataclass(frozen=True)
class OpResult:
    """Outcome of one operation."""

    ok: bool
    value: Any = None
    error: str | None = None

    @classmethod
    def success(cls, value: Any = None) -> "OpResult":
        return cls(ok=True, value=value)

    @classmethod
    def failure(cls, error: str) -> "OpResult":
        return cls(ok=False, error=error)
