"""FS-level workload generation and the bridge to the queueing simulator.

Two layers of realism are available in this repository:

1. the queueing simulator (:mod:`repro.cluster`) replays abstract request
   traces — that is what the paper's figures use;
2. this module generates *semantic* metadata operation streams (create /
   stat / readdir / rename / lock mixes against a populated namespace) and
   converts them into those same traces, so the figures can equally be
   driven by an operation mix instead of an abstract arrival process.

The generator populates each file set's namespace with a random directory
tree, then emits operations with a configurable type mix, file-set
popularity skew, and Poisson arrivals.  :func:`ops_to_trace` maps each
operation to (time, file set, cost) using the per-type cost weights of
:mod:`repro.fs.ops`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sim.rng import StreamFactory
from ..workloads.trace import Trace
from .cluster import FileSetRegistry, MetadataCluster
from .client import FileSystemClient
from .ops import MEAN_WEIGHT, Operation, OpType

#: A metadata-heavy operation mix (reads dominate, as in workstation
#: traces like DFSTrace).
DEFAULT_MIX: dict[OpType, float] = {
    OpType.STAT: 0.35,
    OpType.LOOKUP: 0.20,
    OpType.READDIR: 0.12,
    OpType.CREATE: 0.10,
    OpType.SETATTR: 0.08,
    OpType.UNLINK: 0.06,
    OpType.LOCK: 0.05,
    OpType.UNLOCK: 0.04,
}


@dataclass(frozen=True)
class FsWorkloadConfig:
    """Parameters for an FS-level operation stream."""

    n_operations: int = 10_000
    duration: float = 1_000.0
    #: Zipf-ish skew across file sets (0 = uniform popularity).
    popularity_skew: float = 1.0
    #: Files created per file set during population.
    files_per_fileset: int = 20
    dirs_per_fileset: int = 4
    #: Mean request cost in speed-1 seconds (for trace conversion).
    mean_cost: float = 0.1
    mix: dict[OpType, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_operations < 0 or self.duration <= 0 or self.mean_cost <= 0:
            raise ValueError("n_operations >= 0, duration/mean_cost > 0 required")
        if not self.mix or any(v < 0 for v in self.mix.values()):
            raise ValueError("mix must be non-empty with non-negative weights")


def populate(
    cluster: MetadataCluster, config: FsWorkloadConfig
) -> dict[str, tuple[list[str], list[str]]]:
    """Create directories and files in every file set; returns, per file
    set, the global paths of its (files, directories)."""
    client = FileSystemClient(cluster, name="populator")
    created: dict[str, tuple[list[str], list[str]]] = {}
    for fileset in cluster.registry.filesets:
        root = cluster.registry.root_of(fileset)
        files: list[str] = []
        dirs: list[str] = []
        for d in range(config.dirs_per_fileset):
            dir_path = f"{root}/d{d:02d}" if root != "/" else f"/d{d:02d}"
            client.mkdir(dir_path)
            dirs.append(dir_path)
            for f in range(config.files_per_fileset // max(config.dirs_per_fileset, 1)):
                file_path = f"{dir_path}/f{f:03d}"
                client.create(file_path)
                files.append(file_path)
        created[fileset] = (files, dirs)
    return created


def fileset_popularity(
    registry: FileSetRegistry, skew: float, rng: np.random.Generator
) -> dict[str, float]:
    """Zipf-ish popularity over file sets, shuffled so rank != name order."""
    names = list(registry.filesets)
    ranks = np.arange(1, len(names) + 1, dtype=float)
    weights = 1.0 / ranks ** max(skew, 0.0)
    weights /= weights.sum()
    rng.shuffle(names)
    return dict(zip(names, weights))


def generate_operations(
    cluster: MetadataCluster,
    config: FsWorkloadConfig | None = None,
) -> list[Operation]:
    """Populate the cluster's namespaces and emit a timed operation stream."""
    cfg = config or FsWorkloadConfig()
    factory = StreamFactory(cfg.seed)
    created = populate(cluster, cfg)
    pop_rng = factory.stream("fs-popularity")
    popularity = fileset_popularity(cluster.registry, cfg.popularity_skew, pop_rng)

    mix_types = list(cfg.mix)
    mix_weights = np.array([cfg.mix[t] for t in mix_types], dtype=float)
    mix_weights /= mix_weights.sum()

    op_rng = factory.stream("fs-ops")
    time_rng = factory.stream("fs-times")
    names = list(popularity)
    fs_weights = np.array([popularity[n] for n in names])
    fs_weights /= fs_weights.sum()

    times = np.sort(time_rng.uniform(0.0, cfg.duration, size=cfg.n_operations))
    fs_choices = op_rng.choice(len(names), size=cfg.n_operations, p=fs_weights)
    type_choices = op_rng.choice(len(mix_types), size=cfg.n_operations, p=mix_weights)

    serial = 0
    operations: list[Operation] = []
    for i in range(cfg.n_operations):
        fileset = names[int(fs_choices[i])]
        op_type = mix_types[int(type_choices[i])]
        files, dirs = created[fileset]
        root = cluster.registry.root_of(fileset)
        prefix = root if root != "/" else ""
        client = f"client{int(op_rng.integers(0, 8)):02d}"
        time = float(times[i])
        if op_type in (OpType.CREATE, OpType.MKDIR):
            serial += 1
            path = f"{prefix}/d00/new{serial:06d}"
        elif op_type is OpType.UNLINK:
            # Create a dedicated victim first so the stream is replayable.
            serial += 1
            path = f"{prefix}/d01/victim{serial:06d}"
            operations.append(
                Operation(op=OpType.CREATE, path=path, client=client, time=time)
            )
        elif op_type is OpType.READDIR:
            path = dirs[int(op_rng.integers(0, len(dirs)))]
        elif op_type is OpType.UNLOCK:
            # Pair the unlock with a shared lock so it always holds one.
            path = files[int(op_rng.integers(0, len(files)))]
            operations.append(
                Operation(op=OpType.LOCK, path=path, client=client, time=time)
            )
        else:
            path = files[int(op_rng.integers(0, len(files)))]
        operations.append(
            Operation(op=op_type, path=path, client=client, time=time)
        )
    return operations


def ops_to_trace(
    operations: list[Operation],
    registry: FileSetRegistry,
    mean_cost: float,
    duration: float,
) -> Trace:
    """Convert an operation stream to a queueing-simulator trace.

    Each record's cost is the operation's type weight scaled so the mean
    over a uniform mix equals ``mean_cost`` (speed-1 seconds).
    """
    filesets = registry.filesets
    index = {name: i for i, name in enumerate(filesets)}
    times = np.array([op.time for op in operations])
    ids = np.array([index[registry.fileset_of(op.path)] for op in operations],
                   dtype=np.int64)
    costs = np.array(
        [mean_cost * op.op.weight / MEAN_WEIGHT for op in operations]
    )
    order = np.argsort(times, kind="stable")
    return Trace(times[order], ids[order], costs[order], filesets,
                 duration=duration)
