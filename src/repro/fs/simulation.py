"""Full-system simulation: timed execution of real metadata operations.

The queueing simulator (:mod:`repro.cluster`) times abstract requests; the
semantic cluster (:mod:`repro.fs.cluster`) executes real operations
untimed.  This module combines them on one engine:

- every operation queues at its owner's FIFO facility (service time =
  op cost / server speed) and executes against the *real* namespace when
  service completes;
- the delegate round runs every tuning interval on observed waits;
- reconfiguration moves are timed: the share rescale happens immediately,
  but each file set's ownership transfers only after the 5-10 s
  flush/initialize delay, during which the source keeps serving — and the
  image really travels over the shared disk.

The result is the strongest correctness statement in the repository: under
a timed, tuned, reconfiguring run, every operation still executes exactly
once on the file set's owner, and the final namespace state equals the
untimed replay of the same operation stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.movement import diff_assignment
from ..core.tuning import DelegateTuner, TuningConfig
from ..metrics.latency import LatencyCollector, LatencySeries
from ..sim.engine import Engine
from ..sim.events import PRIORITY_LATE
from ..sim.resources import Facility
from ..sim.rng import StreamFactory
from .cluster import MetadataCluster
from .ops import MEAN_WEIGHT, Operation, OpResult


@dataclass(frozen=True)
class FullSystemConfig:
    """Parameters of a timed full-system run."""

    server_speeds: dict[str, float]
    fileset_roots: dict[str, str]
    tuning_interval: float = 120.0
    sample_window: float = 60.0
    mean_op_cost: float = 0.1  # speed-1 seconds for a mean-weight op
    move_delay_min: float = 5.0
    move_delay_max: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.server_speeds:
            raise ValueError("need at least one server")
        if any(v <= 0 for v in self.server_speeds.values()):
            raise ValueError("speeds must be positive")
        if not 0 <= self.move_delay_min <= self.move_delay_max:
            raise ValueError("need 0 <= move_delay_min <= move_delay_max")


@dataclass
class FullSystemResult:
    """Everything a test or bench reads from a timed run."""

    series: LatencySeries
    ops_completed: int
    ops_failed: int
    moves: int
    tuning_rounds: int
    cluster: MetadataCluster
    failures: list[tuple[Operation, str]] = field(default_factory=list)


class FullSystemSimulation:
    """Timed, tuned, reconfiguring execution of an operation stream."""

    def __init__(
        self,
        config: FullSystemConfig,
        operations: list[Operation],
        tuning: TuningConfig | None = None,
    ) -> None:
        self.config = config
        self.operations = sorted(operations, key=lambda o: o.time)
        self.engine = Engine()
        factory = StreamFactory(config.seed)
        self._move_rng = factory.stream("fs-sim-mover")
        self.cluster = MetadataCluster(
            sorted(config.server_speeds), config.fileset_roots, tuning=tuning
        )
        self.tuner = DelegateTuner(tuning)
        self.facilities = {
            name: Facility(self.engine, name)
            for name in config.server_speeds
        }
        self.collector = LatencyCollector()
        for name in config.server_speeds:
            self.collector.ensure_server(name)
        self.ops_completed = 0
        self.ops_failed = 0
        self.moves = 0
        self.tuning_rounds = 0
        self.failures: list[tuple[Operation, str]] = []
        self._moving: set[str] = set()
        self._previous_reports = None
        self._duration = (
            self.operations[-1].time if self.operations else 0.0
        )

    # ------------------------------------------------------------------
    def run(self) -> FullSystemResult:
        """Execute the operation stream; returns the results."""
        for op in self.operations:
            self.engine.schedule_at(op.time, self._on_arrival, op)
        if self._duration > 0:
            self.engine.schedule_at(
                min(self.config.tuning_interval, self._duration),
                self._tuning_round,
                priority=PRIORITY_LATE,
            )
        self.engine.run()
        duration = max(self._duration, self.engine.now, 1e-9)
        return FullSystemResult(
            series=self.collector.series(duration, self.config.sample_window),
            ops_completed=self.ops_completed,
            ops_failed=self.ops_failed,
            moves=self.moves,
            tuning_rounds=self.tuning_rounds,
            cluster=self.cluster,
            failures=self.failures,
        )

    # ------------------------------------------------------------------
    def _on_arrival(self, op: Operation) -> None:
        fileset = self.cluster.registry.fileset_of(op.path)
        owner = self.cluster.owner_of(fileset)
        speed = self.config.server_speeds[owner]
        cost = self.config.mean_op_cost * op.op.weight / MEAN_WEIGHT
        arrival = self.engine.now

        def _serve() -> None:
            # Execute on whoever owns the file set NOW — ownership may have
            # moved while the op queued; the shared-disk image moved with
            # it, so execution remains correct either way.  We route to the
            # *current* owner to model ownership fencing.
            result = self._execute(op)
            wait = max(self.engine.now - arrival - cost / speed, 0.0)
            self.collector.record(owner, self.engine.now, wait)
            if result.ok:
                self.ops_completed += 1
            else:
                self.ops_failed += 1
                self.failures.append((op, result.error or "?"))

        self.facilities[owner].request(cost / speed, _serve)

    def _execute(self, op: Operation) -> OpResult:
        _server, result = self.cluster.submit(
            Operation(op=op.op, path=op.path, client=op.client,
                      time=self.engine.now, args=op.args)
        )
        return result

    # ------------------------------------------------------------------
    def _tuning_round(self) -> None:
        now = self.engine.now
        interval = self.config.tuning_interval
        reports = self.collector.reports(
            sorted(self.config.server_speeds), now - interval, now
        )
        self.tuning_rounds += 1
        decision = self.tuner.compute(
            self.cluster.placement.shares(), reports, self._previous_reports
        )
        self._previous_reports = list(reports)
        if decision.tuned:
            placement = self.cluster.placement
            placement.set_shares(decision.new_shares)
            placement.check_invariants()
            old = self.cluster.ownership()
            new = placement.assignment(self.cluster.registry.filesets)
            for move in diff_assignment(old, new).moves:
                if move.fileset in self._moving:
                    continue
                self._moving.add(move.fileset)
                delay = float(self._move_rng.uniform(
                    self.config.move_delay_min, self.config.move_delay_max
                ))
                self.engine.schedule(
                    delay, self._finish_move, move.fileset, move.destination
                )
        if now + interval <= self._duration:
            self.engine.schedule(interval, self._tuning_round,
                                 priority=PRIORITY_LATE)

    def _finish_move(self, fileset: str, destination: str) -> None:
        self._moving.discard(fileset)
        # Flush the source's image and initialize the destination — the
        # real shared-disk transfer, through the cluster's contract-wrapped
        # mutator rather than by poking its ownership map.
        if self.cluster.transfer_ownership(
            fileset, destination, now=self.engine.now
        ):
            self.moves += 1
