"""Full-system simulation: timed execution of real metadata operations.

The queueing simulator (:mod:`repro.cluster`) times abstract requests; the
semantic cluster (:mod:`repro.fs.cluster`) executes real operations
untimed.  This module combines them on one engine:

- every operation queues at its owner's FIFO facility (service time =
  op cost / server speed) and executes against the *real* namespace when
  service completes;
- the delegate round runs every tuning interval on observed waits;
- reconfiguration moves are timed: the share rescale happens immediately,
  but each file set's ownership transfers only after the 5-10 s
  flush/initialize delay, during which the source keeps serving — and the
  image really travels over the shared disk.

Since the ``repro.runtime`` refactor, round cadence and report history
belong to the shared :class:`~repro.runtime.loop.TuningLoop`; this module
implements its host protocol (decision = a raw
:class:`~repro.core.tuning.DelegateTuner`, realize = delayed
shared-disk ownership transfers) and emits the structured telemetry
stream.  Scheduling is replicated exactly, so seeded runs replay
bit-identically through the refactor.

The result is the strongest correctness statement in the repository: under
a timed, tuned, reconfiguring run, every operation still executes exactly
once on the file set's owner, and the final namespace state equals the
untimed replay of the same operation stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.movement import MovementLedger, ReconfigDiff, diff_assignment
from ..core.tuning import DelegateTuner, ServerReport, TuningConfig, TuningDecision
from ..metrics.latency import LatencyCollector
from ..placement.base import TuningContext
from ..runtime.arrivals import schedule_all
from ..runtime.loop import TuningLoop
from ..runtime.routing import RequestRouter, SingleOwnerRouter
from ..runtime.result import SimResult, summarize_collector
from ..runtime.telemetry import (
    NULL_SINK,
    MoveFinished,
    MoveStarted,
    RequestArrived,
    RequestCompleted,
    RequestDispatched,
    TelemetrySink,
)
from ..sim.engine import Engine
from ..sim.resources import Facility
from ..sim.rng import StreamFactory
from .cluster import MetadataCluster
from .ops import MEAN_WEIGHT, Operation, OpResult


@dataclass(frozen=True)
class FullSystemConfig:
    """Parameters of a timed full-system run."""

    server_speeds: dict[str, float]
    fileset_roots: dict[str, str]
    tuning_interval: float = 120.0
    sample_window: float = 60.0
    mean_op_cost: float = 0.1  # speed-1 seconds for a mean-weight op
    move_delay_min: float = 5.0
    move_delay_max: float = 10.0
    seed: int = 0
    #: Owner-set size.  Replication here is routing-plane only: operations
    #: still *execute* on the authoritative slot-0 owner (exactly-once and
    #: the namespace-consistency check both depend on it); a replica serves
    #: the request off the shared-disk image, so queueing/wait accounting
    #: lands on the replica's facility.
    replication: int = 1

    def __post_init__(self) -> None:
        if not self.server_speeds:
            raise ValueError("need at least one server")
        if any(v <= 0 for v in self.server_speeds.values()):
            raise ValueError("speeds must be positive")
        if not 0 <= self.move_delay_min <= self.move_delay_max:
            raise ValueError("need 0 <= move_delay_min <= move_delay_max")
        if self.replication < 1:
            raise ValueError(
                f"replication must be >= 1, got {self.replication!r}"
            )


@dataclass
class FullSystemResult(SimResult):
    """The timed harness's :class:`SimResult`, plus the live namespace.

    ``total_requests`` counts operations *served* (including failed
    executions); the legacy ``ops_completed``/``moves`` accessors keep the
    old result schema working.
    """

    cluster: MetadataCluster | None = None
    ops_failed: int = 0
    failures: list[tuple[Operation, str]] = field(default_factory=list)

    @property
    def ops_completed(self) -> int:
        """Operations that executed successfully."""
        return self.total_requests - self.ops_failed

    @property
    def moves(self) -> int:
        """Completed shared-disk image transfers (legacy name)."""
        return self.moves_completed


class FullSystemSimulation:
    """Timed, tuned, reconfiguring execution of an operation stream.

    Implements :class:`repro.runtime.loop.TuningHost`; the shared
    :class:`TuningLoop` drives its delegate rounds.
    """

    def __init__(
        self,
        config: FullSystemConfig,
        operations: list[Operation],
        tuning: TuningConfig | None = None,
        telemetry: TelemetrySink | None = None,
        router: RequestRouter | None = None,
    ) -> None:
        self.config = config
        self.operations = sorted(operations, key=lambda o: o.time)
        self.telemetry = telemetry if telemetry is not None else NULL_SINK
        self.router = router if router is not None else SingleOwnerRouter()
        self.engine = Engine()
        factory = StreamFactory(config.seed)
        self._move_rng = factory.stream("fs-sim-mover")
        #: Explicit policy stream (satisfies the deterministic-RNG contract
        #: of TuningContext; the delegate tuner itself draws nothing).
        self._tuning_rng = factory.stream("fs-sim-tuning")
        # Named stream: binding it perturbs no other stream, so r=1 runs
        # replay byte-identically whether or not a router was passed.
        self.router.bind(factory.stream("fs-sim-router"))
        self.cluster = MetadataCluster(
            sorted(config.server_speeds), config.fileset_roots, tuning=tuning
        )
        self.tuner = DelegateTuner(tuning)
        self.facilities = {
            name: Facility(self.engine, name)
            for name in config.server_speeds
        }
        self.collector = LatencyCollector()
        for name in config.server_speeds:
            self.collector.ensure_server(name)
        self.ops_completed = 0
        self.ops_failed = 0
        self.moves = 0
        self.moves_started = 0
        self.completed: dict[str, int] = {
            name: 0 for name in sorted(config.server_speeds)
        }
        self.ledger = MovementLedger()
        self.failures: list[tuple[Operation, str]] = []
        self._moving: set[str] = set()
        self._duration = (
            self.operations[-1].time if self.operations else 0.0
        )
        self.loop = TuningLoop(
            engine=self.engine,
            interval=config.tuning_interval,
            duration=self._duration,
            host=self,
            telemetry=self.telemetry,
        )

    @property
    def tuning_rounds(self) -> int:
        """Delegate rounds run so far (owned by the shared loop)."""
        return self.loop.rounds

    # ------------------------------------------------------------------
    def run(self) -> FullSystemResult:
        """Execute the operation stream; returns the results."""
        schedule_all(
            self.engine, self.operations, self._on_arrival,
            time_of=lambda op: op.time,
        )
        if self._duration > 0:
            self.loop.start(min(self.config.tuning_interval, self._duration))
        self.engine.run()
        duration = max(self._duration, self.engine.now, 1e-9)
        series, mean_latency, total = summarize_collector(
            self.collector, duration, self.config.sample_window, self.completed
        )
        return FullSystemResult(
            policy_name="anu-delegate",
            duration=duration,
            series=series,
            ledger=self.ledger,
            completed=dict(self.completed),
            utilization={
                name: facility.monitor.utilization(self.engine.now)
                for name, facility in self.facilities.items()
            },
            mean_latency=mean_latency,
            total_requests=total,
            moves_started=self.moves_started,
            moves_completed=self.moves,
            retries=0,
            final_assignment=self.cluster.ownership(),
            tuning_rounds=self.loop.rounds,
            collector=self.collector,
            cluster=self.cluster,
            ops_failed=self.ops_failed,
            failures=self.failures,
        )

    # ------------------------------------------------------------------
    def _on_arrival(self, op: Operation) -> None:
        fileset = self.cluster.registry.fileset_of(op.path)
        owner = self.cluster.owner_of(fileset)
        slot, server = self._pick_server(fileset, owner)
        speed = self.config.server_speeds[server]
        cost = self.config.mean_op_cost * op.op.weight / MEAN_WEIGHT
        arrival = self.engine.now
        sink = self.telemetry
        if sink.enabled:
            sink.emit(RequestArrived(time=arrival, fileset=fileset, cost=cost))

        def _serve() -> None:
            # Execute on whoever owns the file set NOW — ownership may have
            # moved while the op queued; the shared-disk image moved with
            # it, so execution remains correct either way.  The op queues
            # and is timed at the routed replica, but semantically executes
            # through the authoritative owner (ownership fencing).
            result = self._execute(op)
            wait = max(self.engine.now - arrival - cost / speed, 0.0)
            if self.router.observes:
                self.router.observe(server, self.engine.now - arrival)
            self.collector.record(server, self.engine.now, wait)
            self.completed[server] += 1
            if result.ok:
                self.ops_completed += 1
            else:
                self.ops_failed += 1
                self.failures.append((op, result.error or "?"))
            if sink.enabled:
                sink.emit(
                    RequestCompleted(
                        time=self.engine.now, server=server, latency=wait
                    )
                )

        self.facilities[server].request(cost / speed, _serve)
        if sink.enabled:
            sink.emit(
                RequestDispatched(
                    time=arrival, fileset=fileset, server=server,
                    service_time=cost / speed,
                    router=self.router.name, replica=slot,
                )
            )

    def _pick_server(self, fileset: str, owner: str) -> tuple[int, str]:
        """The (slot, server) that serves this operation.

        At ``replication=1`` this is the authoritative owner with no
        router consultation — the classic path, byte-identical to the
        pre-refactor harness.  At higher r the router picks among the
        file set's owner set (restricted to servers with facilities).
        """
        if self.config.replication == 1:
            return 0, owner
        owners = self.cluster.owner_set_of(fileset, self.config.replication)
        candidates = [
            (slot, name)
            for slot, name in enumerate(owners)
            if name in self.facilities
        ]
        if not candidates:
            return 0, owner
        if len(candidates) == 1:
            return candidates[0]
        index = self.router.choose(
            fileset,
            [name for _, name in candidates],
            lambda name: self.facilities[name].queue_length,
        )
        return candidates[index]

    def _execute(self, op: Operation) -> OpResult:
        _server, result = self.cluster.submit(
            Operation(op=op.op, path=op.path, client=op.client,
                      time=self.engine.now, args=op.args)
        )
        return result

    # ------------------------------------------------------------------
    # Tuning rounds (TuningHost protocol, driven by self.loop)
    # ------------------------------------------------------------------
    def build_tuning_context(
        self,
        now: float,
        interval: float,
        previous_reports: Sequence[ServerReport] | None,
    ) -> TuningContext:
        """This round's context: window reports over the static fleet."""
        servers = sorted(self.config.server_speeds)
        return TuningContext(
            time=now,
            filesets=list(self.cluster.registry.filesets),
            servers=servers,
            assignment=self.cluster.ownership(),
            reports=self.collector.reports(servers, now - interval, now),
            previous_reports=previous_reports,
            server_speeds=dict(self.config.server_speeds),
            rng=self._tuning_rng,
        )

    def decide(
        self, context: TuningContext
    ) -> tuple[dict[str, str] | None, TuningDecision | None]:
        """One delegate-tuner round; rescales shares when it tunes."""
        previous = (
            list(context.previous_reports)
            if context.previous_reports is not None
            else None
        )
        decision = self.tuner.compute(
            self.cluster.placement.shares(), list(context.reports), previous
        )
        if not decision.tuned:
            return None, decision
        placement = self.cluster.placement
        placement.set_shares(decision.new_shares)
        placement.check_invariants()
        return placement.assignment(self.cluster.registry.filesets), decision

    def realize(self, old: dict[str, str], new: dict[str, str]) -> None:
        """Schedule delayed shared-disk transfers for the assignment diff."""
        diff = diff_assignment(old, new)
        sink = self.telemetry
        started = []
        for move in diff.moves:
            if move.fileset in self._moving:
                continue
            self._moving.add(move.fileset)
            started.append(move)
            delay = float(self._move_rng.uniform(
                self.config.move_delay_min, self.config.move_delay_max
            ))
            if sink.enabled:
                sink.emit(
                    MoveStarted(
                        time=self.engine.now, fileset=move.fileset,
                        source=move.source, destination=move.destination,
                    )
                )
            self.engine.schedule(
                delay, self._finish_move, move.fileset, move.destination
            )
        self.moves_started += len(started)
        # Ledger counts transfers actually scheduled (in-flight redirects
        # are already accounted to the reconfiguration that launched them).
        self.ledger.record(
            ReconfigDiff(moves=tuple(started), stayed=diff.stayed)
        )

    def membership_assignment(self) -> tuple[dict[str, str], dict[str, str]]:
        """Unsupported: this harness never changes its server set."""
        raise NotImplementedError(
            "the timed full-system harness has a static server set"
        )

    def _finish_move(self, fileset: str, destination: str) -> None:
        self._moving.discard(fileset)
        # Flush the source's image and initialize the destination — the
        # real shared-disk transfer, through the cluster's contract-wrapped
        # mutator rather than by poking its ownership map.
        if self.cluster.transfer_ownership(
            fileset, destination, now=self.engine.now
        ):
            self.moves += 1
            sink = self.telemetry
            if sink.enabled:
                sink.emit(
                    MoveFinished(
                        time=self.engine.now, fileset=fileset,
                        destination=destination,
                    )
                )
