"""The metadata namespace tree of one file set.

Storage Tank's servers "store, serve, and write file system metadata"
(§2).  A :class:`Namespace` is the metadata image of a single file set: a
tree of directories and files with POSIX-ish attributes, supporting the
metadata operations the workload consists of (small reads and writes of
attributes and directory entries — never file data, which goes straight to
the SAN).

The tree is deliberately self-contained and serializable
(:meth:`Namespace.to_image` / :meth:`Namespace.from_image`): the shared
disk stores these images, and moving a file set between servers is
flush-image + load-image (see :mod:`repro.fs.disk`).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

from . import paths
from .paths import PathError


class FSError(Exception):
    """Base error for namespace operations."""


class NotFound(FSError):
    """Path does not exist."""


class AlreadyExists(FSError):
    """Create/mkdir target already exists."""


class NotADirectory(FSError):
    """A file appears where a directory is required."""


class NotEmpty(FSError):
    """rmdir of a non-empty directory."""


class NodeKind(enum.Enum):
    FILE = "file"
    DIRECTORY = "directory"


_INODE_COUNTER = itertools.count(1)


@dataclass
class Attributes:
    """POSIX-ish metadata attributes of one node."""

    size: int = 0
    mode: int = 0o644
    owner: str = "root"
    ctime: float = 0.0
    mtime: float = 0.0

    def copy(self) -> "Attributes":
        """Independent copy of these attributes."""
        return Attributes(self.size, self.mode, self.owner, self.ctime, self.mtime)


@dataclass
class Node:
    """One namespace node (file or directory)."""

    name: str
    kind: NodeKind
    attrs: Attributes = field(default_factory=Attributes)
    inode: int = field(default_factory=lambda: next(_INODE_COUNTER))
    children: dict[str, "Node"] = field(default_factory=dict)

    @property
    def is_dir(self) -> bool:
        return self.kind is NodeKind.DIRECTORY


class Namespace:
    """The metadata tree of one file set, rooted at the file-set root."""

    def __init__(self, fileset: str) -> None:
        self.fileset = fileset
        self.root = Node(name="", kind=NodeKind.DIRECTORY,
                         attrs=Attributes(mode=0o755))
        self._generation = 0  # bumped on every mutation (image versioning)

    @property
    def generation(self) -> int:
        return self._generation

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _resolve(self, path: str) -> Node:
        node = self.root
        for comp in paths.components(path):
            if not node.is_dir:
                raise NotADirectory(f"{path!r}: {node.name!r} is not a directory")
            child = node.children.get(comp)
            if child is None:
                raise NotFound(f"{path!r}: no such entry {comp!r}")
            node = child
        return node

    def _resolve_parent(self, path: str) -> tuple[Node, str]:
        comps = paths.components(path)
        if not comps:
            raise PathError("operation on the file-set root")
        parent = self._resolve(paths.parent(path))
        if not parent.is_dir:
            raise NotADirectory(f"{path!r}: parent is not a directory")
        return parent, comps[-1]

    def exists(self, path: str) -> bool:
        """True when ``path`` resolves in this file set."""
        try:
            self._resolve(path)
            return True
        except FSError:
            return False

    # ------------------------------------------------------------------
    # Metadata operations
    # ------------------------------------------------------------------
    def mkdir(self, path: str, owner: str = "root", now: float = 0.0) -> Node:
        """Create a directory; returns the new node."""
        parent, name = self._resolve_parent(path)
        if name in parent.children:
            raise AlreadyExists(f"{path!r} already exists")
        node = Node(name=name, kind=NodeKind.DIRECTORY,
                    attrs=Attributes(mode=0o755, owner=owner, ctime=now, mtime=now))
        parent.children[name] = node
        parent.attrs.mtime = now
        self._generation += 1
        return node

    def create(self, path: str, owner: str = "root", now: float = 0.0) -> Node:
        """Create a file; returns the new node."""
        parent, name = self._resolve_parent(path)
        if name in parent.children:
            raise AlreadyExists(f"{path!r} already exists")
        node = Node(name=name, kind=NodeKind.FILE,
                    attrs=Attributes(owner=owner, ctime=now, mtime=now))
        parent.children[name] = node
        parent.attrs.mtime = now
        self._generation += 1
        return node

    def stat(self, path: str) -> Attributes:
        """Copy of the node's attributes."""
        return self._resolve(path).attrs.copy()

    def setattr(self, path: str, now: float = 0.0, **changes: Any) -> Attributes:
        """Update attributes; returns the new values."""
        node = self._resolve(path)
        for key, value in changes.items():
            if not hasattr(node.attrs, key):
                raise FSError(f"unknown attribute {key!r}")
            setattr(node.attrs, key, value)
        node.attrs.mtime = now
        self._generation += 1
        return node.attrs.copy()

    def readdir(self, path: str) -> list[str]:
        """Sorted child names of a directory."""
        node = self._resolve(path)
        if not node.is_dir:
            raise NotADirectory(f"{path!r} is not a directory")
        return sorted(node.children)

    def unlink(self, path: str, now: float = 0.0) -> None:
        """Remove a file (not a directory)."""
        parent, name = self._resolve_parent(path)
        node = parent.children.get(name)
        if node is None:
            raise NotFound(f"{path!r}: no such entry")
        if node.is_dir:
            raise FSError(f"{path!r} is a directory; use rmdir")
        del parent.children[name]
        parent.attrs.mtime = now
        self._generation += 1

    def rmdir(self, path: str, now: float = 0.0) -> None:
        """Remove an empty directory."""
        parent, name = self._resolve_parent(path)
        node = parent.children.get(name)
        if node is None:
            raise NotFound(f"{path!r}: no such entry")
        if not node.is_dir:
            raise NotADirectory(f"{path!r} is not a directory")
        if node.children:
            raise NotEmpty(f"{path!r} is not empty")
        del parent.children[name]
        parent.attrs.mtime = now
        self._generation += 1

    def rename(self, src: str, dst: str, now: float = 0.0) -> None:
        """Rename within this file set (cross-file-set renames are rejected
        one level up, by the metadata service)."""
        src_parent, src_name = self._resolve_parent(src)
        node = src_parent.children.get(src_name)
        if node is None:
            raise NotFound(f"{src!r}: no such entry")
        if paths.is_ancestor(src, dst):
            raise FSError(f"cannot rename {src!r} into itself")
        dst_parent, dst_name = self._resolve_parent(dst)
        if dst_name in dst_parent.children:
            raise AlreadyExists(f"{dst!r} already exists")
        del src_parent.children[src_name]
        node.name = dst_name
        dst_parent.children[dst_name] = node
        src_parent.attrs.mtime = now
        dst_parent.attrs.mtime = now
        self._generation += 1

    # ------------------------------------------------------------------
    # Introspection and images
    # ------------------------------------------------------------------
    def walk(self) -> Iterator[tuple[str, Node]]:
        """Yield (path, node) for every node, root first, sorted."""
        stack: list[tuple[str, Node]] = [(paths.ROOT, self.root)]
        while stack:
            path, node = stack.pop()
            yield path, node
            for name in sorted(node.children, reverse=True):
                child = node.children[name]
                stack.append((paths.join(path, name), child))

    def count_nodes(self) -> int:
        """Total nodes in the tree (including the root)."""
        return sum(1 for _ in self.walk())

    def to_image(self) -> dict:
        """Serialize to a plain-dict disk image (shared-disk flush)."""
        def ser(node: Node) -> dict:
            return {
                "name": node.name,
                "kind": node.kind.value,
                "inode": node.inode,
                "attrs": vars(node.attrs).copy(),
                "children": [ser(c) for _, c in sorted(node.children.items())],
            }

        return {
            "fileset": self.fileset,
            "generation": self._generation,
            "root": ser(self.root),
        }

    @classmethod
    def from_image(cls, image: dict) -> "Namespace":
        """Deserialize a disk image (shared-disk load on the acquirer)."""
        def deser(data: dict) -> Node:
            node = Node(
                name=data["name"],
                kind=NodeKind(data["kind"]),
                attrs=Attributes(**data["attrs"]),
            )
            node.inode = data["inode"]
            for child in data["children"]:
                c = deser(child)
                node.children[c.name] = c
            return node

        ns = cls(image["fileset"])
        ns.root = deser(image["root"])
        ns._generation = image["generation"]
        return ns
