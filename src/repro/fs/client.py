"""Client-side API for the metadata cluster.

"In a typical file access, the client first obtains metadata and locks for
a file from the Storage Tank servers and then fetches data by sending I/O
requests directly to shared disks on the SAN" (§2).  The client here
implements exactly the first half: a thin session wrapper that builds
:class:`repro.fs.ops.Operation` messages, routes them through the cluster,
and unwraps results.  Data I/O never touches the metadata servers, so it
does not appear in this model.
"""

from __future__ import annotations

from typing import Any

from .cluster import MetadataCluster
from .locks import LockMode
from .namespace import Attributes
from .ops import Operation, OpResult, OpType


class ClientError(Exception):
    """An operation failed; carries the server-side error string."""


class FileSystemClient:
    """One client session against a :class:`MetadataCluster`."""

    def __init__(self, cluster: MetadataCluster, name: str = "client0") -> None:
        self.cluster = cluster
        self.name = name
        self.clock = 0.0
        self.ops_sent = 0

    # ------------------------------------------------------------------
    def _call(self, op: OpType, path: str, **args: Any) -> OpResult:
        self.clock += 1.0  # logical client clock for mtime ordering
        operation = Operation(
            op=op, path=path, client=self.name, time=self.clock, args=args
        )
        self.ops_sent += 1
        _server, result = self.cluster.submit(operation)
        return result

    def _must(self, op: OpType, path: str, **args: Any) -> Any:
        result = self._call(op, path, **args)
        if not result.ok:
            raise ClientError(result.error or "unknown error")
        return result.value

    # ------------------------------------------------------------------
    # POSIX-ish surface
    # ------------------------------------------------------------------
    def mkdir(self, path: str) -> int:
        """Create a directory; returns its inode."""
        return self._must(OpType.MKDIR, path)

    def create(self, path: str) -> int:
        """Create a file; returns its inode."""
        return self._must(OpType.CREATE, path)

    def stat(self, path: str) -> Attributes:
        """Attributes of ``path``."""
        return self._must(OpType.STAT, path)

    def exists(self, path: str) -> bool:
        """True when ``path`` resolves."""
        return bool(self._must(OpType.LOOKUP, path))

    def readdir(self, path: str) -> list[str]:
        """Sorted names in directory ``path``."""
        return self._must(OpType.READDIR, path)

    def setattr(self, path: str, **changes: Any) -> Attributes:
        """Update attributes of ``path``; returns the new attributes."""
        return self._must(OpType.SETATTR, path, **changes)

    def unlink(self, path: str) -> None:
        """Remove the file at ``path``."""
        self._must(OpType.UNLINK, path)

    def rmdir(self, path: str) -> None:
        """Remove the empty directory at ``path``."""
        self._must(OpType.RMDIR, path)

    def rename(self, src: str, dst: str) -> None:
        """Rename ``src`` to ``dst`` (within one file set)."""
        self._must(OpType.RENAME, src, dst=dst)

    # ------------------------------------------------------------------
    # Locks (granted by the owning metadata server)
    # ------------------------------------------------------------------
    def lock(self, path: str, exclusive: bool = False) -> bool:
        """Acquire a data lock; returns True if granted, False if queued."""
        mode = LockMode.EXCLUSIVE if exclusive else LockMode.SHARED
        return bool(self._must(OpType.LOCK, path, mode=mode))

    def unlock(self, path: str) -> None:
        """Release this session's lock on ``path``."""
        self._must(OpType.UNLOCK, path)
