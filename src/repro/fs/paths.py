"""Path handling for the global file-system namespace.

Storage Tank presents a single global namespace; file sets are subtrees of
it (§2).  Paths here are absolute, ``/``-separated, normalized strings.
The helpers are deliberately strict — the metadata service validates every
client-supplied path before touching the tree.
"""

from __future__ import annotations

ROOT = "/"


class PathError(ValueError):
    """Raised for malformed or illegal paths."""


def normalize(path: str) -> str:
    """Normalize ``path`` to canonical absolute form.

    Rejects relative paths, empty components, ``.``/``..`` traversal, and
    embedded NULs; collapses duplicate slashes and trailing slashes.
    """
    if not isinstance(path, str) or not path:
        raise PathError(f"empty path {path!r}")
    if "\x00" in path:
        raise PathError("path contains NUL")
    if not path.startswith("/"):
        raise PathError(f"path {path!r} is not absolute")
    parts = [p for p in path.split("/") if p != ""]
    for part in parts:
        if part in (".", ".."):
            raise PathError(f"path {path!r} contains traversal component {part!r}")
    return ROOT + "/".join(parts)


def components(path: str) -> list[str]:
    """The normalized path's components (empty list for the root)."""
    norm = normalize(path)
    return [] if norm == ROOT else norm[1:].split("/")


def parent(path: str) -> str:
    """Parent directory of ``path`` (the root is its own parent... no:
    asking for the root's parent is an error)."""
    comps = components(path)
    if not comps:
        raise PathError("the root has no parent")
    return ROOT + "/".join(comps[:-1]) if len(comps) > 1 else ROOT


def basename(path: str) -> str:
    """Final component of ``path``."""
    comps = components(path)
    if not comps:
        raise PathError("the root has no basename")
    return comps[-1]


def join(base: str, *names: str) -> str:
    """Join a base path with child names (names must be single components)."""
    norm = normalize(base)
    for name in names:
        if not name or "/" in name or name in (".", ".."):
            raise PathError(f"illegal path component {name!r}")
    suffix = "/".join(names)
    if not suffix:
        return norm
    return (norm if norm != ROOT else "") + "/" + suffix


def is_ancestor(ancestor: str, path: str) -> bool:
    """True when ``ancestor`` is ``path`` or a proper ancestor of it."""
    a = components(ancestor)
    p = components(path)
    return len(a) <= len(p) and p[: len(a)] == a
