"""The metadata service: executes operations on owned file sets.

One :class:`MetadataService` instance models one Storage Tank server's
metadata engine: the in-memory namespaces of the file sets it currently
owns, plus the lock table.  Ownership changes via the shared disk:

- :meth:`release_fileset` — flush the namespace image and forget it (the
  paper's "the shedding server flushes its cache with respect to shed file
  sets to create a consistent disk image"); the lock table for the file
  set is volatile and is discarded (clients re-acquire);
- :meth:`acquire_fileset` — load the image from the shared disk ("the new
  server initializes the file set").

Operations on file sets this server does not own fail with
``not-owner`` — the routing layer (:mod:`repro.fs.cluster`) is responsible
for sending operations to the right server by hashing.
"""

from __future__ import annotations

from . import paths
from .disk import SharedDisk
from .locks import LockError, LockManager, LockMode
from .namespace import FSError, Namespace
from .ops import Operation, OpResult, OpType
from .paths import PathError


class MetadataService:
    """One server's metadata engine."""

    def __init__(self, name: str, disk: SharedDisk) -> None:
        self.name = name
        self.disk = disk
        self._owned: dict[str, Namespace] = {}
        self.locks = LockManager()
        self.ops_served = 0
        self.ops_failed = 0

    # ------------------------------------------------------------------
    # Ownership
    # ------------------------------------------------------------------
    def owned_filesets(self) -> list[str]:
        """Names of the file sets this server currently owns."""
        return sorted(self._owned)

    def owns(self, fileset: str) -> bool:
        """True when this server owns ``fileset``."""
        return fileset in self._owned

    def acquire_fileset(self, fileset: str) -> None:
        """Initialize a gained file set from its shared-disk image."""
        if fileset in self._owned:
            raise FSError(f"{self.name}: already owns {fileset!r}")
        self._owned[fileset] = self.disk.load(fileset)

    def release_fileset(self, fileset: str, now: float = 0.0) -> None:
        """Flush and forget a shed file set (consistent disk image)."""
        namespace = self._owned.get(fileset)
        if namespace is None:
            raise FSError(f"{self.name}: does not own {fileset!r}")
        self.disk.flush(namespace, server=self.name, now=now)
        del self._owned[fileset]

    def crash(self) -> list[str]:
        """Server failure: in-memory state is lost *without* flushing.

        Returns the file sets that were owned; their last flushed images on
        the shared disk are what the recovering owners will load — exactly
        the shared-disk recovery story of §1.
        """
        lost = self.owned_filesets()
        self._owned.clear()
        self.locks = LockManager()
        return lost

    def flush_all(self, now: float = 0.0) -> None:
        """Periodic checkpoint of every owned namespace."""
        for namespace in self._owned.values():
            self.disk.flush(namespace, server=self.name, now=now)

    # ------------------------------------------------------------------
    # Operation execution
    # ------------------------------------------------------------------
    def execute(self, fileset: str, operation: Operation) -> OpResult:
        """Execute one metadata operation against an owned file set."""
        namespace = self._owned.get(fileset)
        if namespace is None:
            self.ops_failed += 1
            return OpResult.failure(f"not-owner:{self.name}")
        try:
            result = self._dispatch(namespace, operation)
        except (FSError, PathError, LockError) as exc:
            self.ops_failed += 1
            return OpResult.failure(f"{type(exc).__name__}: {exc}")
        self.ops_served += 1
        return result

    def _dispatch(self, ns: Namespace, op: Operation) -> OpResult:
        now = op.time
        kind = op.op
        if kind is OpType.STAT:
            return OpResult.success(ns.stat(op.path))
        if kind is OpType.LOOKUP:
            return OpResult.success(ns.exists(op.path))
        if kind is OpType.READDIR:
            return OpResult.success(ns.readdir(op.path))
        if kind is OpType.CREATE:
            node = ns.create(op.path, owner=op.client, now=now)
            return OpResult.success(node.inode)
        if kind is OpType.MKDIR:
            node = ns.mkdir(op.path, owner=op.client, now=now)
            return OpResult.success(node.inode)
        if kind is OpType.SETATTR:
            attrs = ns.setattr(op.path, now=now, **op.args)
            return OpResult.success(attrs)
        if kind is OpType.UNLINK:
            ns.unlink(op.path, now=now)
            return OpResult.success()
        if kind is OpType.RMDIR:
            ns.rmdir(op.path, now=now)
            return OpResult.success()
        if kind is OpType.RENAME:
            dst = op.args.get("dst")
            if not dst:
                return OpResult.failure("rename requires args['dst']")
            ns.rename(op.path, dst, now=now)
            return OpResult.success()
        if kind is OpType.LOCK:
            mode = op.args.get("mode", LockMode.SHARED)
            if not ns.exists(op.path):
                return OpResult.failure(f"NotFound: {op.path!r}")
            granted = self.locks.acquire(op.client, self._lock_key(ns, op.path), mode)
            return OpResult.success(granted)
        if kind is OpType.UNLOCK:
            self.locks.release(op.client, self._lock_key(ns, op.path))
            return OpResult.success()
        raise FSError(f"unhandled operation {kind!r}")  # pragma: no cover

    @staticmethod
    def _lock_key(ns: Namespace, path: str) -> str:
        return f"{ns.fileset}:{paths.normalize(path)}"

    # ------------------------------------------------------------------
    def recover_client(self, client: str) -> int:
        """Failed-client detection: release all of its locks."""
        return len(self.locks.release_client(client))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetadataService({self.name!r}, owns={self.owned_filesets()!r})"
        )
