"""Shared-disk file-system substrate (the Storage Tank model of §2).

Where :mod:`repro.cluster` models the *timing* of metadata service (FIFO
queues, latencies), this package models its *semantics*: a global
namespace partitioned into file sets, real metadata operations
(create/stat/rename/readdir/locks), namespace images on a shared disk,
and ANU-routed ownership that really flushes and loads images when file
sets move.

- :class:`~repro.fs.cluster.MetadataCluster` — servers + shared disk +
  ANU routing, executing real operations;
- :class:`~repro.fs.client.FileSystemClient` — POSIX-ish client sessions;
- :class:`~repro.fs.namespace.Namespace` — one file set's metadata tree;
- :class:`~repro.fs.locks.LockManager` — shared/exclusive file locks with
  failed-client recovery;
- :class:`~repro.fs.disk.SharedDisk` — versioned file-set images with
  stale-flush fencing;
- :mod:`~repro.fs.workload` — semantic operation streams and the bridge
  to the queueing simulator's traces.
"""

from .client import ClientError, FileSystemClient
from .cluster import FileSetRegistry, MetadataCluster
from .disk import DiskError, SharedDisk
from .locks import LockError, LockManager, LockMode
from .namespace import (
    AlreadyExists,
    Attributes,
    FSError,
    Namespace,
    Node,
    NodeKind,
    NotADirectory,
    NotEmpty,
    NotFound,
)
from .ops import MEAN_WEIGHT, Operation, OpResult, OpType
from .paths import PathError
from .service import MetadataService
from .simulation import FullSystemConfig, FullSystemResult, FullSystemSimulation
from .workload import (
    DEFAULT_MIX,
    FsWorkloadConfig,
    generate_operations,
    ops_to_trace,
    populate,
)

__all__ = [
    "MetadataCluster",
    "FileSetRegistry",
    "FileSystemClient",
    "ClientError",
    "MetadataService",
    "Namespace",
    "Node",
    "NodeKind",
    "Attributes",
    "FSError",
    "NotFound",
    "AlreadyExists",
    "NotADirectory",
    "NotEmpty",
    "PathError",
    "SharedDisk",
    "DiskError",
    "LockManager",
    "LockMode",
    "LockError",
    "Operation",
    "OpResult",
    "OpType",
    "MEAN_WEIGHT",
    "FsWorkloadConfig",
    "DEFAULT_MIX",
    "generate_operations",
    "ops_to_trace",
    "populate",
    "FullSystemSimulation",
    "FullSystemConfig",
    "FullSystemResult",
]
