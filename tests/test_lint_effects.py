"""The effect/purity analysis rules (RPL104–106) and the shim rule (RPL011).

Bad-fixture projects through :func:`repro.lint.lint_project`, each with a
clean twin proving the rule converges to zero on correct code, plus
suppression handling.  The fixtures mirror the real findings this rule
family surfaced: ambient reads on seeded paths (RPL104), the membership
director's emit-then-validate bug (RPL105), and the interval's
repartition-then-validate bug (RPL106).
"""

from repro.lint import lint_project
from repro.lint.flow.purity import ImpureAmbientRead
from repro.lint.flow.telemetry_gap import TelemetryGap
from repro.lint.flow.torn_state import MutateThenRaise
from repro.lint.rules.shims import ShimImport


def ids(findings):
    return [f.rule_id for f in findings]


# ----------------------------------------------------------------------
# RPL104 — ambient reads reachable from seeded entry points
# ----------------------------------------------------------------------
def test_rpl104_flags_clock_env_and_mutable_global_on_seeded_path():
    findings = lint_project({
        "src/repro/runtime/scenario.py": (
            "import os\n"
            "from ..util.helpers import jitter\n"
            "class Scenario:\n"
            "    def run_cluster(self):\n"
            "        return jitter() + debug_flag()\n"
            "def debug_flag():\n"
            "    return 1 if os.environ.get('DEBUG') else 0\n"
        ),
        "src/repro/util/helpers.py": (
            "import time\n"
            "_CALLS = 0\n"
            "def bump():\n"
            "    global _CALLS\n"
            "    _CALLS = _CALLS + 1\n"
            "def jitter():\n"
            "    return time.time() + _CALLS\n"
        ),
    }, rules=[ImpureAmbientRead])
    assert ids(findings) == ["RPL104"] * 3
    messages = " | ".join(f.message for f in findings)
    assert "wall-clock" in messages
    assert "environ read of os.environ" in messages
    assert "mutable-global" in messages
    assert "Scenario.run_cluster" in messages


def test_rpl104_ignores_unreachable_reads_and_threaded_values():
    findings = lint_project({
        "src/repro/runtime/scenario.py": (
            "class Scenario:\n"
            "    def run_cluster(self, now):\n"
            "        return now + 1.0\n"
        ),
        "src/repro/util/helpers.py": (
            # Ambient read, but nothing seeded can reach it.
            "import time\n"
            "def wall_clock_tool():\n"
            "    return time.time()\n"
        ),
    }, rules=[ImpureAmbientRead])
    assert findings == []


def test_rpl104_exempts_the_contracts_module():
    findings = lint_project({
        "src/repro/runtime/scenario.py": (
            "from ..contracts import enabled\n"
            "class Scenario:\n"
            "    def run_cluster(self):\n"
            "        return enabled()\n"
        ),
        "src/repro/contracts.py": (
            "import os\n"
            "def enabled():\n"
            "    return os.environ.get('REPRO_CONTRACTS') != 'off'\n"
        ),
    }, rules=[ImpureAmbientRead])
    assert findings == []


# ----------------------------------------------------------------------
# RPL105 — telemetry pairs split by an exception path
# ----------------------------------------------------------------------
PAIR_PREAMBLE = (
    "from ..runtime.telemetry import TelemetryRecord\n"
    "class Started(TelemetryRecord):\n"
    "    pass\n"
    "class Done(TelemetryRecord):\n"
    "    pass\n"
)


def test_rpl105_flags_own_raise_between_paired_emissions():
    findings = lint_project({
        "src/repro/membership/pair.py": PAIR_PREAMBLE + (
            "class Driver:\n"
            "    def __init__(self, sink):\n"
            "        self.sink = sink\n"
            "    def apply(self, n):\n"
            "        if self.sink.enabled:\n"
            "            self.sink.emit(Started(n))\n"
            "        if n < 0:\n"
            "            raise ValueError('rejected after announcing')\n"
            "        if self.sink.enabled:\n"
            "            self.sink.emit(Done(n))\n"
        ),
    }, rules=[TelemetryGap])
    assert ids(findings) == ["RPL105"]
    assert "Done" in findings[0].message


def test_rpl105_flags_raising_validator_called_between_emissions():
    findings = lint_project({
        "src/repro/membership/pair.py": PAIR_PREAMBLE + (
            "class Roster:\n"
            "    def __init__(self):\n"
            "        self.names = []\n"
            "    def commission(self, name):\n"
            "        if name in self.names:\n"
            "            raise ValueError(name)\n"
            "        self.names.append(name)\n"
            "class Driver:\n"
            "    def __init__(self, roster: Roster, sink):\n"
            "        self.roster = roster\n"
            "        self.sink = sink\n"
            "    def apply(self, name):\n"
            "        if self.sink.enabled:\n"
            "            self.sink.emit(Started(name))\n"
            "        self.roster.commission(name)\n"
            "        if self.sink.enabled:\n"
            "            self.sink.emit(Done(name))\n"
        ),
    }, rules=[TelemetryGap])
    assert ids(findings) == ["RPL105"]
    assert "commission" in findings[0].message


def test_rpl105_clean_when_validation_precedes_first_emission():
    findings = lint_project({
        "src/repro/membership/pair.py": PAIR_PREAMBLE + (
            "class Driver:\n"
            "    def __init__(self, sink):\n"
            "        self.sink = sink\n"
            "    def apply(self, n):\n"
            "        if n < 0:\n"
            "            raise ValueError('rejected before announcing')\n"
            "        if self.sink.enabled:\n"
            "            self.sink.emit(Started(n))\n"
            "        if self.sink.enabled:\n"
            "            self.sink.emit(Done(n))\n"
        ),
    }, rules=[TelemetryGap])
    assert findings == []


def test_rpl105_exempts_assertion_raises_and_suppressions():
    base = PAIR_PREAMBLE + (
        "class Driver:\n"
        "    def __init__(self, sink):\n"
        "        self.sink = sink\n"
        "    def apply(self, n):\n"
        "        if self.sink.enabled:\n"
        "            self.sink.emit(Started(n))\n"
        "        if n < 0:\n"
        "            {raise_line}\n"
        "        if self.sink.enabled:\n"
        "            self.sink.emit(Done(n))\n"
    )
    closed_enum = lint_project({
        "src/repro/membership/pair.py": base.format(
            raise_line="raise AssertionError('unreachable')"
        ),
    }, rules=[TelemetryGap])
    assert closed_enum == []
    suppressed = lint_project({
        "src/repro/membership/pair.py": base.format(
            raise_line="raise ValueError(n)  # repro-lint: disable=RPL105"
        ),
    }, rules=[TelemetryGap])
    assert suppressed == []


# ----------------------------------------------------------------------
# RPL106 — protected state written before a reachable raise
# ----------------------------------------------------------------------
BOX_PREAMBLE = (
    "from ..contracts import checks_invariants\n"
    "class Box:\n"
    "    def __init__(self):\n"
    "        self.items = ()\n"
    "        self.capacity = 4\n"
    "    def check_invariants(self):\n"
    "        assert len(self.items) <= self.capacity\n"
    "    def _grow(self):\n"
    "        self.capacity = self.capacity * 2\n"
)


def test_rpl106_flags_direct_write_and_helper_write_before_raise():
    findings = lint_project({
        "src/repro/core/box.py": BOX_PREAMBLE + (
            "    @checks_invariants\n"
            "    def bad_direct(self, item):\n"
            "        self.items = self.items + (item,)\n"
            "        if item is None:\n"
            "            raise ValueError('no item')\n"
            "    @checks_invariants\n"
            "    def bad_helper(self, item):\n"
            "        self._grow()\n"
            "        if item is None:\n"
            "            raise ValueError('no item')\n"
        ),
    }, rules=[MutateThenRaise])
    assert ids(findings) == ["RPL106", "RPL106"]
    messages = " | ".join(f.message for f in findings)
    assert "self.items" in messages
    assert "self._grow()" in messages


def test_rpl106_clean_when_raises_precede_writes():
    findings = lint_project({
        "src/repro/core/box.py": BOX_PREAMBLE + (
            "    @checks_invariants\n"
            "    def good(self, item):\n"
            "        if item is None:\n"
            "            raise ValueError('no item')\n"
            "        self._grow()\n"
            "        self.items = self.items + (item,)\n"
        ),
    }, rules=[MutateThenRaise])
    assert findings == []


def test_rpl106_ignores_undecorated_methods_and_caught_raises():
    findings = lint_project({
        "src/repro/core/box.py": BOX_PREAMBLE + (
            # Undecorated helper: no atomicity promise, not scanned.
            "    def plain(self, item):\n"
            "        self.items = self.items + (item,)\n"
            "        raise ValueError('helper')\n"
            # Raise inside try-with-handler never escapes the mutator.
            "    @checks_invariants\n"
            "    def guarded(self, item):\n"
            "        self._grow()\n"
            "        try:\n"
            "            if item is None:\n"
            "                raise ValueError('no item')\n"
            "        except ValueError:\n"
            "            pass\n"
        ),
    }, rules=[MutateThenRaise])
    assert findings == []


# ----------------------------------------------------------------------
# RPL011 — shim-module imports
# ----------------------------------------------------------------------
def test_rpl011_flags_absolute_relative_and_member_shim_imports():
    findings = lint_project({
        "tests/test_x.py": (
            "from repro.cluster.faults import FaultSchedule\n"
        ),
        "src/repro/experiments/r.py": (
            "from ..cluster.faults import FaultSchedule\n"
        ),
        "src/repro/cluster/__init__.py": (
            "from .faults import FaultSchedule\n"
        ),
        "src/repro/other.py": (
            "import repro.cluster.faults\n"
            "from repro.cluster import faults\n"
        ),
    }, rules=[ShimImport])
    assert ids(findings) == ["RPL011"] * 5
    assert all("repro.membership.faults" in f.message for f in findings)


def test_rpl011_clean_on_canonical_imports():
    findings = lint_project({
        "src/repro/experiments/r.py": (
            "from ..membership.faults import FaultSchedule\n"
            "from ..cluster import ClusterSimulation\n"
        ),
        "tests/test_x.py": (
            "from repro.membership.faults import FaultSchedule\n"
        ),
    }, rules=[ShimImport])
    assert findings == []
