"""The concurrency-safety (csan) rules, RPL107–RPL110.

Bad-fixture projects through :func:`repro.lint.lint_project`, each with
a clean twin proving the rule converges to zero on correct code, plus
suppression handling.  The fixtures mirror the hazards the sweep engine
is built to avoid: parent-process memo state read from workers
(RPL107), live objects pickled across the boundary (RPL108), merges
that bake in completion order (RPL109), and worker randomness not split
from the cell seed (RPL110).
"""

from repro.lint import lint_project
from repro.lint.flow.fork_state import ForkDivergentState
from repro.lint.flow.pickle_safety import PickleSafety
from repro.lint.flow.reduce_order import OrderDependentReduce
from repro.lint.flow.rng_split import WorkerRngSplit


def ids(findings):
    return [f.rule_id for f in findings]


# ----------------------------------------------------------------------
# RPL107 — fork-divergent state reachable from a worker entry
# ----------------------------------------------------------------------
def test_rpl107_flags_memo_state_reachable_from_worker_entry():
    findings = lint_project({
        "src/repro/sweep/fixture.py": (
            "import functools\n"
            "from .api import worker_entry\n"
            "_MEMO = {}\n"
            "@worker_entry\n"
            "def run_cell(payload):\n"
            "    _MEMO[payload['cell']] = payload\n"
            "    return expensive(payload['seed'])\n"
            "@functools.lru_cache(maxsize=None)\n"
            "def expensive(seed):\n"
            "    return seed * 2\n"
        ),
    }, rules=[ForkDivergentState])
    assert ids(findings) == ["RPL107"] * 2
    messages = " | ".join(f.message for f in findings)
    assert "_MEMO" in messages
    assert "expensive" in messages


def test_rpl107_clean_when_state_is_registered_for_clearing():
    findings = lint_project({
        "src/repro/sweep/fixture.py": (
            "import functools\n"
            "from .api import register_process_cache, worker_entry\n"
            "_MEMO = {}\n"
            "register_process_cache(_MEMO.clear)\n"
            "@worker_entry\n"
            "def run_cell(payload):\n"
            "    _MEMO[payload['cell']] = payload\n"
            "    return expensive(payload['seed'])\n"
            "@functools.lru_cache(maxsize=None)\n"
            "def expensive(seed):\n"
            "    return seed * 2\n"
            "register_process_cache(expensive.cache_clear)\n"
        ),
    }, rules=[ForkDivergentState])
    assert findings == []


def test_rpl107_ignores_state_no_worker_reaches():
    findings = lint_project({
        "src/repro/sweep/fixture.py": (
            # Same memo pattern, but nothing marks or submits a worker.
            "import functools\n"
            "_MEMO = {}\n"
            "def run_cell(payload):\n"
            "    _MEMO[payload['cell']] = payload\n"
            "    return expensive(payload['seed'])\n"
            "@functools.lru_cache(maxsize=None)\n"
            "def expensive(seed):\n"
            "    return seed * 2\n"
        ),
    }, rules=[ForkDivergentState])
    assert findings == []


def test_rpl107_suppression_comment_silences_the_finding():
    findings = lint_project({
        "src/repro/sweep/fixture.py": (
            "from .api import worker_entry\n"
            "_MEMO = {}\n"
            "@worker_entry\n"
            "def run_cell(payload):\n"
            "    _MEMO[payload['cell']] = payload"
            "  # repro-lint: disable=RPL107\n"
            "    return payload['seed']\n"
        ),
    }, rules=[ForkDivergentState])
    assert findings == []


# ----------------------------------------------------------------------
# RPL108 — unpicklable values crossing the process boundary
# ----------------------------------------------------------------------
def test_rpl108_flags_lambda_and_live_object_submissions():
    findings = lint_project({
        "src/repro/sim/engine.py": (
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self.now = 0.0\n"
        ),
        "src/repro/sweep/fixture.py": (
            "import multiprocessing\n"
            "from ..sim.engine import Engine\n"
            "def launch(items):\n"
            "    engine = Engine()\n"
            "    with multiprocessing.Pool(2) as pool:\n"
            "        pool.apply(step, engine)\n"
            "        return pool.map(lambda item: item, items)\n"
            "def step(engine):\n"
            "    return engine\n"
        ),
    }, rules=[PickleSafety])
    assert "RPL108" in ids(findings)
    messages = " | ".join(f.message for f in findings)
    assert "lambda" in messages
    assert "Engine" in messages


def test_rpl108_flags_worker_entry_returning_live_state():
    findings = lint_project({
        "src/repro/sim/engine.py": (
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self.now = 0.0\n"
        ),
        "src/repro/sweep/fixture.py": (
            "from ..sim.engine import Engine\n"
            "from .api import worker_entry\n"
            "@worker_entry\n"
            "def run_cell(payload):\n"
            "    engine = Engine()\n"
            "    return engine\n"
        ),
    }, rules=[PickleSafety])
    assert ids(findings) == ["RPL108"]
    assert "Engine" in findings[0].message


def test_rpl108_clean_when_workers_exchange_plain_payloads():
    findings = lint_project({
        "src/repro/sweep/fixture.py": (
            "import multiprocessing\n"
            "from .api import worker_entry\n"
            "@worker_entry\n"
            "def run_cell(payload):\n"
            "    return {'cell': payload['cell'], 'value': 1}\n"
            "def launch(items):\n"
            "    with multiprocessing.Pool(2) as pool:\n"
            "        return pool.map(run_cell, items)\n"
        ),
    }, rules=[PickleSafety])
    assert findings == []


def test_rpl108_suppression_comment_silences_the_finding():
    findings = lint_project({
        "src/repro/sweep/fixture.py": (
            "import multiprocessing\n"
            "def launch(items):\n"
            "    with multiprocessing.Pool(2) as pool:\n"
            "        return pool.map(lambda item: item, items)"
            "  # repro-lint: disable=RPL108\n"
        ),
    }, rules=[PickleSafety])
    assert findings == []


# ----------------------------------------------------------------------
# RPL109 — completion-order-dependent reduce over worker results
# ----------------------------------------------------------------------
def test_rpl109_flags_positional_append_over_imap_unordered():
    findings = lint_project({
        "src/repro/sweep/fixture.py": (
            "import multiprocessing\n"
            "def merge(payloads):\n"
            "    results = []\n"
            "    total = 0.0\n"
            "    with multiprocessing.Pool() as pool:\n"
            "        for row in pool.imap_unordered(work, payloads):\n"
            "            results.append(row)\n"
            "            total += row['latency']\n"
            "    return results, total\n"
            "def work(payload):\n"
            "    return payload\n"
        ),
    }, rules=[OrderDependentReduce])
    assert ids(findings) == ["RPL109"] * 2
    messages = " | ".join(f.message for f in findings)
    assert "results.append" in messages
    assert "completion order" in messages


def test_rpl109_flags_append_over_as_completed():
    findings = lint_project({
        "src/repro/sweep/fixture.py": (
            "from concurrent.futures import ProcessPoolExecutor, as_completed\n"
            "def merge(payloads):\n"
            "    rows = []\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        futures = [pool.submit(work, p) for p in payloads]\n"
            "        for future in as_completed(futures):\n"
            "            rows.append(future.result())\n"
            "    return rows\n"
            "def work(payload):\n"
            "    return payload\n"
        ),
    }, rules=[OrderDependentReduce])
    assert ids(findings) == ["RPL109"]


def test_rpl109_clean_for_keyed_sorted_and_counted_merges():
    findings = lint_project({
        "src/repro/sweep/fixture.py": (
            "import multiprocessing\n"
            "def merge(payloads):\n"
            "    rows = {}\n"
            "    done = 0\n"
            "    ordered = []\n"
            "    with multiprocessing.Pool() as pool:\n"
            "        for row in pool.imap_unordered(work, payloads):\n"
            "            rows[row['cell']] = row\n"     # keyed store
            "            done += 1\n"                   # integer counter
            "            ordered.append(row['cell'])\n"  # sorted below
            "    ordered.sort()\n"
            "    return rows, done, ordered\n"
            "def work(payload):\n"
            "    return payload\n"
        ),
    }, rules=[OrderDependentReduce])
    assert findings == []


def test_rpl109_ignores_order_preserving_imap():
    findings = lint_project({
        "src/repro/sweep/fixture.py": (
            "import multiprocessing\n"
            "def merge(payloads):\n"
            "    results = []\n"
            "    with multiprocessing.Pool() as pool:\n"
            "        for row in pool.imap(work, payloads):\n"
            "            results.append(row)\n"
            "    return results\n"
            "def work(payload):\n"
            "    return payload\n"
        ),
    }, rules=[OrderDependentReduce])
    assert findings == []


def test_rpl109_suppression_comment_silences_the_finding():
    findings = lint_project({
        "src/repro/sweep/fixture.py": (
            "import multiprocessing\n"
            "def merge(payloads):\n"
            "    results = []\n"
            "    with multiprocessing.Pool() as pool:\n"
            "        for row in pool.imap_unordered(work, payloads):\n"
            "            results.append(row)"
            "  # repro-lint: disable=RPL109\n"
            "    return results\n"
            "def work(payload):\n"
            "    return payload\n"
        ),
    }, rules=[OrderDependentReduce])
    assert findings == []


# ----------------------------------------------------------------------
# RPL110 — worker randomness not derived from the per-cell seed
# ----------------------------------------------------------------------
def test_rpl110_flags_global_rng_and_constant_seeds_on_worker_paths():
    findings = lint_project({
        "src/repro/sim/rng.py": (
            "class StreamFactory:\n"
            "    def __init__(self, seed):\n"
            "        self.seed = seed\n"
        ),
        "src/repro/sweep/fixture.py": (
            "import random\n"
            "from ..sim.rng import StreamFactory\n"
            "from .api import worker_entry\n"
            "@worker_entry\n"
            "def run_cell(payload):\n"
            "    jitter = random.random()\n"
            "    streams = StreamFactory(0)\n"
            "    return jitter + streams.seed\n"
        ),
    }, rules=[WorkerRngSplit])
    assert ids(findings) == ["RPL110"] * 2
    messages = " | ".join(f.message for f in findings)
    assert "global-RNG draw" in messages
    assert "constant seed" in messages


def test_rpl110_clean_when_streams_come_from_the_cell_seed():
    findings = lint_project({
        "src/repro/sim/rng.py": (
            "class StreamFactory:\n"
            "    def __init__(self, seed):\n"
            "        self.seed = seed\n"
        ),
        "src/repro/sweep/fixture.py": (
            "from ..sim.rng import StreamFactory\n"
            "from .api import worker_entry\n"
            "@worker_entry\n"
            "def run_cell(payload):\n"
            "    streams = StreamFactory(payload['seed'])\n"
            "    return streams.seed\n"
        ),
    }, rules=[WorkerRngSplit])
    assert findings == []


def test_rpl110_ignores_randomness_outside_worker_paths():
    findings = lint_project({
        "src/repro/sweep/fixture.py": (
            # A global draw, but no worker entry anywhere in the project.
            "import random\n"
            "def shuffle_for_display(rows):\n"
            "    return sorted(rows, key=lambda _: random.random())\n"
        ),
    }, rules=[WorkerRngSplit])
    assert findings == []


def test_rpl110_suppression_comment_silences_the_finding():
    findings = lint_project({
        "src/repro/sweep/fixture.py": (
            "import random\n"
            "from .api import worker_entry\n"
            "@worker_entry\n"
            "def run_cell(payload):\n"
            "    return random.random()"
            "  # repro-lint: disable=RPL110\n"
        ),
    }, rules=[WorkerRngSplit])
    assert findings == []
