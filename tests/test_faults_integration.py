"""Integration tests for failure, recovery and membership changes mid-run."""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    FaultSchedule,
    paper_servers,
)
from repro.placement import ANUPolicy, ConsistentHashPolicy, SimpleRandomPolicy
from repro.workloads import SyntheticConfig, generate_synthetic


def trace(n_requests=6000, seed=3):
    return generate_synthetic(
        SyntheticConfig(n_filesets=40, n_requests=n_requests, duration=1200.0,
                        request_cost=0.3, seed=seed)
    )


def cluster(seed=1):
    return ClusterConfig(servers=paper_servers(), tuning_interval=120.0,
                         sample_window=60.0, seed=seed)


def test_server_failure_all_requests_still_complete():
    faults = FaultSchedule().fail(300.0, "server2")
    res = ClusterSimulation(cluster(), ANUPolicy(), trace(), faults).run()
    assert res.total_requests == len(trace())
    # The dead server serves nothing after t=300 (sanity via utilization).
    assert res.completed["server2"] < res.total_requests


def test_failure_and_recovery_round_trip():
    faults = FaultSchedule().fail(300.0, "server4").recover(700.0, "server4")
    res = ClusterSimulation(cluster(), ANUPolicy(), trace(), faults).run()
    assert res.total_requests == len(trace())
    # The recovered server picks work back up.
    t = trace()
    sim = ClusterSimulation(cluster(), ANUPolicy(), t,
                            FaultSchedule().fail(300.0, "server4").recover(700.0, "server4"))
    result = sim.run()
    late = result.series.counts["server4"][-3:]
    assert late.sum() > 0


def test_failed_requests_are_retried():
    # One file set, dealt to server0 by round-robin; requests arrive faster
    # than the slow server drains them, so a queue is guaranteed at t=300.
    t = generate_synthetic(
        SyntheticConfig(n_filesets=1, n_requests=2000, duration=1200.0,
                        request_cost=0.9, x_min=1.0, seed=3)
    )
    from repro.placement import RoundRobinPolicy

    faults = FaultSchedule().fail(300.0, "server0")
    res = ClusterSimulation(cluster(), RoundRobinPolicy(), t, faults).run()
    assert res.total_requests == len(t)
    # server0 had a queue at failure time: orphans were re-dispatched.
    assert res.retries > 0
    # The orphans completed elsewhere.
    assert sum(res.completed.values()) == len(t)


def test_commission_adds_capacity():
    faults = FaultSchedule().commission(600.0, "server5", speed=9.0)
    res = ClusterSimulation(cluster(), ANUPolicy(), trace(), faults).run()
    assert res.total_requests == len(trace())
    assert "server5" in res.completed
    assert res.completed["server5"] > 0


def test_decommission_drains_gracefully():
    faults = FaultSchedule().decommission(600.0, "server3")
    res = ClusterSimulation(cluster(), ANUPolicy(), trace(), faults).run()
    assert res.total_requests == len(trace())
    assert res.retries == 0  # graceful: no requests lost
    # Nothing assigned to the decommissioned server at the end.
    assert all(s != "server3" for s in res.final_assignment.values())


def test_delegate_crash_is_survivable():
    faults = FaultSchedule().delegate_crash(360.0)
    res = ClusterSimulation(cluster(), ANUPolicy(), trace(), faults).run()
    assert res.total_requests == len(trace())


def test_consistent_hash_failure_handling():
    faults = FaultSchedule().fail(300.0, "server1")
    res = ClusterSimulation(cluster(), ConsistentHashPolicy(), trace(), faults).run()
    assert res.total_requests == len(trace())
    assert all(s != "server1" for s in res.final_assignment.values())


def test_failure_preserves_most_placements_under_anu():
    """Cache preservation: a failure moves mostly the dead server's file
    sets, not everyone's."""
    t = trace()
    faults = FaultSchedule().fail(600.0, "server2")
    sim = ClusterSimulation(cluster(), ANUPolicy(), t, faults)
    res = sim.run()
    assert res.ledger.preservation > 0.6


def test_invalid_schedule_rejected_at_init():
    t = trace(n_requests=100)
    faults = FaultSchedule().fail(1.0, "ghost")
    with pytest.raises(ValueError):
        ClusterSimulation(cluster(), ANUPolicy(), t, faults)
