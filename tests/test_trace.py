"""Unit tests for the Trace container."""

import numpy as np
import pytest

from repro.workloads.trace import Trace, TraceRecord


def small_trace() -> Trace:
    return Trace(
        times=np.array([0.0, 1.0, 2.0, 2.5, 9.0]),
        fileset_ids=np.array([0, 1, 0, 2, 1]),
        costs=np.array([0.1, 0.2, 0.1, 0.3, 0.2]),
        fileset_names=["fsA", "fsB", "fsC"],
        duration=10.0,
    )


def test_basic_properties():
    t = small_trace()
    assert len(t) == 5
    assert t.n_filesets == 3
    assert t.duration == 10.0


def test_validation_rejects_bad_columns():
    with pytest.raises(ValueError):
        Trace(np.array([0.0, 1.0]), np.array([0]), np.array([0.1]), ["a"])
    with pytest.raises(ValueError):
        Trace(np.array([1.0, 0.5]), np.array([0, 0]), np.array([0.1, 0.1]), ["a"])
    with pytest.raises(ValueError):
        Trace(np.array([0.0]), np.array([1]), np.array([0.1]), ["a"])
    with pytest.raises(ValueError):
        Trace(np.array([0.0]), np.array([0]), np.array([-0.1]), ["a"])
    with pytest.raises(ValueError):
        Trace(np.array([0.0]), np.array([0]), np.array([0.1]), ["a", "a"])


def test_records_in_order():
    t = small_trace()
    recs = list(t.records())
    assert [r.fileset for r in recs] == ["fsA", "fsB", "fsA", "fsC", "fsB"]
    assert recs[0] == TraceRecord(time=0.0, fileset="fsA", cost=0.1)


def test_window_slicing():
    t = small_trace()
    sub = t.window(1.0, 3.0)
    assert len(sub) == 3
    assert sub.duration == 2.0
    assert list(sub.times) == [1.0, 2.0, 2.5]


def test_window_empty():
    t = small_trace()
    assert len(t.window(100.0, 200.0)) == 0


def test_demand_by_fileset():
    t = small_trace()
    demand = t.demand_by_fileset()
    assert demand == pytest.approx({"fsA": 0.2, "fsB": 0.4, "fsC": 0.3})
    windowed = t.demand_by_fileset(0.0, 2.2)
    assert windowed == pytest.approx({"fsA": 0.2, "fsB": 0.2, "fsC": 0.0})


def test_counts_and_heterogeneity():
    t = small_trace()
    assert t.counts_by_fileset() == {"fsA": 2, "fsB": 2, "fsC": 1}
    assert t.heterogeneity_ratio() == 2.0


def test_heterogeneity_infinite_with_silent_fileset():
    t = Trace(
        np.array([0.0]), np.array([0]), np.array([0.1]), ["a", "b"], duration=1.0
    )
    assert t.heterogeneity_ratio() == float("inf")


def test_total_work_and_offered_load():
    t = small_trace()
    assert t.total_work() == pytest.approx(0.9)
    assert t.offered_load(total_speed=9.0) == pytest.approx(0.9 / 90.0)
    with pytest.raises(ValueError):
        t.offered_load(0.0)


def test_save_load_round_trip(tmp_path):
    t = small_trace()
    path = tmp_path / "trace.npz"
    t.save(path)
    loaded = Trace.load(path)
    assert np.array_equal(loaded.times, t.times)
    assert np.array_equal(loaded.fileset_ids, t.fileset_ids)
    assert np.array_equal(loaded.costs, t.costs)
    assert loaded.fileset_names == t.fileset_names
    assert loaded.duration == t.duration


def test_from_records_sorts_and_indexes():
    recs = [
        TraceRecord(2.0, "b", 0.1),
        TraceRecord(1.0, "a", 0.2),
        TraceRecord(3.0, "a", 0.3),
    ]
    t = Trace.from_records(recs, duration=5.0)
    assert list(t.times) == [1.0, 2.0, 3.0]
    assert t.fileset_names == ["a", "b"]
    assert t.counts_by_fileset() == {"a": 2, "b": 1}


def test_empty_trace():
    t = Trace(np.empty(0), np.empty(0, dtype=int), np.empty(0), ["a"], duration=1.0)
    assert len(t) == 0
    assert t.total_work() == 0.0
    assert t.offered_load(1.0) == 0.0
    assert t.heterogeneity_ratio() == 1.0
