"""Machine-readable linter output: ``--format json`` and ``--format sarif``.

The SARIF document is validated against a vendored subset of the OASIS
SARIF 2.1.0 schema (``tests/data/sarif-2.1.0-subset-schema.json``) —
every constraint in the subset is also a constraint of the full schema,
so a pass here is necessary for GitHub code-scanning ingestion.  The
``jsonschema`` validator is an environment tool, not a project
dependency; the schema tests skip cleanly where it is absent.
"""

import json
import pathlib

import pytest

from repro.lint import lint_source
from repro.lint.cli import main
from repro.lint.output import to_json, to_sarif

SCHEMA_PATH = (
    pathlib.Path(__file__).parent / "data" / "sarif-2.1.0-subset-schema.json"
)

#: Source with two deterministic findings (RPL002 unseeded default_rng is
#: per-file and fires without any project context).
DIRTY = "import numpy as np\ngen = np.random.default_rng()\n"


def dirty_findings():
    findings = lint_source(DIRTY, path="src/repro/example.py")
    assert findings, "fixture no longer triggers any rule"
    return findings


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def test_json_roundtrip_carries_every_field():
    findings = dirty_findings()
    rows = json.loads(to_json(findings))
    assert len(rows) == len(findings)
    for row, diag in zip(rows, findings):
        assert row["path"] == diag.path
        assert row["line"] == diag.line
        assert row["col"] == diag.col
        assert row["rule_id"] == diag.rule_id
        assert row["message"] == diag.message


def test_json_of_clean_run_is_empty_array():
    assert json.loads(to_json([])) == []


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------
def test_sarif_structure():
    document = json.loads(to_sarif(dirty_findings()))
    assert document["version"] == "2.1.0"
    (run,) = document["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {res["ruleId"] for res in run["results"]} <= rule_ids
    for result in run["results"]:
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1  # SARIF columns are 1-based


def test_sarif_validates_against_schema():
    jsonschema = pytest.importorskip("jsonschema")
    schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    document = json.loads(to_sarif(dirty_findings()))
    jsonschema.validate(document, schema)


def test_sarif_of_clean_run_validates_too():
    jsonschema = pytest.importorskip("jsonschema")
    schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    document = json.loads(to_sarif([]))
    jsonschema.validate(document, schema)
    assert document["runs"][0]["results"] == []


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
def test_cli_format_sarif(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(DIRTY, encoding="utf-8")
    code = main(["--format", "sarif", "--no-cache", str(tmp_path)])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == "2.1.0"
    assert document["runs"][0]["results"]


def test_cli_format_json_clean_exit_zero(tmp_path, capsys):
    clean = tmp_path / "ok.py"
    clean.write_text("x = 1\n", encoding="utf-8")
    code = main(["--format", "json", "--no-cache", str(clean)])
    assert code == 0
    assert json.loads(capsys.readouterr().out) == []
