"""Determinism regression: same seed => bit-identical simulation.

Every figure in EXPERIMENTS.md assumes a run is a pure function of its
configuration and seed.  These tests run the same scenario twice in the
same process and demand *exact* equality — event counts, per-window
latency series arrays, final assignments, and scalar metrics — so any
stray wall-clock read, unseeded draw, or unordered iteration introduced
anywhere in the stack shows up as a hard failure here.
"""

import numpy as np

from repro import (
    ClusterConfig,
    ClusterSimulation,
    SyntheticConfig,
    generate_synthetic,
    paper_servers,
)
from repro.fs import FsWorkloadConfig, MetadataCluster, generate_operations, populate
from repro.fs.simulation import FullSystemConfig, FullSystemSimulation
from repro.placement.anu_policy import ANUPolicy

ROOTS = {f"fs{i}": f"/p{i}" for i in range(6)}
SPEEDS = {f"server{i}": float(2 * i + 1) for i in range(4)}


def _series_fingerprint(series):
    """Every array in a LatencySeries, for exact comparison."""
    return (
        series.window,
        series.times.tolist(),
        {s: series.mean_latency[s].tolist() for s in series.servers},
        {s: series.counts[s].tolist() for s in series.servers},
    )


def _run_cluster_once(seed: int):
    trace = generate_synthetic(
        SyntheticConfig(
            n_filesets=30, n_requests=4000, duration=1000.0, seed=seed
        )
    )
    config = ClusterConfig(
        servers=paper_servers(), tuning_interval=120.0,
        sample_window=60.0, seed=seed,
    )
    sim = ClusterSimulation(config, ANUPolicy(), trace)
    result = sim.run()
    return sim, result


def test_cluster_simulation_replays_bit_identically():
    sim_a, a = _run_cluster_once(seed=7)
    sim_b, b = _run_cluster_once(seed=7)
    # Event log: same number of events fired at the same final clock.
    assert sim_a.engine.events_fired == sim_b.engine.events_fired
    assert sim_a.engine.now == sim_b.engine.now
    # Scalar metrics, exactly (no tolerance).
    assert a.mean_latency == b.mean_latency
    assert a.total_requests == b.total_requests
    assert a.completed == b.completed
    assert a.moves_started == b.moves_started
    assert a.moves_completed == b.moves_completed
    assert a.retries == b.retries
    assert a.tuning_rounds == b.tuning_rounds
    assert a.final_assignment == b.final_assignment
    assert a.utilization == b.utilization
    # Full latency series, array-exact.
    assert _series_fingerprint(a.series) == _series_fingerprint(b.series)


def test_cluster_simulation_diverges_across_seeds():
    """Sanity check that the fingerprint is discriminating at all."""
    _, a = _run_cluster_once(seed=7)
    _, b = _run_cluster_once(seed=8)
    assert (
        a.completed != b.completed
        or a.mean_latency != b.mean_latency
        or a.final_assignment != b.final_assignment
    )


def _run_full_system_once(seed: int):
    workload = FsWorkloadConfig(
        n_operations=1500, duration=900.0, seed=seed, popularity_skew=1.2
    )
    gen_cluster = MetadataCluster(["gen"], ROOTS)
    ops = generate_operations(gen_cluster, workload)
    sim = FullSystemSimulation(
        FullSystemConfig(
            server_speeds=SPEEDS, fileset_roots=ROOTS,
            tuning_interval=120.0, sample_window=60.0,
            mean_op_cost=0.2, seed=seed,
        ),
        ops,
    )
    populate(sim.cluster, workload)
    return sim.run()


def test_full_system_simulation_replays_bit_identically():
    a = _run_full_system_once(seed=11)
    b = _run_full_system_once(seed=11)
    assert a.ops_completed == b.ops_completed
    assert a.ops_failed == b.ops_failed
    assert a.moves == b.moves
    assert a.tuning_rounds == b.tuning_rounds
    assert a.cluster.ownership() == b.cluster.ownership()
    assert a.cluster.placement.shares() == b.cluster.placement.shares()
    assert _series_fingerprint(a.series) == _series_fingerprint(b.series)


def test_tuning_context_rng_fallback_is_deprecated():
    """Omitting rng warns loudly (the old silent seed-0 default trap)."""
    import warnings

    import pytest

    from repro.placement.base import TuningContext

    with pytest.warns(DeprecationWarning, match="explicit rng"):
        ctx = TuningContext(
            time=0.0, filesets=[], servers=["s0"], assignment={}, reports=[]
        )
    assert ctx.rng is not None  # the fallback still works, just loudly
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # an explicit rng must stay silent
        TuningContext(
            time=0.0, filesets=[], servers=["s0"], assignment={}, reports=[],
            rng=np.random.default_rng(1),
        )


def test_harness_contexts_carry_the_run_seeded_policy_stream():
    """The runtime loop plumbs the sim's own policy stream into every
    context — two sims with different seeds must never share policy
    randomness (the regression behind the old default_factory)."""

    class ProbePolicy(ANUPolicy):
        def __init__(self):
            super().__init__()
            self.rngs = []

        def update(self, context):
            self.rngs.append(context.rng)
            return super().update(context)

    def run(seed):
        trace = generate_synthetic(
            SyntheticConfig(
                n_filesets=10, n_requests=500, duration=300.0, seed=seed
            )
        )
        policy = ProbePolicy()
        sim = ClusterSimulation(
            ClusterConfig(servers=paper_servers(), seed=seed), policy, trace
        )
        sim.run()
        return sim, policy

    sim_a, probe_a = run(seed=0)
    sim_b, probe_b = run(seed=1)
    assert probe_a.rngs and probe_b.rngs
    assert all(r is sim_a._policy_rng for r in probe_a.rngs)
    assert all(r is sim_b._policy_rng for r in probe_b.rngs)
    # Different run seeds => streams in different states, not clones.
    assert (
        probe_a.rngs[0].bit_generator.state
        != probe_b.rngs[0].bit_generator.state
    )


def test_trace_generation_is_deterministic():
    cfg = SyntheticConfig(n_filesets=25, n_requests=2000, duration=500.0, seed=3)
    t1 = generate_synthetic(cfg)
    t2 = generate_synthetic(cfg)
    assert np.array_equal(t1.times, t2.times)
    assert np.array_equal(t1.fileset_ids, t2.fileset_ids)
    assert np.array_equal(t1.costs, t2.costs)
    assert t1.fileset_names == t2.fileset_names


def test_trace_thinning_is_deterministic_and_seeded():
    cfg = SyntheticConfig(n_filesets=25, n_requests=2000, duration=500.0, seed=3)
    trace = generate_synthetic(cfg)
    thin_a = trace.thin(0.5, seed=1)
    thin_b = trace.thin(0.5, seed=1)
    thin_c = trace.thin(0.5, seed=2)
    assert np.array_equal(thin_a.times, thin_b.times)
    assert len(thin_a) != len(trace)
    assert not np.array_equal(thin_a.times, thin_c.times)
