"""Tests for FS-level workload generation and the trace bridge."""

import numpy as np
import pytest

from repro.fs import (
    FsWorkloadConfig,
    MetadataCluster,
    OpType,
    generate_operations,
    ops_to_trace,
    populate,
)

ROOTS = {f"fs{i}": f"/v{i}" for i in range(5)}


def make_cluster() -> MetadataCluster:
    return MetadataCluster(["x", "y"], ROOTS)


def test_config_validation():
    with pytest.raises(ValueError):
        FsWorkloadConfig(n_operations=-1)
    with pytest.raises(ValueError):
        FsWorkloadConfig(duration=0.0)
    with pytest.raises(ValueError):
        FsWorkloadConfig(mix={})


def test_populate_creates_structure():
    cluster = make_cluster()
    cfg = FsWorkloadConfig(files_per_fileset=8, dirs_per_fileset=2)
    created = populate(cluster, cfg)
    assert set(created) == set(ROOTS)
    files, dirs = created["fs0"]
    assert len(dirs) == 2
    assert len(files) == 8
    from repro.fs import FileSystemClient

    client = FileSystemClient(cluster)
    for f in files:
        assert client.exists(f)


def test_generated_operations_all_replayable():
    """Every generated operation succeeds when replayed in order — the
    key property that makes FS-derived traces honest."""
    cluster = make_cluster()
    ops = generate_operations(
        cluster, FsWorkloadConfig(n_operations=1500, duration=60.0, seed=3)
    )
    failures = []
    for op in ops:
        _, res = cluster.submit(op)
        if not res.ok:
            failures.append((op.op, op.path, res.error))
    assert failures == []
    cluster.check_consistency()


def test_operations_time_ordered_and_in_duration():
    cluster = make_cluster()
    cfg = FsWorkloadConfig(n_operations=500, duration=50.0, seed=1)
    ops = generate_operations(cluster, cfg)
    times = [op.time for op in ops]
    assert times == sorted(times)
    assert all(0 <= t < 50.0 for t in times)


def test_popularity_skew_shapes_distribution():
    cluster = make_cluster()
    cfg = FsWorkloadConfig(n_operations=6000, duration=100.0,
                           popularity_skew=1.5, seed=2)
    ops = generate_operations(cluster, cfg)
    counts: dict[str, int] = {}
    for op in ops:
        fs = cluster.registry.fileset_of(op.path)
        counts[fs] = counts.get(fs, 0) + 1
    ordered = sorted(counts.values())
    assert ordered[-1] > 3 * ordered[0]


def test_zero_skew_roughly_uniform():
    cluster = make_cluster()
    cfg = FsWorkloadConfig(n_operations=5000, duration=100.0,
                           popularity_skew=0.0, seed=2)
    ops = generate_operations(cluster, cfg)
    counts: dict[str, int] = {}
    for op in ops:
        fs = cluster.registry.fileset_of(op.path)
        counts[fs] = counts.get(fs, 0) + 1
    vals = np.array(list(counts.values()), dtype=float)
    assert vals.max() / vals.min() < 1.5


def test_deterministic_by_seed():
    ops1 = generate_operations(
        make_cluster(), FsWorkloadConfig(n_operations=300, duration=10.0, seed=7)
    )
    ops2 = generate_operations(
        make_cluster(), FsWorkloadConfig(n_operations=300, duration=10.0, seed=7)
    )
    assert [(o.op, o.path, o.time) for o in ops1] == [
        (o.op, o.path, o.time) for o in ops2
    ]


def test_ops_to_trace_costs_and_order():
    cluster = make_cluster()
    ops = generate_operations(
        cluster, FsWorkloadConfig(n_operations=800, duration=40.0, seed=4)
    )
    trace = ops_to_trace(ops, cluster.registry, mean_cost=0.2, duration=40.0)
    assert len(trace) == len(ops)
    assert trace.duration == 40.0
    assert np.all(np.diff(trace.times) >= 0)
    # Costs scale with op weights: readdir costs more than stat.
    readdir_cost = 0.2 * OpType.READDIR.weight / _mean_weight()
    stat_cost = 0.2 * OpType.STAT.weight / _mean_weight()
    assert readdir_cost > stat_cost
    assert set(np.round(np.unique(trace.costs), 9)) <= {
        round(0.2 * t.weight / _mean_weight(), 9) for t in OpType
    }


def _mean_weight() -> float:
    from repro.fs import MEAN_WEIGHT

    return MEAN_WEIGHT


def test_fs_trace_drives_queueing_simulator():
    """End-to-end: FS-derived trace through the queueing cluster sim."""
    from repro.cluster import ClusterConfig, ClusterSimulation, paper_servers
    from repro.placement import ANUPolicy

    cluster = make_cluster()
    ops = generate_operations(
        cluster, FsWorkloadConfig(n_operations=3000, duration=600.0, seed=5)
    )
    trace = ops_to_trace(ops, cluster.registry, mean_cost=0.2, duration=600.0)
    sim_cfg = ClusterConfig(servers=paper_servers(), tuning_interval=120.0,
                            sample_window=60.0, seed=0)
    result = ClusterSimulation(sim_cfg, ANUPolicy(), trace).run()
    assert result.total_requests == len(trace)
