"""Tests for the shifting (temporal-heterogeneity) workload."""

import numpy as np
import pytest

from repro.workloads.shifting import ShiftingConfig, generate_shifting, phase_weights


def test_config_validation():
    with pytest.raises(ValueError):
        ShiftingConfig(n_filesets=1)
    with pytest.raises(ValueError):
        ShiftingConfig(phase_length=0.0)
    with pytest.raises(ValueError):
        ShiftingConfig(phase_length=100.0, duration=50.0)
    with pytest.raises(ValueError):
        ShiftingConfig(request_cost=0.0)


def test_n_phases():
    assert ShiftingConfig(duration=5000.0, phase_length=1250.0).n_phases == 4
    assert ShiftingConfig(duration=5000.0, phase_length=1500.0).n_phases == 4


def test_phase_weights_rows_normalized_and_rotated():
    cfg = ShiftingConfig(n_filesets=50, duration=4000.0, phase_length=1000.0)
    w = phase_weights(cfg)
    assert w.shape == (4, 50)
    np.testing.assert_allclose(w.sum(axis=1), 1.0)
    # Each row is a rotation of row 0.
    rotation = cfg.n_filesets // cfg.n_phases
    np.testing.assert_allclose(w[1], np.roll(w[0], rotation))
    np.testing.assert_allclose(w[3], np.roll(w[0], 3 * rotation))


def test_exact_request_count_and_order():
    trace = generate_shifting(
        ShiftingConfig(n_filesets=30, n_requests=5000, duration=1000.0,
                       phase_length=250.0)
    )
    assert len(trace) == 5000
    assert np.all(np.diff(trace.times) >= 0)
    assert trace.times.max() < 1000.0


def test_hot_set_actually_rotates():
    cfg = ShiftingConfig(n_filesets=40, n_requests=40_000, duration=2000.0,
                         phase_length=500.0, seed=9)
    trace = generate_shifting(cfg)
    hot_per_phase = []
    for p in range(4):
        d = trace.window(p * 500.0, (p + 1) * 500.0).demand_by_fileset()
        ordered = sorted(d, key=d.get, reverse=True)[:5]
        hot_per_phase.append(set(ordered))
    # Consecutive phases have (nearly) disjoint top-5 sets.
    for a, b in zip(hot_per_phase, hot_per_phase[1:]):
        assert len(a & b) <= 1, (a, b)


def test_aggregate_rate_constant_across_phases():
    cfg = ShiftingConfig(n_filesets=40, n_requests=40_000, duration=2000.0,
                         phase_length=500.0)
    trace = generate_shifting(cfg)
    counts = [len(trace.window(p * 500.0, (p + 1) * 500.0)) for p in range(4)]
    assert max(counts) - min(counts) <= 2  # deterministic split +- rounding


def test_deterministic_by_seed():
    cfg = ShiftingConfig(n_filesets=20, n_requests=2000, duration=400.0,
                         phase_length=100.0, seed=5)
    a, b = generate_shifting(cfg), generate_shifting(cfg)
    assert np.array_equal(a.times, b.times)
    assert np.array_equal(a.fileset_ids, b.fileset_ids)


def test_partial_final_phase():
    cfg = ShiftingConfig(n_filesets=10, n_requests=1000, duration=250.0,
                         phase_length=100.0)  # phases: 100,100,50
    trace = generate_shifting(cfg)
    assert len(trace) == 1000
    # The short final phase gets proportionally fewer requests.
    last = len(trace.window(200.0, 250.0))
    first = len(trace.window(0.0, 100.0))
    assert last < first
