"""Hypothesis properties of largest-remainder rounding in
:func:`repro.core.interval.fractions_to_ticks`.

The three properties every caller (share rescaling, the delegate tuner,
server add/remove) silently relies on:

- **exact total**: the integer ticks sum to exactly ``total`` — this is
  the half-occupancy invariant at its source;
- **zero stays zero**: an idle server under top-off tuning owns nothing,
  so a zero share must never be rounded up;
- **permutation invariance**: the result depends only on the name->share
  mapping, not on dict insertion order — otherwise two nodes computing
  the same reconfiguration could disagree.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

import pytest

from repro.core.interval import HALF, IntervalError, fractions_to_ticks

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
)
share_values = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
share_maps = st.dictionaries(names, share_values, min_size=1, max_size=16)
totals = st.integers(min_value=1, max_value=HALF)


@given(shares=share_maps, total=totals)
@settings(max_examples=300)
def test_ticks_sum_exactly_to_total(shares, total):
    assume(sum(shares.values()) > 0)
    ticks = fractions_to_ticks(shares, total)
    assert sum(ticks.values()) == total
    assert set(ticks) == set(shares)
    assert all(v >= 0 for v in ticks.values())


@given(shares=share_maps, total=totals)
@settings(max_examples=300)
def test_zero_shares_stay_zero(shares, total):
    assume(sum(shares.values()) > 0)
    ticks = fractions_to_ticks(shares, total)
    for name, share in shares.items():
        if share == 0.0:
            assert ticks[name] == 0


@given(shares=share_maps, total=totals, seed=st.randoms(use_true_random=False))
@settings(max_examples=300)
def test_result_is_permutation_invariant(shares, total, seed):
    assume(sum(shares.values()) > 0)
    baseline = fractions_to_ticks(shares, total)
    items = list(shares.items())
    seed.shuffle(items)
    assert fractions_to_ticks(dict(items), total) == baseline
    assert fractions_to_ticks(dict(reversed(list(shares.items()))), total) == baseline


@given(shares=share_maps)
@settings(max_examples=200)
def test_default_total_is_half_occupancy(shares):
    assume(sum(shares.values()) > 0)
    assert sum(fractions_to_ticks(shares).values()) == HALF


def test_all_zero_and_negative_shares_rejected():
    with pytest.raises(IntervalError):
        fractions_to_ticks({"a": 0.0, "b": 0.0})
    with pytest.raises(IntervalError):
        fractions_to_ticks({"a": -1.0, "b": 2.0})


@given(
    positive=st.dictionaries(names, st.floats(0.25, 100.0, allow_nan=False),
                             min_size=1, max_size=8),
    idle=st.dictionaries(names, st.just(0.0), max_size=8),
)
@settings(max_examples=200)
def test_spill_never_lands_on_idle_servers(positive, idle):
    """Even when quotas round down hard, leftovers go to busy servers."""
    shares = {**idle, **positive}
    ticks = fractions_to_ticks(shares, total=len(shares) + 1)
    for name in idle:
        if name not in positive:
            assert ticks[name] == 0
