"""Unit tests for the partitioned unit interval."""

import pytest

from repro.core.interval import (
    HALF,
    RESOLUTION,
    IntervalError,
    MappedInterval,
    fractions_to_ticks,
    min_partitions,
)


def test_min_partitions_rule():
    assert min_partitions(1) == 4
    assert min_partitions(2) == 8
    assert min_partitions(3) == 8
    assert min_partitions(5) == 16
    assert min_partitions(7) == 16
    assert min_partitions(8) == 32
    with pytest.raises(IntervalError):
        min_partitions(0)


def test_fractions_to_ticks_sums_exactly_half():
    ticks = fractions_to_ticks({"a": 0.3, "b": 0.3, "c": 0.4})
    assert sum(ticks.values()) == HALF


def test_fractions_to_ticks_zero_share_stays_zero():
    ticks = fractions_to_ticks({"a": 1.0, "b": 0.0})
    assert ticks["b"] == 0
    assert ticks["a"] == HALF


def test_fractions_to_ticks_rejects_negative_and_all_zero():
    with pytest.raises(IntervalError):
        fractions_to_ticks({"a": -0.1, "b": 1.0})
    with pytest.raises(IntervalError):
        fractions_to_ticks({"a": 0.0, "b": 0.0})


def test_initial_equal_shares():
    iv = MappedInterval(["a", "b", "c", "d"])
    iv.check_invariants()
    for name in "abcd":
        assert iv.share_fraction(name) == pytest.approx(0.125)


def test_duplicate_and_empty_server_lists_rejected():
    with pytest.raises(IntervalError):
        MappedInterval(["a", "a"])
    with pytest.raises(IntervalError):
        MappedInterval([])


def test_locate_point_respects_regions():
    iv = MappedInterval(["a", "b"])
    # Every mapped point locates to the owner of its segment.
    for name in ("a", "b"):
        for seg in iv.segments(name):
            mid = (seg.start + seg.end) / 2
            assert iv.locate_point(mid) == name


def test_locate_point_unmapped_returns_none():
    iv = MappedInterval(["a"])
    total_mapped = sum(
        seg.length for s in iv.servers for seg in iv.segments(s)
    )
    assert total_mapped == pytest.approx(0.5)
    free = iv.free_partitions()
    assert free
    psize = 1.0 / iv.partitions
    x = (free[0] + 0.5) * psize
    assert iv.locate_point(x) is None


def test_locate_point_out_of_range():
    iv = MappedInterval(["a"])
    with pytest.raises(IntervalError):
        iv.locate_point(1.0)
    with pytest.raises(IntervalError):
        iv.locate_point(-0.01)


def test_set_shares_changes_fractions():
    iv = MappedInterval(["a", "b"])
    iv.set_shares({"a": 3.0, "b": 1.0})
    iv.check_invariants()
    assert iv.share_fraction("a") == pytest.approx(0.375)
    assert iv.share_fraction("b") == pytest.approx(0.125)


def test_set_shares_minimal_movement_on_shrink():
    """Points in an unshrunk region never move."""
    iv = MappedInterval(["a", "b", "c"])
    before = {s: iv.segments(s) for s in iv.servers}
    iv.set_shares({"a": 1.0, "b": 1.0, "c": 0.5})  # only c shrinks... and a, b grow
    # Every point of c's new region was already c's.
    for seg in iv.segments("c"):
        for old in before["c"]:
            if old.start <= seg.start and seg.end <= old.end:
                break
        else:
            pytest.fail(f"c gained space while shrinking: {seg}")


def test_set_shares_wrong_server_set_rejected():
    iv = MappedInterval(["a", "b"])
    with pytest.raises(IntervalError):
        iv.set_shares({"a": 1.0})
    with pytest.raises(IntervalError):
        iv.set_shares({"a": 1.0, "b": 1.0, "c": 1.0})


def test_share_can_go_to_zero_and_back():
    iv = MappedInterval(["a", "b"])
    iv.set_shares({"a": 1.0, "b": 0.0})
    iv.check_invariants()
    assert iv.share_ticks("b") == 0
    assert iv.segments("b") == []
    iv.set_shares({"a": 1.0, "b": 1.0})
    iv.check_invariants()
    assert iv.share_ticks("b") == HALF // 2


def test_add_server_scales_down_others():
    iv = MappedInterval(["a", "b", "c"])
    iv.add_server("d")
    iv.check_invariants()
    assert set(iv.servers) == {"a", "b", "c", "d"}
    assert iv.share_fraction("d") == pytest.approx(0.5 / 4, rel=1e-6)


def test_add_server_repartitions_when_needed():
    iv = MappedInterval(["s0", "s1", "s2"])  # p = 8
    assert iv.partitions == 8
    iv.add_server("s3")  # 2*(4+1) = 10 > 8 -> repartition to 16
    assert iv.partitions == 16
    iv.check_invariants()


def test_add_existing_server_rejected():
    iv = MappedInterval(["a"])
    with pytest.raises(IntervalError):
        iv.add_server("a")


def test_add_server_invalid_share():
    iv = MappedInterval(["a"])
    with pytest.raises(IntervalError):
        iv.add_server("b", share_fraction=0.0)
    with pytest.raises(IntervalError):
        iv.add_server("b", share_fraction=1.0)


def test_remove_server_restores_half_occupancy():
    iv = MappedInterval(["a", "b", "c"])
    iv.remove_server("b")
    iv.check_invariants()
    assert set(iv.servers) == {"a", "c"}
    assert sum(iv.shares().values()) == HALF


def test_remove_unknown_or_last_server_rejected():
    iv = MappedInterval(["a"])
    with pytest.raises(IntervalError):
        iv.remove_server("zz")
    with pytest.raises(IntervalError):
        iv.remove_server("a")


def test_remove_survivors_scale_proportionally():
    iv = MappedInterval(["a", "b", "c", "d"])
    iv.set_shares({"a": 4.0, "b": 2.0, "c": 1.0, "d": 1.0})
    iv.remove_server("d")
    iv.check_invariants()
    # a:b:c stays 4:2:1.
    assert iv.share_ticks("a") / iv.share_ticks("b") == pytest.approx(2.0, rel=1e-9)
    assert iv.share_ticks("b") / iv.share_ticks("c") == pytest.approx(2.0, rel=1e-9)


def test_repartition_preserves_point_ownership():
    iv = MappedInterval(["a", "b", "c"], shares={"a": 0.7, "b": 0.2, "c": 0.1})
    points = [i / 997 for i in range(997)]
    before = [iv.locate_point(x) for x in points]
    iv.repartition()
    iv.check_invariants()
    after = [iv.locate_point(x) for x in points]
    assert before == after


def test_repartition_doubles_partition_count():
    iv = MappedInterval(["a"])
    p = iv.partitions
    iv.repartition()
    assert iv.partitions == 2 * p


def test_segments_merge_adjacent():
    iv = MappedInterval(["a"])
    segs = iv.segments("a")
    for s1, s2 in zip(segs, segs[1:]):
        assert s2.start > s1.end  # strictly disjoint, merged


def test_free_partition_always_available_under_stress():
    iv = MappedInterval([f"s{i}" for i in range(5)])
    iv.set_shares({f"s{i}": (i + 1.0) ** 3 for i in range(5)})
    iv.check_invariants()
    assert iv.free_partitions()


def test_locate_point_accepts_largest_double_below_one():
    """hash_to_unit clamps to nextafter(1.0, 0.0); locate_point must take it."""
    import math

    iv = MappedInterval(["a"])
    x = math.nextafter(1.0, 0.0)
    # The top partition is free under half occupancy, so the result is None,
    # but the point itself is in-domain: no IntervalError.
    assert iv.locate_point(x) is None
    assert int(x * RESOLUTION) == RESOLUTION - 1


def test_locate_point_partial_partition_tick_edges():
    """Ownership flips exactly at the partial-partition prefix boundary."""
    iv = MappedInterval(["a", "b", "c"])  # equal thirds force partials
    psize = RESOLUTION // iv.partitions
    checked = 0
    for name in iv.servers:
        partial = iv._partial[name]
        if partial is None:
            continue
        idx, ticks = partial
        assert iv._prefix[idx] == ticks
        # Last owned tick of the prefix: offset == prefix - 1.
        inside = (idx * psize + ticks - 1) / RESOLUTION
        assert iv.locate_point(inside) == name
        # First tick past the prefix: offset == prefix.
        if ticks < psize:
            outside = (idx * psize + ticks) / RESOLUTION
            assert iv.locate_point(outside) is None
        checked += 1
    assert checked >= 1  # the layout really exercised a partial partition


def test_locate_point_whole_partition_edges():
    """Full partitions own their first and last tick; neighbours do not leak."""
    iv = MappedInterval(["a", "b"])
    psize = RESOLUTION // iv.partitions
    for name in iv.servers:
        for idx in sorted(iv._full[name]):
            first = (idx * psize) / RESOLUTION
            last = (idx * psize + psize - 1) / RESOLUTION
            assert iv.locate_point(first) == name
            assert iv.locate_point(last) == name


def test_add_server_invalid_share_leaves_interval_untouched():
    """Regression (RPL106): a rejected add_server must not repartition.

    Before the validate-then-mutate fix, add_server doubled the
    partition count (to fit the prospective newcomer) *before* checking
    share_fraction, so a rejected call left the interval torn: same
    owners, twice the partitions.
    """
    iv = MappedInterval(["a", "b", "c"])
    partitions_before = iv.partitions
    shares_before = dict(iv.shares())
    for bad in (0.0, 1.0, 1.5, -0.25):
        with pytest.raises(IntervalError):
            iv.add_server("d", share_fraction=bad)
        assert iv.partitions == partitions_before
        assert dict(iv.shares()) == shares_before
        iv.check_invariants()
    # A legal add still repartitions and lands the newcomer.
    iv.add_server("d")
    assert "d" in iv.servers
    iv.check_invariants()
