"""Stateful model-based test of the mapped interval.

A hypothesis rule machine interleaves rescales, membership changes, and
explicit repartitions; after every rule it checks the structural
invariants *and* cross-validates :meth:`locate_point` against the
segment list (two independent code paths to the same answer).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.interval import HALF, MappedInterval

PROBES = [i / 257 for i in range(257)]


class IntervalMachine(RuleBasedStateMachine):
    @initialize(n=st.integers(min_value=1, max_value=5))
    def setup(self, n: int) -> None:
        self.names = [f"s{i}" for i in range(n)]
        self.next_id = n
        self.interval = MappedInterval(self.names)

    @rule(data=st.data())
    def rescale(self, data) -> None:
        weights = {
            name: data.draw(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                label=f"w[{name}]",
            )
            for name in self.names
        }
        if sum(weights.values()) <= 0:
            weights[self.names[0]] = 1.0
        self.interval.set_shares(weights)

    @rule()
    def add_server(self) -> None:
        name = f"s{self.next_id}"
        self.next_id += 1
        self.interval.add_server(name)
        self.names.append(name)

    @precondition(lambda self: len(self.names) > 1)
    @rule(idx=st.integers(min_value=0, max_value=9))
    def remove_server(self, idx: int) -> None:
        victim = self.names.pop(idx % len(self.names))
        self.interval.remove_server(victim)

    @precondition(lambda self: self.interval.partitions < 2**12)
    @rule()
    def repartition(self) -> None:
        before = [self.interval.locate_point(x) for x in PROBES]
        self.interval.repartition()
        after = [self.interval.locate_point(x) for x in PROBES]
        assert before == after  # splitting moves no point

    # ------------------------------------------------------------------
    @invariant()
    def structural_invariants(self) -> None:
        self.interval.check_invariants()
        assert sum(self.interval.shares().values()) == HALF

    @invariant()
    def locate_matches_segments(self) -> None:
        """locate_point agrees with the merged segment lists."""
        for x in PROBES[::8]:
            owner = self.interval.locate_point(x)
            containing = [
                s
                for s in self.interval.servers
                for seg in self.interval.segments(s)
                if seg.start <= x < seg.end
            ]
            if owner is None:
                assert containing == []
            else:
                assert containing == [owner]


IntervalMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=20, deadline=None
)
TestIntervalMachine = IntervalMachine.TestCase
