"""Documentation-coverage gates.

Deliverable: "doc comments on every public item".  These tests walk the
package and fail if a public module, class, or function lacks a docstring,
and sanity-check that the top-level docs reference real artifacts.
"""

import importlib
import inspect
import pathlib
import pkgutil

import repro

SRC_ROOT = pathlib.Path(repro.__file__).parent
REPO_ROOT = SRC_ROOT.parent.parent


def iter_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing these would run the CLIs
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in iter_modules() if not (m.__doc__ or "").strip()]
    assert missing == []


def test_every_public_class_and_function_documented():
    missing: list[str] = []
    for module in iter_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not (inspect.getdoc(obj) or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert missing == [], missing


def test_public_methods_documented():
    missing: list[str] = []
    for module in iter_modules():
        for cls_name, cls in vars(module).items():
            if cls_name.startswith("_") or not inspect.isclass(cls):
                continue
            if getattr(cls, "__module__", None) != module.__name__:
                continue
            for meth_name, meth in vars(cls).items():
                if meth_name.startswith("_"):
                    continue
                if not inspect.isfunction(meth):
                    continue
                doc = inspect.getdoc(getattr(cls, meth_name)) or ""
                if not doc.strip():
                    missing.append(f"{module.__name__}.{cls_name}.{meth_name}")
    assert missing == [], missing


def test_top_level_docs_exist_and_reference_real_things():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "TUTORIAL.md"):
        path = REPO_ROOT / name
        assert path.exists(), name
        assert path.stat().st_size > 1000, name
    readme = (REPO_ROOT / "README.md").read_text()
    # Every example the README lists exists.
    for line in readme.splitlines():
        if line.startswith("| `") and line.strip().endswith("|"):
            script = line.split("`")[1]
            if script.endswith(".py"):
                assert (REPO_ROOT / "examples" / script).exists(), script


def test_design_md_lists_every_subpackage():
    design = (REPO_ROOT / "DESIGN.md").read_text()
    subpackages = [
        p.name for p in SRC_ROOT.iterdir()
        if p.is_dir() and (p / "__init__.py").exists()
    ]
    for pkg in subpackages:
        assert f"{pkg}/" in design, f"DESIGN.md missing subpackage {pkg}"


def test_experiments_md_covers_every_figure():
    text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
    for fig in range(3, 12):
        assert f"## Figure {fig}" in text, f"Figure {fig} not recorded"
